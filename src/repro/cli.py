"""Command-line interface: ``python -m repro`` or the ``repro`` script.

Subcommands
-----------
``generate``   Generate a synthetic dataset profile and save it as .npz.
``summarize``  Print headline statistics of a saved or generated network.
``rank``       Score a network with any registered method, print the top-k.
``evaluate``   Split a network by test ratio and score methods against STI.
``horizons``   Print the Table-2 ratio -> time-horizon mapping.
``popular``    Print the Table-1 recently-popular overlap.

Every command accepts either ``--dataset <name>`` (synthetic profile) or
``--input <file.npz>`` (a saved network).
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.analysis.horizons import horizon_table
from repro.analysis.popularity import recently_popular_overlap
from repro.analysis.reporting import format_kv_block, format_table
from repro.baselines import METHOD_REGISTRY, make_method
from repro.errors import ReproError
from repro.eval.metrics import NDCG, SpearmanRho
from repro.eval.split import split_by_ratio
from repro.graph.citation_network import CitationNetwork
from repro.graph.statistics import summarize
from repro.io.serialize import load_network, save_network
from repro.synth.profiles import DATASET_PROFILES, SIZE_FACTORS, generate_dataset

__all__ = ["main", "build_parser"]


def _add_source_arguments(parser: argparse.ArgumentParser) -> None:
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--dataset",
        choices=sorted(DATASET_PROFILES),
        help="synthetic dataset profile to generate",
    )
    source.add_argument("--input", help="path to a saved .npz network")
    parser.add_argument(
        "--size",
        choices=sorted(SIZE_FACTORS),
        default="small",
        help="scale of the synthetic profile (default: small)",
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="generator seed"
    )


def _load_source(args: argparse.Namespace) -> CitationNetwork:
    if args.input:
        return load_network(args.input)
    return generate_dataset(args.dataset, size=args.size, seed=args.seed)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "AttRank reproduction: rank papers by expected short-term "
            "impact (Kanellos et al., ICDE 2021)"
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    gen = commands.add_parser(
        "generate", help="generate a synthetic dataset and save it"
    )
    gen.add_argument(
        "dataset", choices=sorted(DATASET_PROFILES), help="profile name"
    )
    gen.add_argument("output", help="output .npz path")
    gen.add_argument(
        "--size", choices=sorted(SIZE_FACTORS), default="small"
    )
    gen.add_argument("--seed", type=int, default=None)

    show = commands.add_parser(
        "summarize", help="print headline statistics of a network"
    )
    _add_source_arguments(show)

    rank = commands.add_parser(
        "rank", help="rank a network's papers with one method"
    )
    _add_source_arguments(rank)
    rank.add_argument(
        "--method",
        default="AR",
        choices=sorted(METHOD_REGISTRY),
        help="method label (default: AR = AttRank)",
    )
    rank.add_argument("--top", type=int, default=10, help="list size")

    evaluate = commands.add_parser(
        "evaluate",
        help="temporal-split evaluation against the STI ground truth",
    )
    _add_source_arguments(evaluate)
    evaluate.add_argument(
        "--ratio", type=float, default=1.6, help="test ratio (default 1.6)"
    )
    evaluate.add_argument(
        "--methods",
        nargs="+",
        default=["AR", "NO-ATT", "ATT-ONLY", "RAM", "CC"],
        choices=sorted(METHOD_REGISTRY),
        help="methods to evaluate at their default parameters",
    )
    evaluate.add_argument(
        "--ndcg-k", type=int, default=50, help="nDCG cut-off (default 50)"
    )

    horizons = commands.add_parser(
        "horizons", help="print the test-ratio -> time-horizon table"
    )
    _add_source_arguments(horizons)

    popular = commands.add_parser(
        "popular", help="recently-popular papers among the top-100 by STI"
    )
    _add_source_arguments(popular)
    popular.add_argument("--k", type=int, default=100)
    popular.add_argument("--window", type=float, default=5.0)
    popular.add_argument("--ratio", type=float, default=1.6)

    return parser


def _command_generate(args: argparse.Namespace) -> int:
    network = generate_dataset(args.dataset, size=args.size, seed=args.seed)
    save_network(network, args.output)
    print(
        f"wrote {network.n_papers} papers / {network.n_citations} citations "
        f"to {args.output}"
    )
    return 0


def _command_summarize(args: argparse.Namespace) -> int:
    network = _load_source(args)
    print(format_table(["statistic", "value"], summarize(network).as_rows()))
    return 0


def _command_rank(args: argparse.Namespace) -> int:
    network = _load_source(args)
    method = make_method(args.method)
    scores = method.scores(network)
    order = method.rank(network)[: args.top]
    rows = [
        [
            position + 1,
            network.id_of(int(index)),
            f"{network.publication_times[index]:.1f}",
            f"{scores[index]:.6g}",
        ]
        for position, index in enumerate(order)
    ]
    print(
        format_table(
            ["rank", "paper", "year", "score"],
            rows,
            title=f"top {args.top} by {method.describe()}",
        )
    )
    return 0


def _command_evaluate(args: argparse.Namespace) -> int:
    network = _load_source(args)
    split = split_by_ratio(network, args.ratio)
    spearman = SpearmanRho()
    ndcg = NDCG(args.ndcg_k)
    rows = []
    for name in args.methods:
        method = make_method(name)
        scores = method.scores(split.current)
        rows.append(
            [
                name,
                f"{spearman(scores, split.sti):.4f}",
                f"{ndcg(scores, split.sti):.4f}",
            ]
        )
    print(
        format_table(
            ["method", "spearman", ndcg.name],
            rows,
            title=(
                f"ratio {args.ratio}: {split.current.n_papers} current "
                f"papers, horizon {split.horizon_years:.1f}y"
            ),
        )
    )
    return 0


def _command_horizons(args: argparse.Namespace) -> int:
    network = _load_source(args)
    rows = [
        [
            f"{row.test_ratio:.1f}",
            f"{row.horizon_years:.2f}",
            row.n_current_papers,
            row.n_future_papers,
        ]
        for row in horizon_table(network)
    ]
    print(
        format_table(
            ["test ratio", "horizon (years)", "current papers", "future papers"],
            rows,
        )
    )
    return 0


def _command_popular(args: argparse.Namespace) -> int:
    network = _load_source(args)
    split = split_by_ratio(network, args.ratio)
    result = recently_popular_overlap(
        split, k=args.k, window_years=args.window
    )
    print(
        format_kv_block(
            {
                "top-k size": result.k,
                "window (years)": result.window_years,
                "recently popular in top-k": result.overlap,
                "fraction": f"{result.fraction:.2f}",
            }
        )
    )
    return 0


_COMMANDS = {
    "generate": _command_generate,
    "summarize": _command_summarize,
    "rank": _command_rank,
    "evaluate": _command_evaluate,
    "horizons": _command_horizons,
    "popular": _command_popular,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
