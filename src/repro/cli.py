"""Command-line interface: ``python -m repro`` or the ``repro`` script.

Subcommands
-----------
``generate``   Generate a synthetic dataset profile and save it as .npz.
``summarize``  Print headline statistics of a saved or generated network.
``rank``       Score a network with any registered method, print the top-k.
``evaluate``   Split a network by test ratio and score methods against STI.
``horizons``   Print the Table-2 ratio -> time-horizon mapping.
``popular``    Print the Table-1 recently-popular overlap.
``index``      Build a score index file — or, with ``--shards N``, a
               sharded index directory (one ``.npz`` per shard).
``update``     Apply a JSON delta to an index with warm-started re-solves.
``query``      Serve top-k queries (pagination, year filter) from an
               index file or shard directory; ``--batch FILE`` executes
               a JSON batch of heterogeneous queries through the
               :class:`~repro.serve.QueryEngine`.
``stream``     Event-log streaming: ``extract`` a JSONL log from a
               network, ``replay`` it through micro-batched warm-start
               updates (with optional checkpoints), ``resume`` a
               killed replay, ``checkpoint`` inspects a saved one.
``serve-http`` Serve an index over HTTP: the asyncio gateway with
               request coalescing, admission control, live metrics
               (JSON and Prometheus text), structured JSON logs,
               request tracing, and graceful drain.
``trace``      Fetch recent span trees from a running gateway's
               ``/v1/trace`` (or convert a saved dump) into
               Chrome-trace-format JSON for chrome://tracing.
``loadgen``    Drive an in-process gateway with concurrent clients and
               mixed traffic (optionally with live stream updates),
               verify every response against a direct service call,
               and report requests/sec + latency quantiles.
``compare``    Reproduce a figure panel (tune all methods per ratio),
               fanned out over ``--jobs`` worker processes.
``bench``      Run a benchmark scenario and write ``BENCH_<name>.json``.
``bench-diff`` Compare two directories of ``BENCH_*.json`` artifacts and
               fail on regressions (the CI benchmark gate).
``chaos``      Deterministic fault injection: ``plan`` prints the seeded
               fault draw, ``run`` executes one scenario (crash/resume
               or gateway drain) with the fault armed, ``sweep`` runs
               every fault point across N seeds and gates on the
               invariant report (the CI chaos job).

Batch commands accept either ``--dataset <name>`` (synthetic profile) or
``--input <file.npz>`` (a saved network); the serving commands
(``update``, ``query``) operate on an index built by ``index``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Sequence

import repro
from repro.analysis.horizons import horizon_table
from repro.analysis.popularity import recently_popular_overlap
from repro.analysis.reporting import format_kv_block, format_series, format_table
from repro.baselines import METHOD_REGISTRY, make_method
from repro.chaos.points import KINDS
from repro.errors import ReproError
from repro.eval.experiment import COMPARISON_METHODS
from repro.eval.metrics import NDCG, SpearmanRho
from repro.eval.split import DEFAULT_TEST_RATIOS, split_by_ratio
from repro.graph.citation_network import CitationNetwork
from repro.graph.statistics import summarize
from repro.io.serialize import load_network, save_network
from repro.serve import (
    DeltaUpdater,
    NetworkDelta,
    PARTITIONERS,
    QueryEngine,
    RankingService,
    ScoreIndex,
    ShardedScoreIndex,
    execute_with_attribution,
    queries_from_file,
    result_payload,
)
from repro.synth.profiles import DATASET_PROFILES, SIZE_FACTORS, generate_dataset

__all__ = ["main", "build_parser"]


def _add_source_arguments(parser: argparse.ArgumentParser) -> None:
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--dataset",
        choices=sorted(DATASET_PROFILES),
        help="synthetic dataset profile to generate",
    )
    source.add_argument("--input", help="path to a saved .npz network")
    parser.add_argument(
        "--size",
        choices=sorted(SIZE_FACTORS),
        default="small",
        help="scale of the synthetic profile (default: small)",
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="generator seed"
    )


def _load_source(args: argparse.Namespace) -> CitationNetwork:
    if args.input:
        return load_network(args.input)
    return generate_dataset(args.dataset, size=args.size, seed=args.seed)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "AttRank reproduction: rank papers by expected short-term "
            "impact (Kanellos et al., ICDE 2021)"
        ),
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"repro {repro.__version__}",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    gen = commands.add_parser(
        "generate", help="generate a synthetic dataset and save it"
    )
    gen.add_argument(
        "dataset", choices=sorted(DATASET_PROFILES), help="profile name"
    )
    gen.add_argument("output", help="output .npz path")
    gen.add_argument(
        "--size", choices=sorted(SIZE_FACTORS), default="small"
    )
    gen.add_argument("--seed", type=int, default=None)

    show = commands.add_parser(
        "summarize", help="print headline statistics of a network"
    )
    _add_source_arguments(show)

    rank = commands.add_parser(
        "rank", help="rank a network's papers with one method"
    )
    _add_source_arguments(rank)
    rank.add_argument(
        "--method",
        default="AR",
        choices=sorted(METHOD_REGISTRY),
        help="method label (default: AR = AttRank)",
    )
    rank.add_argument("--top", type=int, default=10, help="list size")

    evaluate = commands.add_parser(
        "evaluate",
        help="temporal-split evaluation against the STI ground truth",
    )
    _add_source_arguments(evaluate)
    evaluate.add_argument(
        "--ratio", type=float, default=1.6, help="test ratio (default 1.6)"
    )
    evaluate.add_argument(
        "--methods",
        nargs="+",
        default=["AR", "NO-ATT", "ATT-ONLY", "RAM", "CC"],
        choices=sorted(METHOD_REGISTRY),
        help="methods to evaluate at their default parameters",
    )
    evaluate.add_argument(
        "--ndcg-k", type=int, default=50, help="nDCG cut-off (default 50)"
    )

    horizons = commands.add_parser(
        "horizons", help="print the test-ratio -> time-horizon table"
    )
    _add_source_arguments(horizons)

    popular = commands.add_parser(
        "popular", help="recently-popular papers among the top-100 by STI"
    )
    _add_source_arguments(popular)
    popular.add_argument("--k", type=int, default=100)
    popular.add_argument("--window", type=float, default=5.0)
    popular.add_argument("--ratio", type=float, default=1.6)

    index = commands.add_parser(
        "index",
        help="build a score index (snapshot + solved methods) file",
    )
    _add_source_arguments(index)
    index.add_argument(
        "--output",
        required=True,
        help=(
            "output index .npz (or, with --shards > 1, an output "
            "directory of per-shard .npz files)"
        ),
    )
    index.add_argument(
        "--methods",
        nargs="+",
        default=["AR", "PR", "CC"],
        choices=sorted(METHOD_REGISTRY),
        help="methods to solve and index (default: AR PR CC)",
    )
    index.add_argument(
        "--shards",
        type=int,
        default=1,
        help=(
            "partition the index across N shards (default 1 = single "
            ".npz file)"
        ),
    )
    index.add_argument(
        "--partitioner",
        choices=sorted(PARTITIONERS),
        default="hash",
        help=(
            "shard assignment: stable id hash, or contiguous "
            "publication-year ranges (default: hash)"
        ),
    )
    index.add_argument(
        "--jobs",
        type=int,
        default=1,
        help=(
            "threads for the fused solver's row-chunked SpMV "
            "(default 1; scores are bit-identical for any value)"
        ),
    )

    update = commands.add_parser(
        "update",
        help="apply a JSON delta to an index (warm-started re-solve)",
    )
    update.add_argument("--index", required=True, help="index .npz to update")
    update.add_argument(
        "--delta",
        required=True,
        help=(
            "JSON delta file: {\"papers\": [{\"id\": ..., \"time\": ...}], "
            "\"citations\": [[citing, cited], ...]}"
        ),
    )
    update.add_argument(
        "--cold",
        action="store_true",
        help="force cold re-solves (for comparing against warm starts)",
    )
    update.add_argument(
        "--missing-references",
        choices=["skip", "error"],
        default="skip",
        help=(
            "policy for citations whose cited id is unknown (default: "
            "skip); citing papers must always be papers of the delta"
        ),
    )
    update.add_argument(
        "--jobs",
        type=int,
        default=1,
        help=(
            "threads for the fused solver's row-chunked SpMV "
            "(default 1; scores are bit-identical for any value)"
        ),
    )

    query = commands.add_parser(
        "query", help="serve a top-k query from a score index"
    )
    query.add_argument(
        "--index",
        required=True,
        help="index .npz (or sharded index directory) to query",
    )
    query.add_argument(
        "--batch",
        default=None,
        help=(
            "JSON file of queries to execute as one planned batch: "
            '[{"type": "top_k", "method": "AR", "k": 10}, '
            '{"type": "paper", "id": "..."}, '
            '{"type": "compare", "methods": ["AR", "CC"]}]; '
            "results print as JSON"
        ),
    )
    query.add_argument(
        "--jobs",
        type=int,
        default=1,
        help=(
            "worker threads for the per-shard query phase "
            "(0 = all cores; default 1)"
        ),
    )
    query.add_argument(
        "--methods",
        nargs="+",
        default=["AR"],
        choices=sorted(METHOD_REGISTRY),
        help="one method prints its ranking; several print a comparison",
    )
    query.add_argument("--top", type=int, default=10, help="page size")
    query.add_argument(
        "--offset", type=int, default=0, help="rows to skip (pagination)"
    )
    query.add_argument(
        "--year-min", type=float, default=None, help="earliest year, inclusive"
    )
    query.add_argument(
        "--year-max", type=float, default=None, help="latest year, inclusive"
    )

    stream = commands.add_parser(
        "stream",
        help="event-log streaming: extract, replay, resume, checkpoint",
    )
    stream_commands = stream.add_subparsers(
        dest="stream_command", required=True
    )

    extract = stream_commands.add_parser(
        "extract",
        help="convert a network into a time-ordered JSONL event log",
    )
    _add_source_arguments(extract)
    extract.add_argument(
        "--output", required=True, help="output .jsonl event-log path"
    )

    def _add_replay_arguments(parser: argparse.ArgumentParser) -> None:
        # Run controls shared by replay and resume; the batch *policy*
        # is replay-only (a resume must cut the log exactly as the
        # checkpointed run would have, so it comes from the manifest).
        parser.add_argument(
            "--max-batches",
            type=int,
            default=None,
            help="stop after N batches (default: run to the end)",
        )
        parser.add_argument(
            "--checkpoint-dir",
            default=None,
            help="directory to write checkpoints into",
        )
        parser.add_argument(
            "--checkpoint-every",
            type=int,
            default=25,
            help=(
                "checkpoint every N batches when --checkpoint-dir is "
                "set (default 25)"
            ),
        )
        parser.add_argument(
            "--index-out",
            default=None,
            help="save the final score index to this .npz path",
        )
        parser.add_argument(
            "--no-finalize",
            action="store_true",
            help=(
                "skip the canonical cold re-solve at the end of the "
                "log (leaves warm-started scores)"
            ),
        )

    replay = stream_commands.add_parser(
        "replay", help="replay an event log through warm-start updates"
    )
    replay.add_argument("--log", required=True, help="JSONL event log")
    replay.add_argument(
        "--methods",
        nargs="+",
        default=["AR", "PR", "CC"],
        choices=sorted(METHOD_REGISTRY),
        help="methods to keep live (default: AR PR CC)",
    )
    replay.add_argument(
        "--batch-size",
        type=int,
        default=64,
        help="minimum events per micro-batch (default 64)",
    )
    replay.add_argument(
        "--watermark-years",
        type=float,
        default=None,
        help=(
            "also close a batch once its events span this many years "
            "(default: disabled)"
        ),
    )
    replay.add_argument(
        "--bootstrap-size",
        type=int,
        default=256,
        help=(
            "minimum events in the snapshot-building first batch "
            "(default 256; methods fitting parameters from citation "
            "structure need a non-degenerate bootstrap)"
        ),
    )
    replay.add_argument(
        "--shards",
        type=int,
        default=1,
        help="shard count of the serving state (default 1)",
    )
    replay.add_argument(
        "--partitioner",
        choices=sorted(PARTITIONERS),
        default="hash",
        help="shard assignment policy (default: hash)",
    )
    replay.add_argument(
        "--missing-references",
        choices=["skip", "error"],
        default="skip",
        help="policy for citations of unknown papers (default: skip)",
    )
    _add_replay_arguments(replay)

    resume = stream_commands.add_parser(
        "resume", help="continue a replay from a checkpoint directory"
    )
    resume.add_argument(
        "--checkpoint", required=True, help="checkpoint directory"
    )
    resume.add_argument("--log", required=True, help="JSONL event log")
    _add_replay_arguments(resume)

    inspect = stream_commands.add_parser(
        "checkpoint", help="print the state of a saved checkpoint"
    )
    inspect.add_argument(
        "--checkpoint", required=True, help="checkpoint directory"
    )

    serve_http = commands.add_parser(
        "serve-http",
        help="serve a score index over HTTP (asyncio gateway)",
    )
    serve_http.add_argument(
        "--index",
        required=True,
        help="index .npz (or sharded index directory) to serve",
    )
    serve_http.add_argument("--host", default="127.0.0.1")
    serve_http.add_argument(
        "--port",
        type=int,
        default=8080,
        help="bind port (0 picks a free one; default 8080)",
    )
    serve_http.add_argument(
        "--max-inflight",
        type=int,
        default=64,
        help=(
            "requests executing concurrently (caps the coalesced "
            "batch size); admitted requests beyond it queue"
        ),
    )
    serve_http.add_argument(
        "--max-queue",
        type=int,
        default=256,
        help="queued requests beyond which arrivals are shed with 503",
    )
    serve_http.add_argument(
        "--max-batch",
        type=int,
        default=128,
        help="largest coalesced query batch",
    )
    serve_http.add_argument(
        "--rate-limit",
        type=float,
        default=None,
        help="per-endpoint requests/second (429 beyond; default: off)",
    )
    serve_http.add_argument(
        "--rate-burst",
        type=int,
        default=32,
        help="token-bucket burst for --rate-limit (default 32)",
    )
    serve_http.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker threads for the per-shard query phase",
    )
    serve_http.add_argument(
        "--workers",
        type=int,
        default=1,
        help=(
            "pre-forked gateway processes sharing the port via "
            "SO_REUSEPORT and the score store via shared memory "
            "(default 1: single-process serving)"
        ),
    )
    serve_http.add_argument(
        "--for-seconds",
        type=float,
        default=None,
        help=(
            "serve for N seconds, then drain and exit (default: run "
            "until interrupted)"
        ),
    )
    serve_http.add_argument(
        "--log-level",
        default="INFO",
        choices=["DEBUG", "INFO", "WARNING", "ERROR", "off"],
        help=(
            "structured-log threshold on stderr ('off' disables "
            "logging entirely; default INFO)"
        ),
    )
    serve_http.add_argument(
        "--log-format",
        default="json",
        choices=["json", "text"],
        help="log rendering: JSON lines (default) or human-readable",
    )
    serve_http.add_argument(
        "--no-trace",
        action="store_true",
        help="disable request tracing (/v1/trace serves empty)",
    )
    serve_http.add_argument(
        "--trace-capacity",
        type=int,
        default=256,
        help="traces kept in the /v1/trace ring buffer (default 256)",
    )
    serve_http.add_argument(
        "--trace-sample",
        type=float,
        default=1.0,
        help=(
            "fraction of requests traced, 0..1 (default 1.0; "
            "high-QPS deployments run sampled, e.g. 0.05)"
        ),
    )
    serve_http.add_argument(
        "--profile",
        action="store_true",
        help=(
            "run the sampling profiler (serves /v1/profile; "
            "off by default — costs <5%% at the default rate)"
        ),
    )
    serve_http.add_argument(
        "--profile-hz",
        type=float,
        default=67.0,
        help="profiler sampling rate in Hz (default 67)",
    )
    serve_http.add_argument(
        "--profile-memory",
        action="store_true",
        help=(
            "also run tracemalloc for /v1/profile?memory=1 "
            "(expensive: hooks every allocation; deep dives only)"
        ),
    )
    serve_http.add_argument(
        "--history-interval",
        type=float,
        default=5.0,
        help=(
            "seconds between /v1/metrics/history self-scrapes "
            "(0 disables the store; default 5)"
        ),
    )
    serve_http.add_argument(
        "--history-capacity",
        type=int,
        default=720,
        help=(
            "scrape points kept in the history ring buffer "
            "(default 720 = 1h at the default interval)"
        ),
    )
    serve_http.add_argument(
        "--slo",
        action="append",
        default=None,
        metavar="SPEC",
        help=(
            "SLO served at /v1/slo, repeatable: availability:99.9 "
            "or latency:99:250ms (default: availability 99.9%% "
            "and p99 latency 250ms)"
        ),
    )

    trace = commands.add_parser(
        "trace",
        help=(
            "fetch /v1/trace from a running gateway (or read a saved "
            "dump) and write Chrome trace-event JSON"
        ),
    )
    trace_source = trace.add_mutually_exclusive_group(required=True)
    trace_source.add_argument(
        "--url",
        help="gateway base URL, e.g. http://127.0.0.1:8080",
    )
    trace_source.add_argument(
        "--input",
        help="a saved /v1/trace JSON document to convert offline",
    )
    trace.add_argument(
        "--limit",
        type=int,
        default=50,
        help="most recent traces to fetch (default 50)",
    )
    trace.add_argument(
        "--output",
        default=None,
        help=(
            "write the Chrome trace JSON here (default: stdout); load "
            "the file in chrome://tracing or https://ui.perfetto.dev"
        ),
    )
    trace.add_argument(
        "--raw",
        action="store_true",
        help="emit the span trees as fetched instead of Chrome format",
    )

    profile = commands.add_parser(
        "profile",
        help=(
            "fetch /v1/profile from a running gateway (or profile a "
            "bench scenario in-process) and render it"
        ),
    )
    profile_source = profile.add_mutually_exclusive_group(
        required=True
    )
    profile_source.add_argument(
        "--url",
        help=(
            "gateway base URL, e.g. http://127.0.0.1:8080 (start it "
            "with --profile)"
        ),
    )
    profile_source.add_argument(
        "--bench",
        metavar="SCENARIO",
        help=(
            "run a bench scenario under the sampling profiler "
            "instead of attaching to a gateway"
        ),
    )
    profile.add_argument(
        "--format",
        dest="render_format",
        default="summary",
        choices=["summary", "collapsed", "speedscope", "json"],
        help=(
            "summary table (default), folded stacks for "
            "flamegraph.pl, a speedscope.app document, or the raw "
            "JSON rendering"
        ),
    )
    profile.add_argument(
        "--top",
        type=int,
        default=15,
        help="stacks shown in summary/json renderings (default 15)",
    )
    profile.add_argument(
        "--output",
        default=None,
        help="write the rendering here instead of stdout",
    )
    profile.add_argument(
        "--hz",
        type=float,
        default=199.0,
        help="sampling rate for --bench mode (default 199)",
    )
    profile.add_argument(
        "--size",
        default="tiny",
        choices=sorted(SIZE_FACTORS),
        help="dataset scale for --bench mode (default: tiny)",
    )
    profile.add_argument(
        "--seed", type=int, default=7, help="seed for --bench mode"
    )

    slo = commands.add_parser(
        "slo",
        help="SLO status from a running gateway's /v1/slo",
    )
    slo.add_argument(
        "action",
        nargs="?",
        default="status",
        choices=["status"],
        help="what to do (only 'status' for now)",
    )
    slo.add_argument(
        "--url",
        required=True,
        help="gateway base URL, e.g. http://127.0.0.1:8080",
    )
    slo.add_argument(
        "--as-json",
        action="store_true",
        help="emit the raw /v1/slo document instead of the table",
    )

    loadgen = commands.add_parser(
        "loadgen",
        help=(
            "verified load bench: concurrent clients against an "
            "in-process gateway"
        ),
    )
    load_source = loadgen.add_mutually_exclusive_group(required=True)
    load_source.add_argument(
        "--dataset",
        choices=sorted(DATASET_PROFILES),
        help="synthetic profile: stream-update mode (bootstrap half, "
        "apply the rest live during the run)",
    )
    load_source.add_argument(
        "--input", help="saved .npz network (stream-update mode)"
    )
    load_source.add_argument(
        "--index",
        help="pre-built index .npz or shard directory (static mode)",
    )
    loadgen.add_argument(
        "--size",
        choices=sorted(SIZE_FACTORS),
        default="tiny",
        help="scale of the synthetic profile (default: tiny)",
    )
    loadgen.add_argument(
        "--seed", type=int, default=7, help="generator + traffic seed"
    )
    loadgen.add_argument(
        "--methods",
        nargs="+",
        default=["AR", "PR", "CC"],
        choices=sorted(METHOD_REGISTRY),
        help="methods to serve (stream mode; static mode uses the "
        "index's own labels)",
    )
    loadgen.add_argument(
        "--clients", type=int, default=4, help="concurrent connections"
    )
    loadgen.add_argument(
        "--requests", type=int, default=50, help="requests per client"
    )
    loadgen.add_argument(
        "--batch-size",
        type=int,
        default=64,
        help="stream micro-batch size applied live during the run",
    )
    loadgen.add_argument(
        "--shards",
        type=int,
        default=1,
        help="shard count of the serving state (stream mode)",
    )
    loadgen.add_argument(
        "--partitioner",
        choices=sorted(PARTITIONERS),
        default="hash",
        help="shard assignment policy (default: hash)",
    )
    loadgen.add_argument(
        "--workers",
        type=int,
        default=1,
        help=(
            "drive a pre-forked SO_REUSEPORT worker fleet over one "
            "shared-memory store instead of a single in-process "
            "gateway (stream mode only; default 1)"
        ),
    )
    loadgen.add_argument(
        "--no-verify",
        action="store_true",
        help="skip the response-by-response bit-identity check",
    )
    loadgen.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="print the full report as JSON instead of a table",
    )

    compare = commands.add_parser(
        "compare",
        help=(
            "reproduce a figure panel: tune every method per test "
            "ratio (each method's grid solved in one fused pass); "
            "--jobs fans ratios over worker processes, --json adds "
            "per-method best params and fused iteration counts"
        ),
    )
    _add_source_arguments(compare)
    compare.add_argument(
        "--metric",
        choices=["spearman", "ndcg"],
        default="ndcg",
        help="optimise Spearman rho (Figure 3) or nDCG@k (Figure 4)",
    )
    compare.add_argument(
        "--k", type=int, default=50, help="nDCG cut-off (default 50)"
    )
    compare.add_argument(
        "--ratios",
        nargs="+",
        type=float,
        default=list(DEFAULT_TEST_RATIOS),
        help="test ratios (default: the paper's 1.2 1.4 1.6 1.8 2.0)",
    )
    compare.add_argument(
        "--methods",
        nargs="+",
        default=None,
        choices=sorted(COMPARISON_METHODS),
        help="lineup subset (default: every method the data supports)",
    )
    compare.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes (0 = all cores; default 1 = serial)",
    )
    compare.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help=(
            "print the panel as JSON: per ratio and method, the best "
            "parameters, metric score, and the iteration count of a "
            "fused re-solve of that winning configuration"
        ),
    )

    bench = commands.add_parser(
        "bench",
        help="run a benchmark scenario and write BENCH_<scenario>.json",
    )
    bench.add_argument(
        "--scenario", default=None, help="scenario name (see --list)"
    )
    bench.add_argument(
        "--list",
        action="store_true",
        dest="list_scenarios",
        help="list available scenarios and exit",
    )
    bench.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for parallel scenarios (0 = all cores)",
    )
    bench.add_argument(
        "--size",
        default="tiny",
        choices=sorted(SIZE_FACTORS),
        help="synthetic dataset scale (default: tiny)",
    )
    bench.add_argument(
        "--repeats",
        type=int,
        default=None,
        help="timed repetitions (default: the scenario's own)",
    )
    bench.add_argument(
        "--warmup",
        type=int,
        default=None,
        help="untimed warm-up runs (default: the scenario's own)",
    )
    bench.add_argument(
        "--smoke", action="store_true", help="CI-sized workload cut"
    )
    bench.add_argument("--seed", type=int, default=7, help="generator seed")
    bench.add_argument(
        "--shards",
        type=int,
        default=2,
        help=(
            "shard count for the sharded-serving scenarios "
            "(default 2; ignored by the others)"
        ),
    )
    bench.add_argument(
        "--output-dir", default=".", help="where to write BENCH_*.json"
    )

    diff = commands.add_parser(
        "bench-diff",
        help=(
            "compare two directories of BENCH_*.json artifacts; exit "
            "non-zero on regressions (the CI benchmark gate)"
        ),
    )
    diff.add_argument("base", help="baseline artifact directory")
    diff.add_argument("head", help="candidate artifact directory")
    diff.add_argument(
        "--tolerance",
        type=float,
        default=1.5,
        help=(
            "fail when head elapsed_seconds > tolerance x base "
            "(default 1.5)"
        ),
    )
    diff.add_argument(
        "--markdown",
        action="store_true",
        help="emit a GitHub-flavoured markdown table (for job summaries)",
    )

    chaos = commands.add_parser(
        "chaos",
        help=(
            "deterministic fault injection: plan a seeded fault, run "
            "one scenario, or sweep the whole fault-point catalog"
        ),
    )
    chaos_commands = chaos.add_subparsers(
        dest="chaos_command", required=True
    )

    chaos_plan = chaos_commands.add_parser(
        "plan",
        help="print the fault a seed would inject, without running it",
    )
    chaos_plan.add_argument(
        "--seed", type=int, default=0, help="plan seed (default 0)"
    )
    chaos_plan.add_argument(
        "--point",
        default=None,
        help=(
            "pin the fault point; the seed then only draws the kind "
            "and firing invocation (default: draw the point too)"
        ),
    )

    chaos_run = chaos_commands.add_parser(
        "run",
        help=(
            "arm one fault, run the owning scenario (checkpoint "
            "crash/resume or gateway drain), print the invariant report"
        ),
    )
    chaos_run.add_argument(
        "--point",
        required=True,
        help="fault point to arm (catalog: docs/RELIABILITY.md)",
    )
    chaos_run.add_argument(
        "--seed",
        type=int,
        default=0,
        help=(
            "workload seed; also draws the fault kind and invocation "
            "unless --kind pins them (default 0)"
        ),
    )
    chaos_run.add_argument(
        "--kind",
        choices=sorted(KINDS),
        default=None,
        help="pin the fault kind instead of drawing it from the seed",
    )
    chaos_run.add_argument(
        "--invocation",
        type=int,
        default=None,
        help=(
            "with --kind: fire at the Nth visit of the point "
            "(default 0)"
        ),
    )
    chaos_run.add_argument(
        "--report", default=None, help="also write the report JSON here"
    )

    chaos_sweep = chaos_commands.add_parser(
        "sweep",
        help=(
            "every fault point x N seeds; exit non-zero if any "
            "invariant fails (the CI chaos gate)"
        ),
    )
    chaos_sweep.add_argument(
        "--seeds",
        type=int,
        default=5,
        help="run seeds 0..N-1 against every point (default 5)",
    )
    chaos_sweep.add_argument(
        "--points",
        nargs="+",
        default=None,
        help="restrict to these fault points (default: full catalog)",
    )
    chaos_sweep.add_argument(
        "--report", default=None, help="write the full report JSON here"
    )

    return parser


def _command_generate(args: argparse.Namespace) -> int:
    network = generate_dataset(args.dataset, size=args.size, seed=args.seed)
    save_network(network, args.output)
    print(
        f"wrote {network.n_papers} papers / {network.n_citations} citations "
        f"to {args.output}"
    )
    return 0


def _command_summarize(args: argparse.Namespace) -> int:
    network = _load_source(args)
    print(format_table(["statistic", "value"], summarize(network).as_rows()))
    return 0


def _command_rank(args: argparse.Namespace) -> int:
    network = _load_source(args)
    method = make_method(args.method)
    scores = method.scores(network)
    order = method.rank(network)[: args.top]
    rows = [
        [
            position + 1,
            network.id_of(int(index)),
            f"{network.publication_times[index]:.1f}",
            f"{scores[index]:.6g}",
        ]
        for position, index in enumerate(order)
    ]
    print(
        format_table(
            ["rank", "paper", "year", "score"],
            rows,
            title=f"top {args.top} by {method.describe()}",
        )
    )
    return 0


def _command_evaluate(args: argparse.Namespace) -> int:
    network = _load_source(args)
    split = split_by_ratio(network, args.ratio)
    spearman = SpearmanRho()
    ndcg = NDCG(args.ndcg_k)
    rows = []
    for name in args.methods:
        method = make_method(name)
        scores = method.scores(split.current)
        rows.append(
            [
                name,
                f"{spearman(scores, split.sti):.4f}",
                f"{ndcg(scores, split.sti):.4f}",
            ]
        )
    print(
        format_table(
            ["method", "spearman", ndcg.name],
            rows,
            title=(
                f"ratio {args.ratio}: {split.current.n_papers} current "
                f"papers, horizon {split.horizon_years:.1f}y"
            ),
        )
    )
    return 0


def _command_horizons(args: argparse.Namespace) -> int:
    network = _load_source(args)
    rows = [
        [
            f"{row.test_ratio:.1f}",
            f"{row.horizon_years:.2f}",
            row.n_current_papers,
            row.n_future_papers,
        ]
        for row in horizon_table(network)
    ]
    print(
        format_table(
            ["test ratio", "horizon (years)", "current papers", "future papers"],
            rows,
        )
    )
    return 0


def _command_popular(args: argparse.Namespace) -> int:
    network = _load_source(args)
    split = split_by_ratio(network, args.ratio)
    result = recently_popular_overlap(
        split, k=args.k, window_years=args.window
    )
    print(
        format_kv_block(
            {
                "top-k size": result.k,
                "window (years)": result.window_years,
                "recently popular in top-k": result.overlap,
                "fraction": f"{result.fraction:.2f}",
            }
        )
    )
    return 0


def _command_index(args: argparse.Namespace) -> int:
    network = _load_source(args)
    index = ScoreIndex(network, solver_jobs=args.jobs)
    for label in args.methods:
        entry = index.add_method(label)
        note = f"{entry.iterations} iterations" if entry.iterations else "closed form"
        print(f"solved {label} ({note})")
    if args.shards > 1:
        store = ShardedScoreIndex.from_index(
            index, n_shards=args.shards, partitioner=args.partitioner
        )
        store.save(args.output)
        populations = ", ".join(
            str(store.shard(i).n_papers) for i in range(store.n_shards)
        )
        print(
            f"wrote sharded index v{index.version}: "
            f"{network.n_papers} papers, {len(index.labels)} methods, "
            f"{store.n_shards} {args.partitioner}-partitioned shards "
            f"({populations} papers) to {args.output}/"
        )
        return 0
    index.save(args.output)
    print(
        f"wrote index v{index.version}: {network.n_papers} papers, "
        f"{len(index.labels)} methods to {args.output}"
    )
    return 0


def _command_update(args: argparse.Namespace) -> int:
    if os.path.isdir(args.index):
        print(
            "error: repro update operates on a single-file index; "
            "rebuild sharded stores with repro index --shards after "
            "updating the source index",
            file=sys.stderr,
        )
        return 2
    index = ScoreIndex.load(args.index)
    index.solver_jobs = args.jobs
    updater = DeltaUpdater(
        index,
        missing_references=args.missing_references,
        warm=not args.cold,
    )
    delta = NetworkDelta.from_json_file(args.delta)
    report = updater.apply(delta)
    # Persist before reporting: a failed print (e.g. a closed pipe)
    # must not lose an applied update.
    index.save(args.index)
    rows = [
        [
            entry.label,
            "warm" if entry.warm_started else "cold",
            entry.iterations,
            "yes" if entry.converged else "NO",
        ]
        for entry in report.entries.values()
    ]
    print(
        format_table(
            ["method", "start", "iterations", "converged"],
            rows,
            title=(
                f"applied delta: +{report.n_new_papers} papers, "
                f"+{report.n_new_citations} citations -> "
                f"{report.n_papers} papers, index v{report.version} "
                f"({report.elapsed_seconds * 1000:.1f} ms)"
            ),
        )
    )
    print(f"updated {args.index}")
    return 0


def _serving_backend(path: str, jobs: int | None):
    """Open an index file or shard directory as a serving backend."""
    if os.path.isdir(path):
        # A sharded store loads lazily and serves through the engine.
        return QueryEngine(ShardedScoreIndex.load(path), jobs=jobs)
    return RankingService(ScoreIndex.load(path), jobs=jobs)


def _command_query(args: argparse.Namespace) -> int:
    service = _serving_backend(args.index, args.jobs)
    if args.batch:
        queries = queries_from_file(args.batch)
        engine = (
            service if isinstance(service, QueryEngine) else service.engine
        )
        # Per-query failure attribution (shared with the gateway's
        # coalescer): a broken query gets a typed JSON error object in
        # its slot while every healthy one still gets its result.
        _, outcomes = execute_with_attribution(
            engine.execute_versioned, queries
        )
        failures = 0
        payloads = []
        for outcome in outcomes:
            if isinstance(outcome, ReproError):
                failures += 1
                payloads.append(
                    {
                        "type": "error",
                        "error": type(outcome).__name__,
                        "message": str(outcome),
                    }
                )
            else:
                payloads.append(result_payload(outcome))
        print(json.dumps(payloads, indent=2))
        return 1 if failures else 0
    year_range = None
    if args.year_min is not None or args.year_max is not None:
        year_range = (
            args.year_min if args.year_min is not None else float("-inf"),
            args.year_max if args.year_max is not None else float("inf"),
        )
    span = "" if year_range is None else (
        f", years [{year_range[0]:g}, {year_range[1]:g}]"
    )
    if len(args.methods) == 1:
        result = service.top_k(
            args.methods[0],
            k=args.top,
            offset=args.offset,
            year_range=year_range,
        )
        rows = [
            [row.rank, row.paper_id, f"{row.year:.1f}", f"{row.score:.6g}"]
            for row in result.entries
        ]
        print(
            format_table(
                ["rank", "paper", "year", "score"],
                rows,
                title=(
                    f"{result.method} v{result.version}: rows "
                    f"{result.offset + 1}-{result.offset + len(result.entries)}"
                    f" of {result.total}{span}"
                ),
            )
        )
        return 0
    comparison = service.compare(
        args.methods,
        k=args.top,
        offset=args.offset,
        year_range=year_range,
    )
    results = comparison.results
    depth = max((len(r.entries) for r in results.values()), default=0)
    rows = [
        [args.offset + position + 1]
        + [
            results[label].entries[position].paper_id
            if position < len(results[label].entries)
            else ""
            for label in results
        ]
        for position in range(depth)
    ]
    print(
        format_table(
            ["rank", *results],
            rows,
            title=f"top-{args.top} comparison, index v{service.version}{span}",
        )
    )
    for (a, b), shared in comparison.overlap.items():
        compared = min(
            len(results[a].entries), len(results[b].entries)
        )
        print(f"overlap {a} ∩ {b}: {shared}/{compared}")
    return 0


def _command_stream(args: argparse.Namespace) -> int:
    handlers = {
        "extract": _stream_extract,
        "replay": _stream_replay,
        "resume": _stream_resume,
        "checkpoint": _stream_checkpoint,
    }
    return handlers[args.stream_command](args)


def _stream_extract(args: argparse.Namespace) -> int:
    from repro.stream import EventLog

    network = _load_source(args)
    log = EventLog.from_network(network)
    log.save(args.output)
    print(
        f"wrote {len(log)} events ({log.n_papers} papers, "
        f"{log.n_citations} citations) to {args.output}"
    )
    return 0


def _drive_replay(ingestor, args: argparse.Namespace) -> int:
    """Run an ingestor to completion with checkpoints and reporting.

    Shared by ``stream replay`` and ``stream resume`` — after the
    ingestor is built (fresh or from a checkpoint), the two commands
    behave identically.
    """
    checkpoint_every = args.checkpoint_every
    if args.checkpoint_dir is not None and checkpoint_every < 1:
        print(
            "error: --checkpoint-every must be >= 1", file=sys.stderr
        )
        return 2
    if args.max_batches is not None and args.max_batches < 1:
        print("error: --max-batches must be >= 1", file=sys.stderr)
        return 2
    total_batches = 0
    remaining = args.max_batches
    while not ingestor.exhausted:
        if remaining is not None and remaining <= 0:
            break
        chunk = checkpoint_every if args.checkpoint_dir else None
        if remaining is not None:
            chunk = remaining if chunk is None else min(chunk, remaining)
        report = ingestor.replay(max_batches=chunk)
        total_batches += report.n_batches
        if remaining is not None:
            remaining -= report.n_batches
        if args.checkpoint_dir and report.n_batches:
            path = ingestor.checkpoint(args.checkpoint_dir)
            print(
                f"checkpoint @ {ingestor.offset}/{len(ingestor.log)} "
                f"events ({ingestor.batches_applied} batches) -> {path}"
            )
    finalized = False
    if ingestor.exhausted and not args.no_finalize:
        ingestor.finalize()
        finalized = True
        if args.checkpoint_dir:
            ingestor.checkpoint(args.checkpoint_dir)
    index = ingestor.index
    rows = [
        [
            entry.label,
            "warm" if entry.warm_started else "cold",
            entry.iterations,
            "yes" if entry.converged else "NO",
        ]
        for entry in (index.entry(label) for label in index.labels)
    ]
    state = "finalized (canonical)" if finalized else (
        "exhausted (warm scores)" if ingestor.exhausted else
        f"paused at event {ingestor.offset}/{len(ingestor.log)}"
    )
    print(
        format_table(
            ["method", "last solve", "iterations", "converged"],
            rows,
            title=(
                f"replayed {total_batches} batches -> "
                f"{index.network.n_papers} papers, index "
                f"v{index.version}, {state}"
            ),
        )
    )
    if args.index_out:
        index.save(args.index_out)
        print(f"wrote index to {args.index_out}")
    return 0


def _stream_replay(args: argparse.Namespace) -> int:
    from repro.stream import EventLog, StreamIngestor

    log = EventLog.load(args.log)
    ingestor = StreamIngestor(
        log,
        methods=args.methods,
        batch_size=args.batch_size,
        bootstrap_size=args.bootstrap_size,
        watermark_years=args.watermark_years,
        shards=args.shards,
        partitioner=args.partitioner,
        missing_references=args.missing_references,
    )
    return _drive_replay(ingestor, args)


def _stream_resume(args: argparse.Namespace) -> int:
    from repro.stream import EventLog, StreamIngestor

    log = EventLog.load(args.log)
    ingestor = StreamIngestor.resume(args.checkpoint, log)
    print(
        f"resumed at event {ingestor.offset}/{len(log)} "
        f"({ingestor.batches_applied} batches applied, index "
        f"v{ingestor.index.version})"
    )
    return _drive_replay(ingestor, args)


def _stream_checkpoint(args: argparse.Namespace) -> int:
    from repro.stream import Checkpoint

    state = Checkpoint.load(args.checkpoint)
    index = state.load_index(args.checkpoint)
    print(
        format_kv_block(
            {
                "events consumed": state.offset,
                "batches applied": state.batches_applied,
                "batch size": state.batch_size,
                "watermark (years)": (
                    "disabled"
                    if state.watermark_years is None
                    else f"{state.watermark_years:g}"
                ),
                "shards": state.shards,
                "partitioner": state.partitioner,
                "missing references": state.missing_references,
                "index version": state.index_version,
                "papers": index.network.n_papers,
                "methods": ", ".join(index.labels),
                "log digest": state.log_digest[:16] + "…",
                "created (UTC)": state.created_utc,
            }
        )
    )
    return 0


def _command_serve_http(args: argparse.Namespace) -> int:
    import asyncio
    import signal as signal_module

    from repro.gateway import GatewayConfig, GatewayServer
    from repro.obs import configure_logging, enable_tracing

    if args.workers < 1:
        raise ReproError(f"--workers must be >= 1, got {args.workers}")
    if args.log_level != "off":
        configure_logging(
            args.log_level, json=args.log_format == "json"
        )
    if not args.no_trace:
        enable_tracing(args.trace_capacity, sample=args.trace_sample)
    backend = _serving_backend(args.index, args.jobs)
    slos = None
    if args.slo:
        from repro.obs import parse_slo

        slos = tuple(parse_slo(spec) for spec in args.slo)
    config = GatewayConfig(
        host=args.host,
        port=args.port,
        max_inflight=args.max_inflight,
        max_queue=args.max_queue,
        max_batch=args.max_batch,
        rate_limit=args.rate_limit,
        rate_burst=args.rate_burst,
        profile=args.profile,
        profile_hz=args.profile_hz,
        profile_memory=args.profile_memory,
        history_interval=args.history_interval,
        history_capacity=args.history_capacity,
        slos=slos,
    )

    if args.workers > 1:
        from repro.gateway import MultiWorkerGateway

        gateway = MultiWorkerGateway(
            backend,
            workers=args.workers,
            config=config,
            jobs=args.jobs,
        )
        gateway.start()
        print(
            f"serving {args.index} on http://{config.host}:{gateway.port}"
            f" with {args.workers} workers"
            f" ({'for %.1fs' % args.for_seconds if args.for_seconds else 'SIGTERM/Ctrl-C drains and stops'})",
            flush=True,
        )
        try:
            # serve_forever installs SIGTERM/SIGINT handlers, restarts
            # crashed workers, and drains the fleet on the way out.
            gateway.serve_forever(for_seconds=args.for_seconds)
        except KeyboardInterrupt:  # signal raced handler installation
            gateway.stop()
        print("gateway drained and stopped")
        return 0

    async def serve() -> None:
        server = GatewayServer(backend, config=config)
        await server.start()
        print(
            f"serving {args.index} on http://{config.host}:{server.port}"
            f" ({'for %.1fs' % args.for_seconds if args.for_seconds else 'SIGTERM/Ctrl-C drains and stops'})",
            flush=True,
        )
        # SIGTERM must drain exactly like Ctrl-C: a supervisor
        # (systemd, Docker, the CI harness) stops services with
        # SIGTERM, and before these handlers existed that path killed
        # in-flight requests and skipped the drain entirely.
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        installed: list[int] = []
        for signum in (signal_module.SIGTERM, signal_module.SIGINT):
            try:
                loop.add_signal_handler(signum, stop.set)
                installed.append(signum)
            except NotImplementedError:  # pragma: no cover - non-POSIX
                pass
        try:
            if args.for_seconds is not None:
                deadline = asyncio.create_task(
                    asyncio.sleep(args.for_seconds)
                )
                stopper = asyncio.create_task(stop.wait())
                done, pending = await asyncio.wait(
                    {deadline, stopper},
                    return_when=asyncio.FIRST_COMPLETED,
                )
                for task in pending:
                    task.cancel()
            else:
                await stop.wait()
        finally:
            for signum in installed:
                loop.remove_signal_handler(signum)
            await server.stop()
            print("gateway drained and stopped")

    try:
        asyncio.run(serve())
    except KeyboardInterrupt:
        # Only reachable where add_signal_handler is unavailable (or
        # the signal raced installation): asyncio.run already
        # cancelled serve(), whose finally block drained in-loop.
        pass
    return 0


def _command_trace(args: argparse.Namespace) -> int:
    from repro.obs import chrome_trace

    if args.input:
        try:
            with open(args.input, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except OSError as error:
            raise ReproError(
                f"cannot read trace dump: {error}"
            ) from None
        except json.JSONDecodeError as error:
            raise ReproError(
                f"{args.input}: invalid JSON ({error})"
            ) from None
    else:
        import urllib.error
        import urllib.request

        url = (
            f"{args.url.rstrip('/')}/v1/trace?limit={args.limit}"
        )
        try:
            with urllib.request.urlopen(url, timeout=30) as response:
                document = json.load(response)
        except (urllib.error.URLError, OSError) as error:
            raise ReproError(
                f"cannot fetch {url}: {error}"
            ) from None
    traces = document.get("traces", [])
    if not document.get("enabled", True) and not traces:
        print(
            "note: tracing is disabled on the gateway "
            "(start serve-http without --no-trace)",
            file=sys.stderr,
        )
    rendered = json.dumps(
        document if args.raw else chrome_trace(traces), indent=2
    )
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
        print(f"wrote {len(traces)} trace(s) to {args.output}")
    else:
        print(rendered)
    return 0


def _fetch_json(url: str) -> dict:
    import urllib.error
    import urllib.request

    try:
        with urllib.request.urlopen(url, timeout=30) as response:
            return json.load(response)
    except (urllib.error.URLError, OSError) as error:
        raise ReproError(f"cannot fetch {url}: {error}") from None


def _command_profile(args: argparse.Namespace) -> int:
    from repro.obs import (
        collapsed_stacks,
        render_profile,
        speedscope_document,
    )

    if args.bench:
        # Profile a bench scenario in this process: start the sampler,
        # run the scenario once in smoke mode, render what it saw.
        from repro.bench import run_scenario
        from repro.obs import SamplingProfiler

        profiler = SamplingProfiler(hz=args.hz)
        profiler.start()
        try:
            run_scenario(
                args.bench, size=args.size, smoke=True, seed=args.seed
            )
        finally:
            profiler.stop()
        state = profiler.state_dict()
        source = f"bench scenario {args.bench!r}"
    else:
        base = args.url.rstrip("/")
        document = _fetch_json(f"{base}/v1/profile?format=state")
        if not document.get("enabled") or not document.get("profile"):
            print(
                "profiling is disabled on the gateway "
                "(start serve-http with --profile)",
                file=sys.stderr,
            )
            return 1
        state = document["profile"]
        source = args.url

    if args.render_format == "collapsed":
        rendered = collapsed_stacks(state)
    elif args.render_format == "speedscope":
        rendered = (
            json.dumps(speedscope_document(state), indent=2) + "\n"
        )
    elif args.render_format == "json":
        rendered = (
            json.dumps(render_profile(state, top=args.top), indent=2)
            + "\n"
        )
    else:
        document = render_profile(state, top=args.top)
        total = max(1, int(document["samples_total"]))
        rows = [
            [phase, str(count), f"{100.0 * count / total:.1f}%"]
            for phase, count in document["by_phase"].items()
        ]
        lines = [
            format_table(
                ["phase", "samples", "share"],
                rows,
                title=(
                    f"{source}: {document['samples_total']} samples "
                    f"at {document['hz']:g} Hz"
                ),
            ),
            "",
        ]
        for stack in document["stacks"][: args.top]:
            leaf = stack["frames"][-1] if stack["frames"] else "(idle)"
            lines.append(
                f"{stack['count']:>7d}  {stack['phase']:<12s} {leaf}"
            )
        rendered = "\n".join(lines) + "\n"

    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(rendered)
        print(f"wrote profile ({args.render_format}) to {args.output}")
    else:
        sys.stdout.write(rendered)
    return 0


def _command_slo(args: argparse.Namespace) -> int:
    document = _fetch_json(f"{args.url.rstrip('/')}/v1/slo")
    if args.as_json:
        print(json.dumps(document, indent=2))
        return 1 if document.get("firing") else 0
    rows = []
    for objective in document.get("objectives", []):
        burns = objective.get("burn_rates", {})
        rows.append(
            [
                objective["name"],
                objective["kind"],
                f"{100.0 * objective['objective']:g}%",
                f"{100.0 * objective['compliance']:.3f}%",
                f"{100.0 * objective['budget_consumed']:.1f}%",
                " ".join(
                    f"{window}={burn:.2f}"
                    for window, burn in burns.items()
                ),
                "FIRING" if objective.get("firing") else "ok",
            ]
        )
    print(
        format_table(
            [
                "slo",
                "kind",
                "objective",
                "compliance",
                "budget used",
                "burn rates",
                "state",
            ],
            rows,
            title=f"SLO status from {args.url}",
        )
    )
    for objective in document.get("objectives", []):
        for alert in objective.get("alerts", []):
            if alert.get("firing"):
                print(
                    f"ALERT[{alert['severity']}] {objective['name']}: "
                    f"burn {alert['short_burn']:.1f}x over "
                    f"{alert['short_window']} and "
                    f"{alert['long_burn']:.1f}x over "
                    f"{alert['long_window']} "
                    f"(threshold {alert['factor']}x)"
                )
    # Scriptable: a firing SLO exits nonzero, like a failing health
    # check — `repro slo status --url ... && deploy` does the right
    # thing.
    return 1 if document.get("firing") else 0


def _command_loadgen(args: argparse.Namespace) -> int:
    from repro.gateway import GatewayConfig
    from repro.gateway.loadgen import (
        run_load_multiworker,
        run_load_over_log,
        run_load_static,
    )

    verify = not args.no_verify
    config = GatewayConfig(port=0)
    if args.workers < 1:
        raise ReproError(f"--workers must be >= 1, got {args.workers}")
    if args.workers > 1 and args.index:
        raise ReproError(
            "--workers needs stream mode (--dataset or --input): the "
            "fleet's supervisor is the streaming updater"
        )
    if args.workers > 1:
        from repro.stream import EventLog

        network = _load_source(args)
        log = EventLog.from_network(network)
        report = run_load_multiworker(
            log,
            tuple(args.methods),
            workers=args.workers,
            clients=args.clients,
            requests_per_client=args.requests,
            seed=args.seed,
            batch_size=args.batch_size,
            shards=args.shards,
            partitioner=args.partitioner,
            config=config,
            verify=verify,
        )
    elif args.index:
        backend = _serving_backend(args.index, jobs=1)
        labels = (
            backend.index.labels
            if isinstance(backend, RankingService)
            else backend.sharded.labels
        )
        report = run_load_static(
            backend,
            labels,
            clients=args.clients,
            requests_per_client=args.requests,
            seed=args.seed,
            config=config,
            verify=verify and isinstance(backend, RankingService),
        )
    else:
        from repro.stream import EventLog

        network = _load_source(args)
        log = EventLog.from_network(network)
        report = run_load_over_log(
            log,
            tuple(args.methods),
            clients=args.clients,
            requests_per_client=args.requests,
            seed=args.seed,
            batch_size=args.batch_size,
            shards=args.shards,
            partitioner=args.partitioner,
            config=config,
            verify=verify,
        )
    if args.as_json:
        print(json.dumps(report, indent=2))
    else:
        latency = report["latency"]
        rows = [
            ["requests", report["requests"]],
            ["requests/s", f"{report['requests_per_second']:.0f}"],
            ["p50 (ms)", f"{latency['p50_ms']:.2f}"],
            ["p95 (ms)", f"{latency['p95_ms']:.2f}"],
            ["p99 (ms)", f"{latency['p99_ms']:.2f}"],
            ["mean batch size", f"{report['coalescing']['mean_batch_size']:.1f}"],
            ["updates applied", report["updates_applied"]],
            ["shed 429 / 503", f"{report['shed_429']} / {report['shed_503']}"],
            ["5xx responses", report["errors_5xx"]],
            [
                "identical rankings",
                (
                    f"yes ({report['verified_responses']} verified)"
                    if report["identical_rankings"]
                    else (
                        "not checked"
                        if not verify
                        or report["verified_responses"]
                        + report["mismatched_responses"] == 0
                        else f"NO ({report['mismatched_responses']} mismatches)"
                    )
                ),
            ],
        ]
        print(
            format_table(
                ["measure", "value"],
                rows,
                title=(
                    f"loadgen: {args.clients} clients x "
                    f"{args.requests} requests"
                ),
            )
        )
    failed = report["errors_5xx"] > 0 or (
        verify
        and report["verified_responses"] + report["mismatched_responses"] > 0
        and not report["identical_rankings"]
    )
    if failed:
        print(
            "error: [GatewayError] load run failed the gate "
            f"(5xx={report['errors_5xx']}, "
            f"mismatches={report['mismatched_responses']})",
            file=sys.stderr,
        )
        return 1
    return 0


def _compare_json_payload(panel, network, *, jobs: int) -> dict:
    """The ``repro compare --json`` document.

    The tuning sweep keeps only metric scores per grid point, so the
    per-method iteration counts come from re-solving each ratio's
    winning configurations through the fused solver — one stacked pass
    per ratio.  Closed forms report 0 iterations, matching the score
    index's convention.
    """
    from repro.core.fused import solve_methods

    lineup = list(panel.cells)
    results = []
    for position, ratio in enumerate(panel.x_values):
        split = split_by_ratio(network, ratio)
        best_params = {
            name: dict(panel.cells[name][position].result.best.params)
            for name in lineup
        }
        methods = [
            make_method(name, **best_params[name]) for name in lineup
        ]
        solved = solve_methods(split.current, methods)
        entries = {}
        for name, (_scores, info) in zip(lineup, solved):
            entries[name] = {
                "params": best_params[name],
                "score": panel.cells[name][position].score,
                "iterations": info.iterations if info is not None else 0,
                "converged": info.converged if info is not None else True,
            }
        results.append(
            {
                "ratio": float(ratio),
                "winner": panel.winner_at(ratio),
                "methods": entries,
            }
        )
    return {
        "type": "compare",
        "dataset": panel.dataset,
        "metric": panel.metric,
        "x_label": panel.x_label,
        "ratios": [float(r) for r in panel.x_values],
        "methods": lineup,
        "jobs": jobs,
        "results": results,
    }


def _command_compare(args: argparse.Namespace) -> int:
    from repro.parallel import ExperimentEngine

    network = _load_source(args)
    metric = NDCG(args.k) if args.metric == "ndcg" else SpearmanRho()
    engine = ExperimentEngine(jobs=args.jobs)
    label = args.dataset if args.dataset else args.input
    panel = engine.compare_over_ratios(
        network,
        dataset=str(label),
        metric=metric,
        test_ratios=tuple(args.ratios),
        methods=args.methods,
    )
    if args.as_json:
        print(
            json.dumps(
                _compare_json_payload(panel, network, jobs=engine.jobs),
                indent=2,
                sort_keys=True,
            )
        )
        return 0
    print(
        format_series(
            "ratio",
            panel.x_values,
            {name: panel.series(name) for name in panel.cells},
            title=(
                f"{panel.metric} vs test ratio [{panel.dataset}], "
                f"jobs={engine.jobs}"
            ),
        )
    )
    for ratio in panel.x_values:
        print(f"winner @ {ratio:g}: {panel.winner_at(ratio)}")
    return 0


def _command_bench(args: argparse.Namespace) -> int:
    from repro.bench import run_scenario, scenario_help

    if args.list_scenarios:
        for name, description in scenario_help().items():
            print(f"{name:12s} {description}")
        return 0
    if not args.scenario:
        print(
            "error: --scenario is required (or use --list)", file=sys.stderr
        )
        return 2
    result = run_scenario(
        args.scenario,
        jobs=args.jobs,
        size=args.size,
        repeats=args.repeats,
        warmup=args.warmup,
        smoke=args.smoke,
        seed=args.seed,
        shards=args.shards,
    )
    path = result.write(args.output_dir)
    payload = result.payload
    rows = []
    if "serial" in payload and "parallel" in payload:
        rows.append(
            ["serial best (s)", f"{payload['serial']['best_seconds']:.3f}"]
        )
        rows.append(
            ["parallel best (s)", f"{payload['parallel']['best_seconds']:.3f}"]
        )
    if "serial" in payload and "batched" in payload:
        rows.append(
            ["serial best (s)", f"{payload['serial']['best_seconds']:.3f}"]
        )
        rows.append(
            ["batched best (s)", f"{payload['batched']['best_seconds']:.3f}"]
        )
        rows.append(
            [
                "batched queries/s",
                f"{payload['batched']['queries_per_second']:.0f}",
            ]
        )
    if "replay" in payload and "events_per_second" in payload["replay"]:
        rows.append(
            [
                "replay events/s",
                f"{payload['replay']['events_per_second']:.0f}",
            ]
        )
    if "replay_overhead_vs_batch" in payload:
        rows.append(
            [
                "replay overhead vs batch",
                f"{payload['replay_overhead_vs_batch']:.2f}x",
            ]
        )
    if "requests_per_second" in payload:
        rows.append(
            ["requests/s", f"{payload['requests_per_second']:.0f}"]
        )
    if "latency" in payload and "p50_ms" in payload.get("latency", {}):
        latency = payload["latency"]
        rows.append(
            [
                "latency p50/p95/p99 (ms)",
                f"{latency['p50_ms']:.2f} / {latency['p95_ms']:.2f} / "
                f"{latency['p99_ms']:.2f}",
            ]
        )
    if "coalescing" in payload and "mean_batch_size" in payload.get(
        "coalescing", {}
    ):
        rows.append(
            [
                "mean coalesced batch",
                f"{payload['coalescing']['mean_batch_size']:.1f}",
            ]
        )
    if "speedup_vs_serial" in payload:
        rows.append(
            ["speedup vs serial", f"{payload['speedup_vs_serial']:.2f}x"]
        )
    if "speedup_warm_vs_cold" in payload:
        rows.append(
            [
                "speedup warm vs cold",
                f"{payload['speedup_warm_vs_cold']:.2f}x",
            ]
        )
    if "identical_rankings" in payload:
        rows.append(
            ["identical rankings", "yes" if payload["identical_rankings"] else "NO"]
        )
    if rows:
        print(
            format_table(
                ["measure", "value"],
                rows,
                title=f"bench {args.scenario} (jobs={args.jobs})",
            )
        )
    print(f"wrote {path}")
    return 0


def _command_bench_diff(args: argparse.Namespace) -> int:
    from repro.bench.regression import compare_directories

    report = compare_directories(
        args.base, args.head, tolerance=args.tolerance
    )
    if args.markdown:
        print(report.to_markdown())
    else:
        rows = [
            [
                row.scenario,
                "-" if row.base_seconds is None else f"{row.base_seconds:.3f}",
                "-" if row.head_seconds is None else f"{row.head_seconds:.3f}",
                "-" if row.ratio is None else f"{row.ratio:.2f}x",
                row.latency_cell(),
                "ok" if row.identical_ok else "BROKEN",
                row.status,
            ]
            for row in report.rows
        ]
        print(
            format_table(
                ["scenario", "base (s)", "head (s)", "ratio",
                 "p50/p95/p99 (ms)", "rankings", "status"],
                rows,
                title=(
                    f"bench regression gate (tolerance "
                    f"{report.tolerance:g}x)"
                ),
            )
        )
    if not report.ok:
        names = ", ".join(row.scenario for row in report.failures)
        print(f"error: benchmark regression in: {names}", file=sys.stderr)
        return 1
    return 0


def _command_chaos(args: argparse.Namespace) -> int:
    # The harness pulls in the gateway load bench; importing it here
    # keeps every other subcommand's startup unaffected.
    from repro.chaos import harness
    from repro.chaos.faults import FaultPlan
    from repro.errors import ChaosError

    if args.chaos_command == "plan":
        plan = FaultPlan.seeded(args.seed, point=args.point)
        print(json.dumps(plan.to_payload(), indent=2))
        return 0

    if args.chaos_command == "run":
        if args.invocation is not None and args.kind is None:
            raise ChaosError(
                "--invocation only makes sense with --kind (a seeded "
                "draw picks its own invocation)"
            )
        if args.kind is not None:
            plan = FaultPlan.single(
                args.point,
                kind=args.kind,
                invocation=args.invocation or 0,
                seed=args.seed,
            )
        else:
            plan = FaultPlan.seeded(args.seed, point=args.point)
        report = harness.run_plan(plan, seed=args.seed)
        payload = report.to_payload()
        if args.report is not None:
            harness.save_report(payload, args.report)
        print(json.dumps(payload, indent=2))
        return 0 if report.ok else 1

    assert args.chaos_command == "sweep"
    document = harness.sweep(range(args.seeds), points=args.points)
    if args.report is not None:
        harness.save_report(document, args.report)
    print(harness.render_summary(document))
    return 0 if document["ok"] else 1


_COMMANDS = {
    "generate": _command_generate,
    "summarize": _command_summarize,
    "rank": _command_rank,
    "evaluate": _command_evaluate,
    "horizons": _command_horizons,
    "popular": _command_popular,
    "index": _command_index,
    "update": _command_update,
    "query": _command_query,
    "stream": _command_stream,
    "serve-http": _command_serve_http,
    "trace": _command_trace,
    "profile": _command_profile,
    "slo": _command_slo,
    "loadgen": _command_loadgen,
    "compare": _command_compare,
    "bench": _command_bench,
    "bench-diff": _command_bench_diff,
    "chaos": _command_chaos,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as error:
        # One line, typed: scripts match on the class name instead of
        # parsing prose, and no library failure ever shows a traceback.
        print(
            f"error: [{type(error).__name__}] {error}", file=sys.stderr
        )
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
