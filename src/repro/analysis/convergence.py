"""Convergence-rate study (paper Section 4.4).

The paper reports that, at ``alpha = 0.5`` and convergence error
``<= 1e-12``, AttRank converges in fewer iterations than CiteRank and
FutureRank (e.g. < 30 vs 51 and 35 on hep-th), and that AttRank's
iteration count decreases as alpha shrinks, reaching a single effective
iteration at ``alpha = 0``.  This module measures those iteration counts
on any network.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.baselines.citerank import CiteRank
from repro.baselines.futurerank import FutureRank
from repro.core.attrank import AttRank
from repro.core.power_iteration import DEFAULT_TOLERANCE
from repro.graph.citation_network import CitationNetwork
from repro.ranking import RankingMethod

__all__ = ["ConvergenceReport", "convergence_study", "iterations_to_converge"]


@dataclass(frozen=True)
class ConvergenceReport:
    """Iteration counts of the Section-4.4 lineup on one network.

    ``iterations[label]`` is the number of iterations the method needed
    (its budget if it never reached the tolerance, with
    ``converged[label]`` = False in that case).
    """

    tolerance: float
    iterations: Mapping[str, int]
    converged: Mapping[str, bool]


def iterations_to_converge(
    method: RankingMethod, network: CitationNetwork
) -> tuple[int, bool]:
    """Run ``method`` and report (iterations, converged).

    Methods that solve in closed form (e.g. AttRank at alpha = 0) report
    one iteration, matching the paper's accounting ("the limit case
    alpha = 0 requiring a single iteration").
    """
    method.scores(network)
    info = method.last_convergence
    if info is None:
        return 1, True
    return info.iterations, info.converged


def convergence_study(
    network: CitationNetwork,
    *,
    alphas: Sequence[float] = (0.5,),
    tol: float = DEFAULT_TOLERANCE,
    attention_window: float = 3.0,
    max_iterations: int = 500,
    decay_rate: float = -0.5,
) -> dict[float, ConvergenceReport]:
    """Measure AttRank / CiteRank / FutureRank iteration counts.

    For each alpha, AttRank splits the remaining ``1 - alpha`` evenly
    between beta and gamma (the exact split does not affect the
    convergence rate, which is governed by alpha — see Section 4.4);
    CiteRank uses ``tau_dir = 2``; FutureRank mirrors alpha and splits
    the rest between its author and time components.  ``decay_rate`` is
    fixed (rather than fitted) because it has no bearing on convergence
    speed.
    """
    reports: dict[float, ConvergenceReport] = {}
    for alpha in alphas:
        rest = 1.0 - alpha
        lineup: dict[str, RankingMethod] = {
            "AR": AttRank(
                alpha=alpha,
                beta=rest / 2,
                gamma=rest / 2,
                attention_window=attention_window,
                decay_rate=decay_rate,
                tol=tol,
                max_iterations=max_iterations,
            ),
            "CR": CiteRank(
                alpha=max(alpha, 1e-6),
                tau_dir=2.0,
                tol=tol,
                max_iterations=max_iterations,
            ),
        }
        if network.has_authors:
            lineup["FR"] = FutureRank(
                alpha=alpha,
                beta=rest / 2,
                gamma=rest / 2,
                tol=tol,
                max_iterations=max_iterations,
            )
        iterations: dict[str, int] = {}
        converged: dict[str, bool] = {}
        for label, method in lineup.items():
            count, ok = iterations_to_converge(method, network)
            iterations[label] = count
            converged[label] = ok
        reports[float(alpha)] = ConvergenceReport(
            tolerance=tol, iterations=iterations, converged=converged
        )
    return reports
