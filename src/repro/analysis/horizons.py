"""Test-ratio to time-horizon correspondence (paper Table 2).

The paper's splits are defined by *paper counts* (the test ratio), and
Table 2 translates each ratio into the implied time horizon ``tau`` in
years per dataset — non-linear because publication volume grows and the
final year of each dump is incomplete.  This module computes that table
for any network.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.eval.split import DEFAULT_TEST_RATIOS, split_by_ratio
from repro.graph.citation_network import CitationNetwork

__all__ = ["HorizonRow", "horizon_table"]


@dataclass(frozen=True)
class HorizonRow:
    """One row of the Table-2 reproduction."""

    test_ratio: float
    horizon_years: float
    n_current_papers: int
    n_future_papers: int


def horizon_table(
    network: CitationNetwork,
    *,
    test_ratios: Sequence[float] = DEFAULT_TEST_RATIOS,
) -> list[HorizonRow]:
    """The ratio -> horizon mapping for ``network``.

    The horizon is reported in fractional years (the paper rounds to
    whole years).
    """
    rows = []
    for ratio in test_ratios:
        split = split_by_ratio(network, ratio)
        rows.append(
            HorizonRow(
                test_ratio=float(ratio),
                horizon_years=split.horizon_years,
                n_current_papers=split.current.n_papers,
                n_future_papers=split.n_future_papers,
            )
        )
    return rows
