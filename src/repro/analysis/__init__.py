"""Analyses behind the paper's tables and figures, plus text reporting.

* :func:`recently_popular_overlap` — Table 1.
* :func:`horizon_table` — Table 2.
* :func:`attention_heatmap` — Figures 2, 6, 7.
* :func:`convergence_study` — Section 4.4.
* :mod:`repro.analysis.reporting` — ASCII tables/series/heatmaps.
"""

from repro.analysis.convergence import (
    ConvergenceReport,
    convergence_study,
    iterations_to_converge,
)
from repro.analysis.heatmap import HeatmapSweep, attention_heatmap
from repro.analysis.horizons import HorizonRow, horizon_table
from repro.analysis.popularity import (
    RecentlyPopularResult,
    recently_popular_overlap,
)
from repro.analysis.reporting import (
    format_heatmap,
    format_kv_block,
    format_series,
    format_table,
)

__all__ = [
    "ConvergenceReport",
    "convergence_study",
    "iterations_to_converge",
    "HeatmapSweep",
    "attention_heatmap",
    "HorizonRow",
    "horizon_table",
    "RecentlyPopularResult",
    "recently_popular_overlap",
    "format_heatmap",
    "format_kv_block",
    "format_series",
    "format_table",
]
