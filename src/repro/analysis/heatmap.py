"""Alpha-beta parameter heatmaps of AttRank (paper Figures 2, 6, 7).

For every attention window ``y``, the paper visualises AttRank's
effectiveness over the grid of (alpha, beta) coefficient pairs (gamma
implied by alpha + beta + gamma = 1).  :func:`attention_heatmap` computes
that sweep for any metric, recording per-window matrices, the per-window
maxima the figures annotate, and the overall best parameterisation
reported in Section 4.2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.eval.metrics import Metric
from repro.eval.split import TemporalSplit
from repro.eval.tuning import evaluate_setting

__all__ = ["HeatmapSweep", "attention_heatmap"]

_DEFAULT_ALPHAS = tuple(round(0.1 * i, 1) for i in range(6))  # 0 .. 0.5
_DEFAULT_BETAS = tuple(round(0.1 * i, 1) for i in range(11))  # 0 .. 1


@dataclass(frozen=True)
class HeatmapSweep:
    """The full alpha-beta-y sweep for one (dataset, metric) pair.

    Attributes
    ----------
    metric:
        Metric name.
    alphas, betas:
        Axis values.  Grid cells where ``gamma = 1 - alpha - beta`` falls
        outside [0, 0.9] are NaN (outside the paper's Table 3 space).
    values:
        ``values[y][b, a]`` = metric at ``alpha = alphas[a]``,
        ``beta = betas[b]``, window ``y``.
    """

    metric: str
    alphas: tuple[float, ...]
    betas: tuple[float, ...]
    values: Mapping[int, np.ndarray]

    def best_for_window(self, window: int) -> tuple[float, float, float]:
        """``(alpha, beta, value)`` of the window's maximum (the number
        printed above each panel of Figure 2)."""
        grid = self.values[window]
        flat = np.nanargmax(grid)
        b, a = np.unravel_index(flat, grid.shape)
        return self.alphas[a], self.betas[b], float(grid[b, a])

    def best_overall(self) -> dict[str, float]:
        """The Section-4.2 optimum: ``{alpha, beta, gamma, y, value}``."""
        best: dict[str, float] | None = None
        for window in self.values:
            alpha, beta, value = self.best_for_window(window)
            if best is None or value > best["value"]:
                best = {
                    "alpha": alpha,
                    "beta": beta,
                    "gamma": round(1.0 - alpha - beta, 10),
                    "y": float(window),
                    "value": value,
                }
        assert best is not None  # windows mapping is never empty
        return best

    def no_att_maximum(self) -> float:
        """Best value on the ``beta = 0`` row across windows (the NO-ATT
        reference the paper quotes against each optimum)."""
        row = self.betas.index(0.0)
        return float(
            np.nanmax([grid[row, :] for grid in self.values.values()])
        )

    def att_only_maximum(self) -> float:
        """Best value at ``beta = 1`` (alpha = 0) across windows."""
        if 1.0 not in self.betas:
            return float("nan")
        row = self.betas.index(1.0)
        col = self.alphas.index(0.0)
        return float(
            np.nanmax([grid[row, col] for grid in self.values.values()])
        )


def attention_heatmap(
    split: TemporalSplit,
    metric: Metric,
    *,
    windows: Sequence[int] = (1, 2, 3, 4, 5),
    alphas: Sequence[float] = _DEFAULT_ALPHAS,
    betas: Sequence[float] = _DEFAULT_BETAS,
) -> HeatmapSweep:
    """Sweep AttRank over the Table-3 grid on one split.

    The recency decay ``w`` is fitted once from the split's current
    network (as the paper fits it per dataset) and reused across all
    grid points, which both matches the methodology and avoids refitting
    in the inner loop.
    """
    from repro.core.recency import fit_decay_rate

    decay = fit_decay_rate(split.current).decay_rate
    values: dict[int, np.ndarray] = {}
    for window in windows:
        grid = np.full((len(betas), len(alphas)), np.nan)
        for b, beta in enumerate(betas):
            for a, alpha in enumerate(alphas):
                gamma = round(1.0 - alpha - beta, 10)
                if not 0.0 <= gamma <= 0.9:
                    continue
                grid[b, a] = evaluate_setting(
                    "AR",
                    {
                        "alpha": alpha,
                        "beta": beta,
                        "gamma": gamma,
                        "attention_window": float(window),
                        "decay_rate": decay,
                    },
                    split,
                    metric,
                )
        values[int(window)] = grid
    return HeatmapSweep(
        metric=metric.name,
        alphas=tuple(float(a) for a in alphas),
        betas=tuple(float(b) for b in betas),
        values=values,
    )
