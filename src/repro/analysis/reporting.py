"""Plain-text rendering of tables, series and heatmaps.

The benchmark harness and the CLI print the paper's tables and figure
series as aligned ASCII; everything here is pure string formatting with
no I/O, so the same renderers serve reports, logs and tests.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

__all__ = [
    "format_table",
    "format_series",
    "format_heatmap",
    "format_kv_block",
]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Render an aligned text table.

    >>> print(format_table(["a", "b"], [[1, 2.5]]))
    a  b
    -  ---
    1  2.5
    """
    text_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in text_rows:
        lines.append(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def format_series(
    x_label: str,
    x_values: Sequence[float],
    series: Mapping[str, Sequence[float]],
    *,
    title: str | None = None,
    precision: int = 4,
) -> str:
    """Render a figure-style table: one row per method, one column per x.

    This is the textual equivalent of the paper's line plots (Figures
    3-5): methods as rows, the x-axis across the columns.
    """
    headers = [x_label] + [_trim(float(x)) for x in x_values]
    rows = []
    for name, values in series.items():
        rows.append(
            [name] + [f"{float(v):.{precision}f}" for v in values]
        )
    return format_table(headers, rows, title=title)


def format_heatmap(
    values: np.ndarray,
    row_labels: Sequence[float],
    col_labels: Sequence[float],
    *,
    title: str | None = None,
    precision: int = 3,
    row_axis: str = "beta",
    col_axis: str = "alpha",
) -> str:
    """Render a 2-D sweep as text, NaN cells shown as dots.

    Rows are printed top-down from the *last* row label, matching the
    orientation of the paper's heatmaps (beta increases upwards).
    """
    grid = np.asarray(values, dtype=np.float64)
    if grid.shape != (len(row_labels), len(col_labels)):
        raise ValueError(
            f"grid shape {grid.shape} does not match labels "
            f"({len(row_labels)}, {len(col_labels)})"
        )
    width = precision + 3
    lines = []
    if title:
        lines.append(title)
    header = f"{row_axis}\\{col_axis}".rjust(9) + " " + " ".join(
        _trim(c).rjust(width) for c in col_labels
    )
    lines.append(header)
    for r in range(len(row_labels) - 1, -1, -1):
        cells = []
        for c in range(len(col_labels)):
            value = grid[r, c]
            if np.isnan(value):
                cells.append(".".rjust(width))
            else:
                cells.append(f"{value:.{precision}f}".rjust(width))
        lines.append(_trim(row_labels[r]).rjust(9) + " " + " ".join(cells))
    return "\n".join(lines)


def format_kv_block(pairs: Mapping[str, object], *, title: str | None = None) -> str:
    """Render key/value pairs as aligned lines."""
    width = max((len(str(k)) for k in pairs), default=0)
    lines = []
    if title:
        lines.append(title)
    for key, value in pairs.items():
        lines.append(f"{str(key).ljust(width)} : {_cell(value)}")
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return _trim(value)
    return str(value)


def _trim(value: float) -> str:
    """Compact float formatting: 1.0 -> '1', 0.30000000004 -> '0.3'."""
    if isinstance(value, float):
        text = f"{value:.4f}".rstrip("0").rstrip(".")
        return text if text else "0"
    return str(value)
