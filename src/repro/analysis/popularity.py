"""The "recently popular" analysis behind the paper's Table 1.

The paper motivates the attention mechanism by counting, for each
dataset's default split, how many of the top-100 papers by ground-truth
short-term impact were *recently popular* — i.e. were among the top
cited papers of the current state's last five years.  It finds roughly
half (41-63 of 100), validating that recent attention predicts imminent
citations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import EvaluationError
from repro.eval.split import TemporalSplit
from repro.graph.temporal import citation_counts_between
from repro.ranking import ranking_from_scores

__all__ = ["RecentlyPopularResult", "recently_popular_overlap"]


@dataclass(frozen=True)
class RecentlyPopularResult:
    """Outcome of the Table-1 analysis for one dataset split.

    Attributes
    ----------
    k:
        Size of the compared top lists (paper: 100).
    window_years:
        Length of the recent-popularity window (paper: 5).
    overlap:
        How many of the top-``k`` STI papers are also in the top-``k``
        by recent citations — the Table-1 number.
    top_sti:
        Current-network indices of the top-``k`` by short-term impact.
    top_recent:
        Current-network indices of the top-``k`` by recent citations.
    """

    k: int
    window_years: float
    overlap: int
    top_sti: tuple[int, ...]
    top_recent: tuple[int, ...]

    @property
    def fraction(self) -> float:
        """Overlap as a fraction of ``k``."""
        return self.overlap / self.k if self.k else 0.0


def recently_popular_overlap(
    split: TemporalSplit,
    *,
    k: int = 100,
    window_years: float = 5.0,
) -> RecentlyPopularResult:
    """Count recently-popular papers among the top-``k`` by STI.

    "Recently popular" means: among the top-``k`` papers of the *current*
    state by citations received during its last ``window_years`` years —
    exactly the paper's Table-1 construction.
    """
    if k < 1:
        raise EvaluationError(f"k must be >= 1, got {k}")
    if window_years <= 0:
        raise EvaluationError(
            f"window_years must be positive, got {window_years}"
        )
    current = split.current
    if current.n_papers < k:
        raise EvaluationError(
            f"current network has {current.n_papers} papers, fewer than "
            f"k = {k}"
        )
    recent_counts = citation_counts_between(
        current,
        current.latest_time - window_years,
        current.latest_time,
    )
    top_recent = ranking_from_scores(recent_counts)[:k]
    top_sti = split.top_by_sti(k)
    overlap = int(np.intersect1d(top_sti, top_recent).size)
    return RecentlyPopularResult(
        k=k,
        window_years=float(window_years),
        overlap=overlap,
        top_sti=tuple(int(i) for i in top_sti),
        top_recent=tuple(int(i) for i in top_recent),
    )
