"""The attention vector of AttRank (Equation 2 of the paper).

The *attention* of a paper is its share of all citations made during the
last ``y`` years:

    A(p_i) = sum_j C[tN-y : tN][i, j]  /  sum_i sum_j C[tN-y : tN][i, j]

This is the paper's key novelty — a time-restricted preferential-
attachment signal: papers that were cited a lot *recently* are expected
to keep being cited in the near future.
"""

from __future__ import annotations

import numpy as np

from repro._typing import FloatVector
from repro.errors import ConfigurationError
from repro.graph.cache import memoize_on
from repro.graph.citation_network import CitationNetwork
from repro.graph.temporal import citation_counts_between

__all__ = ["attention_counts", "attention_vector"]


def attention_counts(
    network: CitationNetwork,
    window_years: float,
    *,
    now: float | None = None,
) -> FloatVector:
    """Raw recent-citation counts: citations received in ``(now-y, now]``.

    Parameters
    ----------
    network:
        The current network state ``C(tN)``.
    window_years:
        The hyper-parameter ``y`` — length of the attention window.
    now:
        The current time ``tN`` (default: the network's latest
        publication time).
    """
    if window_years <= 0:
        raise ConfigurationError(
            f"attention window must be positive, got {window_years}"
        )
    reference = network.latest_time if now is None else float(now)
    return citation_counts_between(
        network, reference - window_years, reference
    )


def attention_vector(
    network: CitationNetwork,
    window_years: float,
    *,
    now: float | None = None,
) -> FloatVector:
    """The normalised attention vector ``A`` of Equation 2.

    Entries are non-negative and sum to one.  If the window contains no
    citations at all (possible on tiny or pathological networks, and not
    addressed by the paper), the vector falls back to uniform so that the
    AttRank matrix ``R`` remains stochastic and Theorem 1 still applies.

    The result is memoised per ``(network, window, now)`` and returned
    read-only: AttRank's grid re-uses the same five windows across ~50
    coefficient combinations each, so the counting pass runs once per
    window instead of once per grid point.
    """
    if window_years <= 0:
        raise ConfigurationError(
            f"attention window must be positive, got {window_years}"
        )
    reference = network.latest_time if now is None else float(now)

    def build() -> FloatVector:
        counts = attention_counts(network, window_years, now=reference)
        total = counts.sum()
        if total <= 0:
            return np.full(network.n_papers, 1.0 / network.n_papers)
        return counts / total

    return memoize_on(
        network, ("attention", float(window_years), reference), build
    )
