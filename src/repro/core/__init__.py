"""The paper's contribution: AttRank and its building blocks.

* :class:`AttRank` — Equation 4, solved by power iteration (Theorem 1).
* :class:`NoAttention` / :class:`AttentionOnly` — the paper's ablations.
* :func:`attention_vector` — Eq. 2 (recent-citation shares).
* :func:`recency_vector` / :func:`fit_decay_rate` — Eq. 3 and the per-
  dataset fitting of ``w`` (Section 4.2).
* :func:`power_iterate` — the shared fixed-point solver.
"""

from repro.core.attention import attention_counts, attention_vector
from repro.core.attrank import AttRank, attrank_matrix
from repro.core.power_iteration import (
    DEFAULT_TOLERANCE,
    power_iterate,
    uniform_vector,
)
from repro.core.recency import DecayFit, fit_decay_rate, recency_vector
from repro.core.variants import AttentionOnly, NoAttention

__all__ = [
    "AttRank",
    "attrank_matrix",
    "AttentionOnly",
    "NoAttention",
    "attention_counts",
    "attention_vector",
    "recency_vector",
    "DecayFit",
    "fit_decay_rate",
    "DEFAULT_TOLERANCE",
    "power_iterate",
    "uniform_vector",
]
