"""The two AttRank ablations the paper evaluates (Sections 3 and 4.3).

* **NO-ATT** (``beta = 0``): the attention mechanism removed; AttRank
  degenerates to a time-aware PageRank in the family of CiteRank /
  FutureRank.  With additionally ``w = 0`` it recovers plain PageRank.
* **ATT-ONLY** (``beta = 1``): attention alone — assumes the recent
  citation pattern persists verbatim.  The paper shows it is strong but
  never optimal.
"""

from __future__ import annotations

from repro.core.attrank import AttRank
from repro.errors import ConfigurationError

__all__ = ["NoAttention", "AttentionOnly"]


class NoAttention(AttRank):
    """AttRank with the attention mechanism switched off (``beta = 0``).

    Parameters mirror :class:`~repro.core.attrank.AttRank`; ``alpha`` and
    ``gamma = 1 - alpha`` split the probability between following
    references and jumping to recent papers.
    """

    name = "NO-ATT"

    def __init__(
        self,
        *,
        alpha: float = 0.5,
        beta: float = 0.0,
        gamma: float | None = None,
        decay_rate: float | None = None,
        attention_window: float = 3.0,
        **kwargs,
    ) -> None:
        if beta != 0.0:
            raise ConfigurationError(
                f"NO-ATT fixes beta = 0, got beta = {beta}"
            )
        super().__init__(
            alpha=alpha,
            beta=0.0,
            gamma=1.0 - alpha if gamma is None else gamma,
            attention_window=attention_window,
            decay_rate=decay_rate,
            **kwargs,
        )


class AttentionOnly(AttRank):
    """AttRank reduced to the bare attention vector (``beta = 1``).

    The score of each paper is exactly its share of recent citations
    (Eq. 2); no iteration is needed.
    """

    name = "ATT-ONLY"

    def __init__(
        self,
        *,
        alpha: float = 0.0,
        beta: float = 1.0,
        gamma: float = 0.0,
        attention_window: float = 3.0,
        **kwargs,
    ) -> None:
        if (alpha, beta, gamma) != (0.0, 1.0, 0.0):
            raise ConfigurationError(
                "ATT-ONLY fixes (alpha, beta, gamma) = (0, 1, 0), got "
                f"({alpha}, {beta}, {gamma})"
            )
        super().__init__(
            alpha=0.0,
            beta=1.0,
            gamma=0.0,
            attention_window=attention_window,
            **kwargs,
        )
