"""AttRank — the paper's contribution (Equation 4, Theorem 1).

AttRank scores satisfy the recurrence

    AR = alpha * S @ AR + beta * A + gamma * T,   alpha + beta + gamma = 1

with ``S`` the column-stochastic citation matrix (random researcher
follows a reference), ``A`` the attention vector of Eq. 2 (she picks a
recently popular paper) and ``T`` the recency vector of Eq. 3 (she picks
a recently published paper).  The effective iteration matrix

    R = alpha*S + beta * A @ 1' + gamma * T @ 1'

is column-stochastic, irreducible and aperiodic whenever beta + gamma > 0
and the jump vectors are strictly positive, so the power method converges
to a unique fixed point regardless of the start vector (Theorem 1).
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from repro._typing import FloatVector
from repro.core.attention import attention_vector
from repro.core.power_iteration import DEFAULT_TOLERANCE, power_iterate
from repro.core.recency import fit_decay_rate, recency_vector
from repro.errors import ConfigurationError
from repro.graph.citation_network import CitationNetwork
from repro.graph.matrix import StochasticOperator, shared_operator
from repro.ranking import RankingMethod

__all__ = ["AttRank", "attrank_matrix"]

_COEFFICIENT_ATOL = 1e-9


class AttRank(RankingMethod):
    """The AttRank ranking method of Kanellos et al.

    Parameters
    ----------
    alpha:
        Probability of following a reference from the current paper.
    beta:
        Probability of jumping to a paper by recent attention (Eq. 2).
    gamma:
        Probability of jumping to a paper by recency (Eq. 3).
        ``alpha + beta + gamma`` must equal 1 (Table 3 explores
        alpha in [0, 0.5], beta in [0, 1]).
    attention_window:
        The hyper-parameter ``y`` (years) of the attention vector.
    decay_rate:
        The exponent ``w`` of the recency vector.  ``None`` (default)
        fits it from the network's citation-age distribution at scoring
        time, as the paper does per dataset (Section 4.2).
    tol, max_iterations:
        Power-iteration controls (paper uses tol = 1e-12).
    now:
        Current time ``tN``; defaults to the network's latest
        publication time.

    Examples
    --------
    >>> from repro.synth import toy_network
    >>> method = AttRank(alpha=0.2, beta=0.5, gamma=0.3, attention_window=3)
    >>> scores = method.scores(toy_network())
    >>> round(float(scores.sum()), 6)
    1.0
    """

    name = "AR"
    supports_warm_start = True

    def __init__(
        self,
        *,
        alpha: float = 0.2,
        beta: float = 0.5,
        gamma: float | None = None,
        attention_window: float = 3.0,
        decay_rate: float | None = None,
        tol: float = DEFAULT_TOLERANCE,
        max_iterations: int = 1000,
        now: float | None = None,
    ) -> None:
        if gamma is None:
            gamma = 1.0 - alpha - beta
        for label, value in (("alpha", alpha), ("beta", beta), ("gamma", gamma)):
            if not -_COEFFICIENT_ATOL <= value <= 1 + _COEFFICIENT_ATOL:
                raise ConfigurationError(
                    f"{label} must lie in [0, 1], got {value}"
                )
        total = alpha + beta + gamma
        if abs(total - 1.0) > 1e-6:
            raise ConfigurationError(
                f"alpha + beta + gamma must equal 1, got {total}"
            )
        if attention_window <= 0:
            raise ConfigurationError(
                f"attention_window must be positive, got {attention_window}"
            )
        if decay_rate is not None and decay_rate > 0:
            raise ConfigurationError(
                f"decay_rate w must be <= 0, got {decay_rate}"
            )
        self.alpha = float(np.clip(alpha, 0.0, 1.0))
        self.beta = float(np.clip(beta, 0.0, 1.0))
        self.gamma = float(np.clip(gamma, 0.0, 1.0))
        self.attention_window = float(attention_window)
        self.decay_rate = decay_rate
        self.tol = tol
        self.max_iterations = max_iterations
        self.now = now
        #: The decay rate actually used in the last ``scores`` call
        #: (useful when it was fitted automatically).
        self.fitted_decay_rate_: float | None = None

    def params(self) -> Mapping[str, Any]:
        return {
            "alpha": self.alpha,
            "beta": self.beta,
            "gamma": self.gamma,
            "y": self.attention_window,
            "w": self.decay_rate,
        }

    # ------------------------------------------------------------------
    def _resolve_decay_rate(self, network: CitationNetwork) -> float:
        if self.decay_rate is not None:
            return self.decay_rate
        fitted = fit_decay_rate(network).decay_rate
        self.fitted_decay_rate_ = fitted
        return fitted

    def jump_vectors(
        self, network: CitationNetwork
    ) -> tuple[FloatVector, FloatVector]:
        """The attention vector ``A`` and recency vector ``T`` for
        ``network`` under this configuration.

        A vector whose coefficient is zero is not computed (it cannot
        influence the scores); it is returned as all-zeros.  In
        particular, ATT-ONLY (``gamma = 0``) never needs the decay-rate
        fit, so it runs on networks whose citation-age distribution is
        degenerate.
        """
        zeros = np.zeros(network.n_papers)
        attention = (
            attention_vector(network, self.attention_window, now=self.now)
            if self.beta > 0
            else zeros
        )
        if self.gamma > 0:
            decay = self._resolve_decay_rate(network)
            recency = recency_vector(network, decay, now=self.now)
        else:
            recency = zeros
        return attention, recency

    def scores(self, network: CitationNetwork) -> FloatVector:
        """Solve Equation 4 by power iteration.

        Special case: with ``alpha = 0`` the fixed point is available in
        closed form (``AR = beta*A + gamma*T``), which the paper notes
        requires "a single iteration".
        """
        if network.n_papers == 0:
            raise ConfigurationError("cannot rank an empty network")
        attention, recency = self.jump_vectors(network)
        jump = self.beta * attention + self.gamma * recency

        if self.alpha == 0.0:
            self.last_convergence = None
            return jump

        operator = shared_operator(network)

        def step(vector: FloatVector) -> FloatVector:
            return self.alpha * operator.apply(vector) + jump

        result, info = power_iterate(
            step,
            network.n_papers,
            tol=self.tol,
            max_iterations=self.max_iterations,
            start=self.start_vector,
        )
        self.last_convergence = info
        return result

    def fused_column(self, network: CitationNetwork):
        """AttRank as one column of a fused solve (see Equation 4).

        The ``alpha = 0`` closed form needs no iteration and is left to
        :meth:`scores` (fused stacking would only waste a column).
        """
        if self.alpha == 0.0 or network.n_papers == 0:
            return None
        from repro.core.fused import FusedColumn

        attention, recency = self.jump_vectors(network)
        jump = self.beta * attention + self.gamma * recency
        operator = shared_operator(network)
        return FusedColumn(
            label=self.name,
            matrix=operator.sparse_part,
            alpha=self.alpha,
            jump=jump,
            dangling=(
                operator.dangling_mask if operator.n_dangling else None
            ),
            start=self.start_vector,
            normalize=True,
            tol=self.tol,
            max_iterations=self.max_iterations,
        )


def attrank_matrix(
    network: CitationNetwork,
    *,
    alpha: float,
    beta: float,
    gamma: float,
    attention_window: float = 3.0,
    decay_rate: float | None = None,
    now: float | None = None,
) -> np.ndarray:
    """Materialise the dense AttRank matrix ``R`` of Theorem 1.

    ``R[i, j] = alpha*S[i, j] + beta*A(p_i) + gamma*T(p_i)`` — intended
    for verification on small networks (the tests check column-
    stochasticity, irreducibility and aperiodicity), not for production
    scoring, which uses the sparse operator.
    """
    method = AttRank(
        alpha=alpha,
        beta=beta,
        gamma=gamma,
        attention_window=attention_window,
        decay_rate=decay_rate,
        now=now,
    )
    attention, recency = method.jump_vectors(network)
    dense_s = StochasticOperator(network).dense()
    jump = beta * attention + gamma * recency
    return alpha * dense_s + jump[:, None]
