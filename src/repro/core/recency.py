"""The recency vector of AttRank (Equation 3) and the fitting of ``w``.

The recency score of a paper decays exponentially with its age:

    T(p_i) = c * exp(w * (tN - t_{p_i})),   w < 0,  sum_i T(p_i) = 1.

Following the paper (Section 4.2, after FutureRank), ``w`` is not a free
parameter: it is fitted per dataset as the exponential decay rate of the
*tail* of the citation-age distribution (Figure 1a) — the distribution of
the probability that a citation arrives ``n`` years after the cited
paper's publication.  The paper reports w = -0.48 (hep-th), -0.12 (APS)
and -0.16 (PMC and DBLP).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._typing import FloatVector
from repro.errors import ConfigurationError, EvaluationError
from repro.graph.cache import memoize_on
from repro.graph.citation_network import CitationNetwork
from repro.graph.statistics import citation_age_distribution

__all__ = ["recency_vector", "DecayFit", "fit_decay_rate"]


def recency_vector(
    network: CitationNetwork,
    decay_rate: float,
    *,
    now: float | None = None,
) -> FloatVector:
    """The normalised recency vector ``T`` of Equation 3.

    Parameters
    ----------
    network:
        The current network state.
    decay_rate:
        The exponent ``w``; must be negative (strictly, so every entry is
        positive and the aperiodicity argument of Theorem 1 holds).
        ``w = 0`` is additionally allowed because the paper uses it to
        recover plain PageRank from the NO-ATT setting.
    now:
        Current time ``tN`` (default: the network's latest publication
        time).
    """
    if decay_rate > 0:
        raise ConfigurationError(
            f"decay rate w must be <= 0, got {decay_rate}"
        )
    reference = network.latest_time if now is None else float(now)

    def build() -> FloatVector:
        ages = network.ages(reference)
        # Subtract the minimum age before exponentiating for numerical
        # stability on long time spans; the shift cancels in
        # normalisation.
        shifted = ages - ages.min()
        raw = np.exp(decay_rate * shifted)
        return raw / raw.sum()

    # Memoised per (network, w, now): within one dataset the decay rate
    # is fitted once (Section 4.2), so a whole AttRank grid shares a
    # single recency vector.
    return memoize_on(network, ("recency", float(decay_rate), reference), build)


@dataclass(frozen=True)
class DecayFit:
    """Result of fitting the exponential tail of the citation-age curve.

    Attributes
    ----------
    decay_rate:
        The fitted ``w`` (negative).
    intercept:
        The fitted log-linear intercept ``log c``.
    ages:
        The integer ages (years) used for the fit (the distribution tail).
    fractions:
        The empirical citation fractions at those ages.
    r_squared:
        Coefficient of determination of the log-linear fit.
    """

    decay_rate: float
    intercept: float
    ages: tuple[int, ...]
    fractions: tuple[float, ...]
    r_squared: float


def fit_decay_rate(
    network: CitationNetwork,
    *,
    max_age: int = 10,
    tail_start: int | None = None,
) -> DecayFit:
    """Fit ``exp(w*n)`` to the tail of the citation-age distribution.

    The empirical distribution (fraction of citations arriving ``n``
    years after publication, as in Figure 1a) typically rises to a peak
    at 1-3 years and then decays; the *tail* begins at the peak.  We fit
    ``log f(n) = log c + w*n`` by least squares over the tail, mirroring
    the procedure the paper borrows from FutureRank.

    Parameters
    ----------
    network:
        Network whose citation ages to analyse.
    max_age:
        Oldest age (years) included in the distribution.
    tail_start:
        First age of the tail; defaults to the argmax of the empirical
        distribution.

    Raises
    ------
    EvaluationError
        If fewer than two tail points carry citations (no slope can be
        fitted).

    Notes
    -----
    The fit is memoised per ``(network, max_age, tail_start)``: AttRank
    resolves ``w`` at scoring time when none is given, and without the
    cache every grid point with ``gamma > 0`` would redo the
    citation-age scan and the least-squares fit.
    """
    return memoize_on(
        network,
        ("decay_fit", int(max_age), tail_start),
        lambda: _fit_decay_rate(
            network, max_age=max_age, tail_start=tail_start
        ),
    )


def _fit_decay_rate(
    network: CitationNetwork,
    *,
    max_age: int,
    tail_start: int | None,
) -> DecayFit:
    distribution = citation_age_distribution(network, max_age=max_age)
    if tail_start is None:
        tail_start = int(np.argmax(distribution))
    if not 0 <= tail_start <= max_age:
        raise ConfigurationError(
            f"tail_start must be in [0, {max_age}], got {tail_start}"
        )
    ages = np.arange(tail_start, max_age + 1)
    fractions = distribution[tail_start:]
    positive = fractions > 0
    if positive.sum() < 2:
        # Degenerate tail (very young or sparse network): widen the fit
        # to every age that received citations.
        ages = np.arange(0, max_age + 1)
        fractions = distribution
        positive = fractions > 0
    if positive.sum() < 2:
        raise EvaluationError(
            "cannot fit a decay rate: fewer than two ages received "
            "citations"
        )
    x = ages[positive].astype(np.float64)
    y = np.log(fractions[positive])
    slope, intercept = np.polyfit(x, y, deg=1)
    predicted = intercept + slope * x
    ss_res = float(np.sum((y - predicted) ** 2))
    ss_tot = float(np.sum((y - y.mean()) ** 2))
    r_squared = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    if slope > 0:
        # A rising tail (possible on degenerate synthetic inputs) would
        # produce an invalid positive w; clamp to a mild decay and let the
        # caller inspect r_squared.
        slope = -1e-6
    return DecayFit(
        decay_rate=float(slope),
        intercept=float(intercept),
        ages=tuple(int(a) for a in ages[positive]),
        fractions=tuple(float(f) for f in fractions[positive]),
        r_squared=r_squared,
    )
