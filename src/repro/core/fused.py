"""The fused multi-method solver — one SpMV pass per iteration, shared.

Every iterative method in this library (AttRank, PageRank, CiteRank,
FutureRank, ECM) power-iterates a fixed-point map of the shape

    x  <-  alpha * (M @ x  [+ dangling correction])  +  jump

over the *same* citation operator (ECM over its own retained matrix).
Solving them one at a time walks the sparse matrix once per method per
iteration; this module stacks the methods' iterates and advances all of
them with a **single sparse multiply per distinct operator per
iteration**:

    Y = M @ X                                   (one SpMV, m columns)
    U = diag(alpha) applied per column:  U[:, j] = alpha_j * Y[:, j] + J[:, j]

followed by the per-column hygiene the scalar loop performs (dangling
correction, L1 renormalisation, residual tracking).  Columns carry their
own tolerance, iteration budget and convergence mask: a column whose L1
residual drops below its tolerance is *dropped from the stack* and the
remaining columns keep iterating on a compacted matrix, so a
fast-converging method never pays for a slow one.

Layout and memory model
-----------------------
The carried iterate is the *transposed* stack ``XT`` — ``(m, n)``,
C-order, one contiguous row per column — because everything outside the
SpMV itself is per-column work (masked dangling sums, row
renormalisation, L1 residuals), and contiguous rows make those plain
axis-1 reductions.  The ``(n, m)`` SpMV operand is materialised from
``XT`` once per iteration into a persistent buffer; the updated stack
is transposed back into the double-buffer partner of ``XT``, and the
two swap roles each iteration, so the loop allocates nothing.  Wide
stacks are solved in column batches sized to
:data:`STACK_BYTES_BUDGET` so the live buffers stay cache-resident
(batching is pure scheduling — per-column arithmetic is unchanged), and
:func:`solve_methods` only stacks operator groups of at least
:data:`FUSE_MIN_COLUMNS` columns, the measured crossover where SpMV
sharing starts to beat the scalar loop's leaner per-iteration traffic.

Bit-identity contract
---------------------
The float64 fused path is **bit-identical** to the per-method
:func:`~repro.core.power_iteration.power_iterate` loop, for any subset
of methods, any drop order and any ``jobs`` value.  This is not a
tolerance claim — the golden fixtures and hypothesis properties assert
``np.array_equal``.  It holds because every fused operation is
elementwise equal to its scalar counterpart:

* ``M @ X`` computes each output column exactly as ``M @ X[:, j]``;
* column reductions (``X[:, j].sum()``) use numpy's pairwise summation,
  whose reduction tree depends only on the element *count*, not the
  stride — a strided column sums bit-identically to a contiguous copy;
* the 2-D broadcasts (``alpha_row * Y + J``, ``U / totals``,
  ``np.abs(U - X)``) are elementwise, so column ``j`` of the result
  equals the 1-D expression on column ``j``;
* row-chunked SpMV (the ``jobs > 1`` path) writes disjoint row slices
  ``Y[lo:hi] = M[lo:hi] @ X`` whose values equal the unchunked product.

* axis-1 reductions over the C-order transposed stack reduce each
  contiguous row with the same pairwise tree as that row's 1-D
  ``.sum()``.

What is *not* safe — and therefore not used — is any ``axis=0``
reduction over an ``(n, m)`` stack (a different traversal order, not
pairwise per column), reducing an F-ordered gather like
``XT[:, mask]`` without a C copy first, or ``np.ascontiguousarray`` /
``.T`` round-trips on one-column stacks (a ``(1, n)`` array is already
contiguous, so those return *views* and in-place updates would alias).
See docs/SOLVER.md for the full model.

float32 mode
------------
``dtype=np.float32`` halves the memory traffic of the stack.  A float32
iteration cannot reach the paper's 1e-12 tolerance (the type holds ~7
decimal digits), so column tolerances are floored at
:data:`FLOAT32_TOLERANCE`; the measured rank-agreement/error bound
against the float64 path is asserted in the test suite and tabulated in
docs/SOLVER.md.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np
import scipy.sparse as sp

try:  # pragma: no cover - import guard exercised by environment
    # The same C kernel scipy's ``csr @ dense`` dispatch lands on, but
    # callable with a *preallocated* output (it accumulates into y).
    # Calling it directly skips a fresh megabyte-scale result
    # allocation per iteration; values are identical because scipy's
    # own path is exactly zeros() + this kernel.
    from scipy.sparse._sparsetools import csr_matvecs as _csr_matvecs
except ImportError:  # pragma: no cover
    _csr_matvecs = None

from repro._typing import FloatVector
from repro.errors import ConfigurationError, ConvergenceError
from repro.obs.registry import REGISTRY
from repro.ranking import ConvergenceInfo

__all__ = [
    "FLOAT32_TOLERANCE",
    "FUSE_MIN_COLUMNS",
    "FusedColumn",
    "FusedSolver",
    "solve_methods",
]

#: The loosest tolerance a float32 iterate can reliably reach; column
#: tolerances are floored here when solving in float32.
FLOAT32_TOLERANCE = 1e-6

#: Working-set budget for one stacked iterate, in bytes.  Wide stacks
#: are solved in column batches sized to this, so the ~4 live (n, k)
#: buffers each iteration streams stay cache-resident: a 64-wide
#: float64 stack at n=7500 is 3.8 MB per buffer, and letting every
#: elementwise pass spill past L2 erases much of the SpMV amortisation
#: the fusion exists for.
STACK_BYTES_BUDGET = 512 << 10

#: Never batch below this many columns (when that many were asked
#: for): the csr SpMV kernel's per-row amortisation saturates around
#: 16 stacked vectors, and giving up kernel throughput to fit cache is
#: a net loss — at large n every per-column pass misses cache in the
#: serial path too, so the relative cost of streaming disappears.
MIN_STACK_WIDTH = 16

#: Minimum columns sharing one operator before
#: :func:`solve_methods` stacks them.  Below this the stacked loop's
#: extra full-stack passes (operand gather, transposed write-back,
#: broadcast affine) cost more than the SpMV sharing recoups — the
#: measured crossover sits near 8 columns — so narrower groups take
#: their methods' scalar ``scores()`` path instead.  Results are
#: bit-identical either way; only wall-clock changes.
FUSE_MIN_COLUMNS = 8


_FUSED_PASSES = REGISTRY.counter(
    "repro_fused_passes_total",
    "Fused solver passes, by outcome.",
    ["outcome"],
)
_FUSED_PASS_SECONDS = REGISTRY.histogram(
    "repro_fused_pass_seconds",
    "Wall-clock seconds per fused solver pass (all columns together).",
)
_FUSED_COLUMN_ITERATIONS = REGISTRY.counter(
    "repro_fused_column_iterations_total",
    "Power iterations accumulated per method column in fused passes.",
    ["method"],
)
_FUSED_ACTIVE_COLUMNS = REGISTRY.histogram(
    "repro_fused_active_columns",
    "Active (unconverged) columns per fused iteration.",
    bounds=(1, 2, 4, 8, 16, 32, 64, 128),
)


@dataclass
class FusedColumn:
    """One method's column in a fused solve.

    A column is either *linear* — ``matrix`` is set, and one iteration
    computes ``alpha * (matrix @ x + dangling correction) + jump`` — or
    a bare ``step`` callable (the degenerate form
    :func:`~repro.core.power_iteration.power_iterate` delegates
    through).  Linear columns with a ``combine`` callback override the
    affine update while still sharing the stacked SpMV (FutureRank's
    author-reinforcement term).

    Attributes
    ----------
    label:
        Method label, used for diagnostics and metrics.
    matrix:
        CSR operator of the linear part.  Columns sharing the *same*
        matrix object share one SpMV per iteration.
    alpha:
        Damping factor multiplying the SpMV result.
    jump:
        Additive vector of the affine update (teleport, attention jump,
        entry distribution, ...).  Required for linear columns without
        a ``combine`` callback.
    dangling:
        Optional boolean mask of dangling papers; when set, the SpMV
        result receives the ``sum(x[dangling]) / n`` correction before
        damping, exactly as
        :meth:`~repro.graph.matrix.StochasticOperator.apply` does.
    combine:
        Optional ``(y, x) -> u`` callback replacing the affine update:
        ``y`` is the (dangling-corrected) SpMV result, ``x`` the current
        iterate, both 1-D contiguous.  Must mirror the method's scalar
        step bit-for-bit.
    step:
        Bare fixed-point map for non-linear columns; mutually exclusive
        with ``matrix``.
    start:
        Starting vector (``None`` = uniform), handled exactly as
        :func:`~repro.core.power_iteration.power_iterate` handles it.
    normalize:
        Renormalise the iterate to sum 1 after every step.
    tol, max_iterations, raise_on_failure:
        Per-column convergence controls with
        :func:`~repro.core.power_iteration.power_iterate` semantics.
    """

    label: str
    matrix: sp.csr_matrix | None = None
    alpha: float = 0.0
    jump: FloatVector | None = None
    dangling: np.ndarray | None = None
    combine: Callable[[FloatVector, FloatVector], FloatVector] | None = None
    step: Callable[[FloatVector], FloatVector] | None = None
    start: FloatVector | None = None
    normalize: bool = True
    tol: float = 1e-12
    max_iterations: int = 1000
    raise_on_failure: bool = True

    def __post_init__(self) -> None:
        if self.tol <= 0:
            raise ConfigurationError(f"tol must be positive, got {self.tol}")
        if self.max_iterations < 1:
            raise ConfigurationError(
                f"max_iterations must be >= 1, got {self.max_iterations}"
            )
        if (self.matrix is None) == (self.step is None):
            raise ConfigurationError(
                f"column {self.label!r} must set exactly one of "
                "matrix/step"
            )
        if self.step is not None and self.combine is not None:
            raise ConfigurationError(
                f"column {self.label!r}: combine requires a matrix"
            )
        if (
            self.matrix is not None
            and self.combine is None
            and self.jump is None
        ):
            raise ConfigurationError(
                f"column {self.label!r}: a linear column needs a jump "
                "vector (pass zeros explicitly if the update has none)"
            )


@dataclass
class _ColumnState:
    """Book-keeping of one still-active column inside the solve loop."""

    index: int  # position in the solver's input column list
    column: FusedColumn
    history: list[float] = field(default_factory=list)


@dataclass
class _IterationPlan:
    """The loop structure for the current set of active columns.

    Everything here depends only on column *membership*, so it is
    computed once per compaction instead of once per iteration — the
    iteration body itself stays almost pure numpy.
    """

    #: ``(matrix id, positions, covers all columns)`` per distinct
    #: operator among the active columns.
    groups: list[tuple[int, list[int], bool]]
    #: ``(position, mask)`` for columns with a dangling correction.
    dangling: list[tuple[int, np.ndarray]]
    #: Dangling columns grouped by shared mask: ``(mask, positions)``
    #: per distinct mask object — one gathered row-sum per group
    #: instead of one python-level masked sum per column.
    dangling_groups: list[tuple[np.ndarray, list[int]]]
    #: Positions of bare-step columns (no matrix).
    step_positions: list[int]
    #: Positions of combine-callback columns.
    combine_positions: list[int]
    #: Positions renormalised to sum 1 after every step.
    normalizing: list[int]
    #: Boolean mask over positions, True where the column normalises.
    normalizing_mask: np.ndarray
    #: Effective per-column tolerances, aligned with positions.
    tols: list[float]
    #: Whether every active column carries a dangling mask (enables the
    #: broadcast correction add instead of per-column strided adds).
    dangling_all: bool


class FusedSolver:
    """Solve many :class:`FusedColumn` fixed points in one stacked loop.

    Parameters
    ----------
    columns:
        The column specs, one per method.
    n:
        Vector length (every start/jump vector must have this length).
    jobs:
        Thread count for row-chunked SpMV.  ``1`` (default) multiplies
        unchunked; higher values split each operator's rows into
        ``jobs`` contiguous ranges computed concurrently.  The result
        is bit-identical for any value.
    dtype:
        ``np.float64`` (default, bit-identical to the scalar loop) or
        ``np.float32`` (opt-in, tolerances floored at
        :data:`FLOAT32_TOLERANCE`).
    emit_metrics:
        Record the ``repro_fused_*`` instruments.  The degenerate
        single-column delegation from
        :func:`~repro.core.power_iteration.power_iterate` passes
        ``False`` so per-method serving metrics stay meaningful.
    """

    def __init__(
        self,
        columns: Sequence[FusedColumn],
        n: int,
        *,
        jobs: int = 1,
        dtype: Any = np.float64,
        emit_metrics: bool = True,
    ) -> None:
        if n <= 0:
            raise ConfigurationError(
                f"vector length must be positive, got {n}"
            )
        if jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
        self._dtype = np.dtype(dtype)
        if self._dtype not in (np.dtype(np.float64), np.dtype(np.float32)):
            raise ConfigurationError(
                f"dtype must be float64 or float32, got {self._dtype}"
            )
        if self._dtype == np.dtype(np.float32):
            for column in columns:
                if column.step is not None:
                    raise ConfigurationError(
                        "float32 mode requires linear columns; column "
                        f"{column.label!r} uses a bare step callable"
                    )
        self._columns = list(columns)
        self._n = int(n)
        self._jobs = int(jobs)
        self._emit_metrics = emit_metrics

    # ------------------------------------------------------------------
    def _prepared_start(self, column: FusedColumn) -> np.ndarray:
        """The column's start vector, with power_iterate's semantics."""
        n = self._n
        if column.start is None:
            vector = np.full(n, 1.0 / n, dtype=self._dtype)
            return vector
        vector = np.asarray(column.start, dtype=self._dtype).copy()
        if vector.shape != (n,):
            raise ConfigurationError(
                f"start vector has shape {vector.shape}, expected ({n},)"
            )
        total = vector.sum()
        if column.normalize and total > 0:
            vector /= total
        return vector

    def _effective_tol(self, column: FusedColumn) -> float:
        if self._dtype == np.dtype(np.float32):
            return max(column.tol, FLOAT32_TOLERANCE)
        return column.tol

    def _stack_width(self, k: int) -> int:
        """Columns per batch so one stacked buffer stays cache-sized.

        See :data:`STACK_BYTES_BUDGET`.  Batching is a pure scheduling
        choice — each column's arithmetic is unchanged, so results are
        bit-identical at any width.
        """
        column_bytes = self._n * self._dtype.itemsize
        by_budget = STACK_BYTES_BUDGET // max(column_bytes, 1)
        return max(1, min(k, max(MIN_STACK_WIDTH, by_budget)))

    def _chunks(
        self, matrix: sp.csr_matrix
    ) -> list[tuple[int, int, sp.csr_matrix]]:
        """Contiguous row ranges of ``matrix``, one per job."""
        n = matrix.shape[0]
        jobs = min(self._jobs, n)
        bounds = np.linspace(0, n, jobs + 1).astype(int)
        return [
            (int(lo), int(hi), matrix[lo:hi])
            for lo, hi in zip(bounds[:-1], bounds[1:])
            if hi > lo
        ]

    def solve(self) -> list[tuple[FloatVector, ConvergenceInfo]]:
        """Run the stacked iteration; results align with the columns.

        Returns one ``(vector, info)`` pair per input column, exactly
        what :func:`~repro.core.power_iteration.power_iterate` returns
        per method.

        Raises
        ------
        ConvergenceError
            When a column with ``raise_on_failure`` exhausts its budget
            (the lowest-index failing column reports, matching the
            serial solve order).
        """
        if not self._columns:
            return []
        n = self._n
        dtype = self._dtype
        for column in self._columns:
            if column.matrix is not None and column.matrix.shape != (n, n):
                raise ConfigurationError(
                    f"column {column.label!r} matrix has shape "
                    f"{column.matrix.shape}, expected ({n}, {n})"
                )

        # Cast + row-chunk each distinct operator once per solve.
        prepared: dict[int, sp.csr_matrix] = {}
        chunked: dict[int, list[tuple[int, int, sp.csr_matrix]]] = {}
        for column in self._columns:
            if column.matrix is None or id(column.matrix) in prepared:
                continue
            matrix = column.matrix
            if matrix.dtype != dtype:
                matrix = matrix.astype(dtype)
            prepared[id(column.matrix)] = matrix
            if self._jobs > 1:
                chunked[id(column.matrix)] = self._chunks(matrix)

        results: list[tuple[FloatVector, ConvergenceInfo] | None] = [
            None
        ] * len(self._columns)
        pool = (
            ThreadPoolExecutor(max_workers=self._jobs)
            if self._jobs > 1
            else None
        )
        active_counts: list[int] = []
        width = self._stack_width(len(self._columns))
        try:
            for lo in range(0, len(self._columns), width):
                batch = self._columns[lo : lo + width]
                states = [
                    _ColumnState(index=lo + i, column=c)
                    for i, c in enumerate(batch)
                ]
                # Each batch's stack is carried transposed: XT is
                # (k, n) C-order, so a method's iterate is one
                # *contiguous row* — all per-column reductions
                # (residuals, normalisation totals, dangling mass)
                # read rows of XT at full memory bandwidth instead of
                # paying the cache-line-per-element cost of strided
                # column access.  The (n, k) operand each SpMV needs
                # is materialised per operator group inside the loop.
                XT = np.empty((len(batch), n), dtype=dtype, order="C")
                J = np.zeros((n, len(batch)), dtype=dtype, order="C")
                alphas = np.zeros(len(batch), dtype=dtype)
                for position, column in enumerate(batch):
                    XT[position] = self._prepared_start(column)
                    if column.matrix is not None and column.combine is None:
                        J[:, position] = np.asarray(column.jump, dtype=dtype)
                        alphas[position] = column.alpha
                self._iterate(
                    states,
                    XT,
                    J,
                    alphas,
                    prepared,
                    chunked,
                    pool,
                    results,
                    active_counts,
                )
        finally:
            if pool is not None:
                pool.shutdown(wait=True)
        if self._emit_metrics and len(self._columns) > 1:
            for count in active_counts:
                _FUSED_ACTIVE_COLUMNS.observe(count)
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    def _spmv(
        self,
        matrix_key: int,
        prepared: dict[int, sp.csr_matrix],
        chunked: dict[int, list[tuple[int, int, sp.csr_matrix]]],
        pool: ThreadPoolExecutor | None,
        block: np.ndarray,
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        """``matrix @ block`` — unchunked, or by disjoint row ranges.

        With ``out`` (C-contiguous, same shape) the product lands in
        the caller's buffer; bits match the allocating path exactly.
        """
        if pool is None:
            matrix = prepared[matrix_key]
            if out is not None and _csr_matvecs is not None:
                out.fill(0.0)
                _csr_matvecs(
                    matrix.shape[0],
                    matrix.shape[1],
                    block.shape[1],
                    matrix.indptr,
                    matrix.indices,
                    matrix.data,
                    block.ravel(),
                    out.ravel(),
                )
                return out
            return matrix @ block
        if out is None:
            out = np.empty_like(block)

        def run(lo: int, hi: int, part: sp.csr_matrix) -> None:
            out[lo:hi] = part @ block

        futures = [
            pool.submit(run, lo, hi, part)
            for lo, hi, part in chunked[matrix_key]
        ]
        for future in futures:
            future.result()
        return out

    def _plan(self, states: list[_ColumnState]) -> _IterationPlan:
        """Precompute the loop structure for the active column set."""
        groups: dict[int, list[int]] = {}
        for position, state in enumerate(states):
            if state.column.matrix is not None:
                groups.setdefault(id(state.column.matrix), []).append(
                    position
                )
        dangling = [
            (position, state.column.dangling)
            for position, state in enumerate(states)
            if state.column.dangling is not None
        ]
        mask_groups: dict[int, tuple[np.ndarray, list[int]]] = {}
        for position, mask in dangling:
            entry = mask_groups.setdefault(id(mask), (mask, []))
            entry[1].append(position)
        normalizing = [
            position
            for position, state in enumerate(states)
            if state.column.normalize
        ]
        normalizing_mask = np.zeros(len(states), dtype=bool)
        normalizing_mask[normalizing] = True
        return _IterationPlan(
            groups=[
                (key, positions, len(positions) == len(states))
                for key, positions in groups.items()
            ],
            dangling=dangling,
            dangling_groups=list(mask_groups.values()),
            step_positions=[
                position
                for position, state in enumerate(states)
                if state.column.step is not None
            ],
            combine_positions=[
                position
                for position, state in enumerate(states)
                if state.column.combine is not None
            ],
            normalizing=normalizing,
            normalizing_mask=normalizing_mask,
            tols=[
                self._effective_tol(state.column) for state in states
            ],
            dangling_all=len(dangling) == len(states),
        )

    def _iterate(
        self,
        states: list[_ColumnState],
        XT: np.ndarray,
        J: np.ndarray,
        alphas: np.ndarray,
        prepared: dict[int, sp.csr_matrix],
        chunked: dict[int, list[tuple[int, int, sp.csr_matrix]]],
        pool: ThreadPoolExecutor | None,
        results: list[tuple[FloatVector, ConvergenceInfo] | None],
        active_counts: list[int],
    ) -> None:
        n = self._n
        dtype = self._dtype
        iteration = 0
        plan = self._plan(states)
        alphas_row = alphas[None, :]
        # Persistent per-width buffers — the loop allocates nothing
        # megabyte-scale per iteration (fresh temporaries showed up as
        # the top cost in profiles: page faults on every ~1MB array).
        # ``spare`` is the double-buffer partner of XT: each iteration
        # writes the updated transposed stack into it, and the old XT
        # (whose bits are dead once residuals are taken) becomes the
        # next iteration's spare.
        spare: np.ndarray = np.empty_like(XT)
        y_buf: np.ndarray | None = None
        op_buf: np.ndarray | None = None
        while states:
            iteration += 1
            k = len(states)
            active_counts.append(k)
            if y_buf is None:
                y_buf = np.empty((n, k), dtype=dtype)
                op_buf = np.empty((n, k), dtype=dtype)

            # --- one SpMV per distinct operator, amortised over its
            # columns; bare-step columns have no linear part to compute.
            # Operands are materialised from XT's rows: a single-column
            # group reuses the row buffer as an (n, 1) view, wider
            # groups pay one gather + transpose (``order="C"`` matters:
            # plain np.array would keep the transposed layout).
            Y: np.ndarray | None = None
            for matrix_key, positions, covers_all in plan.groups:
                if covers_all:
                    np.copyto(op_buf, XT.T)
                    Y = self._spmv(
                        matrix_key,
                        prepared,
                        chunked,
                        pool,
                        op_buf,
                        out=y_buf,
                    )
                    break
                Y = y_buf
                if len(positions) == 1:
                    block = XT[positions[0]][:, None]
                else:
                    block = np.array(XT[positions].T, order="C")
                Y[:, positions] = self._spmv(
                    matrix_key, prepared, chunked, pool, block
                )

            # --- dangling corrections, applied to the SpMV result
            # before damping (mirrors StochasticOperator.apply).  Rows
            # of XT are contiguous, so each masked sum is a cheap
            # gather; when every column has a mask the scalar adds
            # collapse into one broadcast.
            if plan.dangling:
                corrections = np.zeros(k, dtype=dtype)
                for mask, positions in plan.dangling_groups:
                    if len(positions) == 1:
                        corrections[positions[0]] = (
                            XT[positions[0]][mask].sum() / n
                        )
                        continue
                    rows = XT if len(positions) == k else XT[positions]
                    # rows[:, mask] comes back F-ordered (advanced
                    # indexing on the trailing axis); the C copy makes
                    # axis-1 sums reduce each row exactly like the
                    # scalar path's 1-D masked sums.
                    gathered = np.ascontiguousarray(rows[:, mask])
                    corrections[positions] = gathered.sum(axis=1) / n
                if plan.dangling_all:
                    Y += corrections[None, :]  # type: ignore[operator]
                else:
                    for position, _ in plan.dangling:
                        Y[:, position] += corrections[position]  # type: ignore[index]

            # --- the affine update, in place on the SpMV result (its
            # combine-column inputs are snapshotted first).  Combine
            # columns carry alpha=0 and a zero jump, so the broadcast
            # writes zeros there and the callback overwrites them;
            # standard columns get exactly the per-column expression
            # (the broadcast is elementwise).
            if not plan.step_positions:
                # .copy() — not ascontiguousarray — because a (n, 1)
                # stack's lone column is already contiguous and a view
                # would be corrupted by the in-place multiply below.
                combine_inputs = [
                    Y[:, position].copy()  # type: ignore[index]
                    for position in plan.combine_positions
                ]
                np.multiply(Y, alphas_row, out=Y)
                np.add(Y, J, out=Y)
                U = Y
                for position, applied in zip(
                    plan.combine_positions, combine_inputs
                ):
                    U[:, position] = states[position].column.combine(
                        applied, XT[position]
                    )
            else:
                # Bare-step columns (the power_iterate delegation) have
                # no SpMV result to broadcast over; update per column.
                # op_buf's contents (this iteration's SpMV operand) are
                # dead once Y holds the product, so it hosts U.
                U = op_buf
                for position, state in enumerate(states):
                    column = state.column
                    if column.step is not None:
                        U[:, position] = column.step(XT[position])
                    elif column.combine is not None:
                        U[:, position] = column.combine(
                            np.ascontiguousarray(Y[:, position]),  # type: ignore[index]
                            XT[position],
                        )
                    else:
                        U[:, position] = (
                            column.alpha * Y[:, position]  # type: ignore[index]
                            + J[:, position]
                        )
            # The updated stack, transposed back into the spare row
            # buffer (an explicit strided copy — never a view, unlike
            # ascontiguousarray on a (n, 1) stack).  From here on only
            # UT is read; U aliases a reusable buffer.
            np.copyto(spare, U.T)
            UT = spare

            # --- per-column renormalisation, on UT only (next
            # iteration's operand is rebuilt from UT, so the (n, k)
            # layout never needs the divide).  Dividing by exactly 1.0
            # is a bitwise no-op, so one broadcast divide covers both
            # the normalizing and the non-normalizing columns (and is
            # skipped entirely when no column normalises).  Row sums of
            # UT use the same pairwise reduction as a 1-D ``.sum()``.
            if plan.normalizing:
                totals = UT.sum(axis=1)
                divisors = np.where(
                    plan.normalizing_mask & (totals > 0),
                    totals,
                    dtype.type(1.0),
                )
                np.divide(UT, divisors[:, None], out=UT)

            # --- residuals.  XT's bits are dead after this point (the
            # next iterate is UT), so it doubles as the |U - X| scratch
            # buffer; row sums then keep the pairwise reduction of the
            # scalar path.
            np.subtract(UT, XT, out=XT)
            np.abs(XT, out=XT)
            residuals = XT.sum(axis=1).tolist()

            # --- convergence masks.
            finished: list[int] = []
            failure: ConvergenceError | None = None
            failure_index = len(self._columns)
            for position, state in enumerate(states):
                column = state.column
                residual = residuals[position]
                state.history.append(residual)
                if residual <= plan.tols[position]:
                    results[state.index] = (
                        UT[position].copy(),
                        ConvergenceInfo(
                            iterations=iteration,
                            residual=residual,
                            converged=True,
                            residual_history=tuple(state.history),
                        ),
                    )
                    finished.append(position)
                elif iteration >= column.max_iterations:
                    if column.raise_on_failure:
                        if state.index < failure_index:
                            failure_index = state.index
                            failure = ConvergenceError(
                                f"power iteration did not reach "
                                f"tol={plan.tols[position]} within "
                                f"{column.max_iterations} iterations "
                                f"(last residual {residual:.3e})",
                                iterations=column.max_iterations,
                                residual=residual,
                            )
                        continue
                    results[state.index] = (
                        UT[position].copy(),
                        ConvergenceInfo(
                            iterations=column.max_iterations,
                            residual=residual,
                            converged=False,
                            residual_history=tuple(state.history),
                        ),
                    )
                    finished.append(position)
            if failure is not None:
                raise failure

            # --- drop finished columns from the stack.
            if finished:
                keep = [
                    position
                    for position in range(k)
                    if position not in set(finished)
                ]
                states = [states[position] for position in keep]
                if not states:
                    return
                XT = UT[keep]
                J = np.ascontiguousarray(J[:, keep])
                alphas = alphas[keep]
                alphas_row = alphas[None, :]
                plan = self._plan(states)
                # Stack width changed: rebuild the persistent buffers.
                spare = np.empty_like(XT)
                y_buf = None
                op_buf = None
            else:
                # Swap: UT (== spare) becomes the new iterate, and the
                # old XT — whose bits died in the residual step — is
                # next iteration's spare.
                XT, spare = UT, XT


def solve_methods(
    network: Any,
    methods: Sequence[Any],
    *,
    jobs: int = 1,
    dtype: Any = np.float64,
) -> list[tuple[FloatVector, ConvergenceInfo | None]]:
    """Score many :class:`~repro.ranking.RankingMethod`s in one pass.

    Methods that expose a fused column
    (:meth:`~repro.ranking.RankingMethod.fused_column` returns a spec)
    are stacked and solved together; the rest fall back to their own
    ``scores()`` — closed forms (CC, RAM, ATT-ONLY) and structurally
    unfusable iterations (WSDM's bipartite multi-matrix loop).  Each
    method's ``last_convergence`` is populated exactly as a direct
    ``scores()`` call would.

    Returns ``(scores, info)`` per method, in input order; ``info`` is
    ``None`` for closed forms.  With ``dtype=np.float64`` (default) the
    vectors are bit-identical to per-method solves.
    """
    import time as _time

    results: list[tuple[FloatVector, ConvergenceInfo | None] | None] = [
        None
    ] * len(methods)
    columns: list[FusedColumn] = []
    positions: list[int] = []
    for position, method in enumerate(methods):
        column = method.fused_column(network)
        if column is not None:
            columns.append(column)
            positions.append(position)
    # Stacking only pays once enough columns share an operator (see
    # FUSE_MIN_COLUMNS); narrower groups fall through to the scalar
    # loop below with bit-identical results.  Explicit float32 or
    # threaded requests always stack — the scalar fallback cannot
    # honour them.
    if columns and jobs == 1 and np.dtype(dtype) == np.float64:
        group_sizes: dict[int, int] = {}
        for column in columns:
            key = id(column.matrix)
            group_sizes[key] = group_sizes.get(key, 0) + 1
        kept = [
            (column, position)
            for column, position in zip(columns, positions)
            if group_sizes[id(column.matrix)] >= FUSE_MIN_COLUMNS
        ]
        columns = [column for column, _ in kept]
        positions = [position for _, position in kept]
    if columns:
        started = _time.perf_counter()
        solver = FusedSolver(
            columns, network.n_papers, jobs=jobs, dtype=dtype
        )
        try:
            solved = solver.solve()
        except ConvergenceError:
            _FUSED_PASSES.inc(outcome="error")
            raise
        elapsed = _time.perf_counter() - started
        _FUSED_PASSES.inc(outcome="ok")
        _FUSED_PASS_SECONDS.observe(elapsed)
        for position, column, (vector, info) in zip(
            positions, columns, solved
        ):
            _FUSED_COLUMN_ITERATIONS.inc(
                info.iterations, method=column.label
            )
            methods[position].last_convergence = info
            results[position] = (vector, info)
    for position, method in enumerate(methods):
        if results[position] is None:
            scores = method.scores(network)
            results[position] = (scores, method.last_convergence)
    return results  # type: ignore[return-value]
