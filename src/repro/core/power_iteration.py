"""Generic power-method solver with convergence diagnostics.

Every iterative method in this library (AttRank, PageRank, CiteRank,
FutureRank, ECM) is a fixed-point iteration ``x <- F(x)`` on a probability
vector.  This module centralises the loop semantics: start vector
handling, L1 residual tracking, tolerance/budget control, and the strict
convergence check that the paper's experiments use (epsilon <= 1e-12,
Section 4.3).

Since the fused-solver rework, the loop itself lives in
:class:`repro.core.fused.FusedSolver`; :func:`power_iterate` is the
degenerate one-column form.  Delegating (rather than keeping two loops)
makes "a single column behaves exactly like the legacy solver" a
structural property instead of a test-only promise — every scalar solve
in the suite exercises the same code the stacked multi-method path runs.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro._typing import FloatVector
from repro.errors import ConfigurationError, ConvergenceError
from repro.ranking import ConvergenceInfo

__all__ = [
    "power_iterate",
    "uniform_vector",
    "grow_start_vector",
    "grow_start_stack",
    "DEFAULT_TOLERANCE",
]

#: The convergence error used throughout the paper's evaluation (§4.3).
DEFAULT_TOLERANCE = 1e-12


def uniform_vector(n: int) -> FloatVector:
    """The uniform probability vector of length ``n``."""
    if n <= 0:
        raise ConfigurationError(f"vector length must be positive, got {n}")
    return np.full(n, 1.0 / n, dtype=np.float64)


def grow_start_vector(previous: FloatVector, n: int) -> FloatVector:
    """Adapt a previous solution to a network that has grown to ``n`` papers.

    The incremental-update path (:mod:`repro.serve`) re-solves after
    appending papers to a snapshot.  Because extension preserves the
    indices of existing papers, the previous fixed point is an excellent
    start for every old coordinate: old entries are kept *verbatim* and
    new papers get the previous mean entry, so the vector's overall
    scale survives.  That matters for unnormalised fixed points like
    CiteRank's traffic vector (solved with ``normalize=False``);
    stochastic iterations renormalise their start inside
    :func:`power_iterate` anyway.  Theorem 1 guarantees the fixed point
    itself is unchanged by the start — only the iteration count
    improves.

    Raises
    ------
    ConfigurationError
        If ``previous`` is not a finite non-negative vector of length
        <= ``n``, or carries no mass at all.
    """
    if n <= 0:
        raise ConfigurationError(f"vector length must be positive, got {n}")
    vector = np.asarray(previous, dtype=np.float64)
    if vector.ndim != 1:
        raise ConfigurationError(
            f"previous solution must be a vector, got shape {vector.shape}"
        )
    if vector.size > n:
        raise ConfigurationError(
            f"previous solution has length {vector.size}, which exceeds "
            f"the grown network's {n} papers (length must be <= {n})"
        )
    if not np.all(np.isfinite(vector)) or np.any(vector < 0):
        raise ConfigurationError(
            "previous solution must be finite and non-negative"
        )
    total = float(vector.sum())
    if total <= 0:
        raise ConfigurationError("previous solution carries no mass")
    grown = np.full(n, total / vector.size, dtype=np.float64)
    grown[: vector.size] = vector
    return grown


def grow_start_stack(
    previous: Sequence[FloatVector | None], n: int
) -> np.ndarray:
    """Stacked form of :func:`grow_start_vector` for fused solves.

    Builds the C-order ``(n, m)`` warm-start matrix whose column ``j``
    is ``grow_start_vector(previous[j], n)`` — or the uniform vector
    when ``previous[j]`` is ``None`` (a method being solved cold inside
    an otherwise warm fused pass).  The same rules apply per column:
    a previous solution *longer* than ``n`` (the network shrank) is a
    :class:`~repro.errors.ConfigurationError`, old coordinates are kept
    verbatim, and new papers get the column's previous mean entry.

    Raises
    ------
    ConfigurationError
        If ``previous`` is empty, or any column fails the
        :func:`grow_start_vector` validation.
    """
    if not previous:
        raise ConfigurationError(
            "grow_start_stack needs at least one previous solution"
        )
    stack = np.empty((n, len(previous)), dtype=np.float64, order="C")
    for position, vector in enumerate(previous):
        if vector is None:
            stack[:, position] = uniform_vector(n)
        else:
            stack[:, position] = grow_start_vector(vector, n)
    return stack


def power_iterate(
    step: Callable[[FloatVector], FloatVector],
    n: int,
    *,
    tol: float = DEFAULT_TOLERANCE,
    max_iterations: int = 1000,
    start: FloatVector | None = None,
    normalize: bool = True,
    raise_on_failure: bool = True,
) -> tuple[FloatVector, ConvergenceInfo]:
    """Iterate ``x <- step(x)`` until the L1 change drops below ``tol``.

    Parameters
    ----------
    step:
        The fixed-point map.  For a column-stochastic matrix ``R`` this is
        ``lambda x: R @ x`` and the iteration is the power method.
    n:
        Vector length.
    tol:
        L1 convergence tolerance (paper default: 1e-12).
    max_iterations:
        Iteration budget.
    start:
        Starting vector (default: uniform).  The paper's Theorem 1
        guarantees the fixed point is independent of this choice.
    normalize:
        Renormalise the iterate to sum 1 after every step, guarding
        against floating-point drift.  Stochastic steps preserve total
        mass exactly in theory; the renormalisation is numerical hygiene.
    raise_on_failure:
        Raise :class:`ConvergenceError` if the budget is exhausted
        (default).  With ``False``, return the last iterate with
        ``converged=False`` — needed for FutureRank, which the paper
        notes "did not, in practice, converge under all possible
        settings".

    Returns
    -------
    (vector, info):
        The fixed point (or last iterate) and its
        :class:`~repro.ranking.ConvergenceInfo`.
    """
    from repro.core.fused import FusedColumn, FusedSolver

    column = FusedColumn(
        label="power_iterate",
        step=step,
        start=start,
        normalize=normalize,
        tol=tol,
        max_iterations=max_iterations,
        raise_on_failure=raise_on_failure,
    )
    solver = FusedSolver([column], n, emit_metrics=False)
    ((vector, info),) = solver.solve()
    return vector, info
