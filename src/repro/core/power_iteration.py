"""Generic power-method solver with convergence diagnostics.

Every iterative method in this library (AttRank, PageRank, CiteRank,
FutureRank, ECM) is a fixed-point iteration ``x <- F(x)`` on a probability
vector.  This module centralises the loop: start vector handling, L1
residual tracking, tolerance/budget control, and the strict convergence
check that the paper's experiments use (epsilon <= 1e-12, Section 4.3).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro._typing import FloatVector
from repro.errors import ConfigurationError, ConvergenceError
from repro.ranking import ConvergenceInfo

__all__ = ["power_iterate", "uniform_vector", "DEFAULT_TOLERANCE"]

#: The convergence error used throughout the paper's evaluation (§4.3).
DEFAULT_TOLERANCE = 1e-12


def uniform_vector(n: int) -> FloatVector:
    """The uniform probability vector of length ``n``."""
    if n <= 0:
        raise ConfigurationError(f"vector length must be positive, got {n}")
    return np.full(n, 1.0 / n, dtype=np.float64)


def power_iterate(
    step: Callable[[FloatVector], FloatVector],
    n: int,
    *,
    tol: float = DEFAULT_TOLERANCE,
    max_iterations: int = 1000,
    start: FloatVector | None = None,
    normalize: bool = True,
    raise_on_failure: bool = True,
) -> tuple[FloatVector, ConvergenceInfo]:
    """Iterate ``x <- step(x)`` until the L1 change drops below ``tol``.

    Parameters
    ----------
    step:
        The fixed-point map.  For a column-stochastic matrix ``R`` this is
        ``lambda x: R @ x`` and the iteration is the power method.
    n:
        Vector length.
    tol:
        L1 convergence tolerance (paper default: 1e-12).
    max_iterations:
        Iteration budget.
    start:
        Starting vector (default: uniform).  The paper's Theorem 1
        guarantees the fixed point is independent of this choice.
    normalize:
        Renormalise the iterate to sum 1 after every step, guarding
        against floating-point drift.  Stochastic steps preserve total
        mass exactly in theory; the renormalisation is numerical hygiene.
    raise_on_failure:
        Raise :class:`ConvergenceError` if the budget is exhausted
        (default).  With ``False``, return the last iterate with
        ``converged=False`` — needed for FutureRank, which the paper
        notes "did not, in practice, converge under all possible
        settings".

    Returns
    -------
    (vector, info):
        The fixed point (or last iterate) and its
        :class:`~repro.ranking.ConvergenceInfo`.
    """
    if tol <= 0:
        raise ConfigurationError(f"tol must be positive, got {tol}")
    if max_iterations < 1:
        raise ConfigurationError(
            f"max_iterations must be >= 1, got {max_iterations}"
        )
    if start is None:
        current = uniform_vector(n)
    else:
        current = np.asarray(start, dtype=np.float64).copy()
        if current.shape != (n,):
            raise ConfigurationError(
                f"start vector has shape {current.shape}, expected ({n},)"
            )
        total = current.sum()
        if normalize and total > 0:
            current /= total

    history: list[float] = []
    residual = np.inf
    for iteration in range(1, max_iterations + 1):
        updated = step(current)
        if normalize:
            total = updated.sum()
            if total > 0:
                updated = updated / total
        residual = float(np.abs(updated - current).sum())
        history.append(residual)
        current = updated
        if residual <= tol:
            info = ConvergenceInfo(
                iterations=iteration,
                residual=residual,
                converged=True,
                residual_history=tuple(history),
            )
            return current, info

    info = ConvergenceInfo(
        iterations=max_iterations,
        residual=residual,
        converged=False,
        residual_history=tuple(history),
    )
    if raise_on_failure:
        raise ConvergenceError(
            f"power iteration did not reach tol={tol} within "
            f"{max_iterations} iterations (last residual {residual:.3e})",
            iterations=max_iterations,
            residual=residual,
        )
    return current, info
