"""Generic power-method solver with convergence diagnostics.

Every iterative method in this library (AttRank, PageRank, CiteRank,
FutureRank, ECM) is a fixed-point iteration ``x <- F(x)`` on a probability
vector.  This module centralises the loop: start vector handling, L1
residual tracking, tolerance/budget control, and the strict convergence
check that the paper's experiments use (epsilon <= 1e-12, Section 4.3).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro._typing import FloatVector
from repro.errors import ConfigurationError, ConvergenceError
from repro.ranking import ConvergenceInfo

__all__ = [
    "power_iterate",
    "uniform_vector",
    "grow_start_vector",
    "DEFAULT_TOLERANCE",
]

#: The convergence error used throughout the paper's evaluation (§4.3).
DEFAULT_TOLERANCE = 1e-12


def uniform_vector(n: int) -> FloatVector:
    """The uniform probability vector of length ``n``."""
    if n <= 0:
        raise ConfigurationError(f"vector length must be positive, got {n}")
    return np.full(n, 1.0 / n, dtype=np.float64)


def grow_start_vector(previous: FloatVector, n: int) -> FloatVector:
    """Adapt a previous solution to a network that has grown to ``n`` papers.

    The incremental-update path (:mod:`repro.serve`) re-solves after
    appending papers to a snapshot.  Because extension preserves the
    indices of existing papers, the previous fixed point is an excellent
    start for every old coordinate: old entries are kept *verbatim* and
    new papers get the previous mean entry, so the vector's overall
    scale survives.  That matters for unnormalised fixed points like
    CiteRank's traffic vector (solved with ``normalize=False``);
    stochastic iterations renormalise their start inside
    :func:`power_iterate` anyway.  Theorem 1 guarantees the fixed point
    itself is unchanged by the start — only the iteration count
    improves.

    Raises
    ------
    ConfigurationError
        If ``previous`` is not a finite non-negative vector of length
        <= ``n``, or carries no mass at all.
    """
    if n <= 0:
        raise ConfigurationError(f"vector length must be positive, got {n}")
    vector = np.asarray(previous, dtype=np.float64)
    if vector.ndim != 1:
        raise ConfigurationError(
            f"previous solution must be a vector, got shape {vector.shape}"
        )
    if vector.size > n:
        raise ConfigurationError(
            f"previous solution has length {vector.size}, which exceeds "
            f"the grown network's {n} papers (length must be <= {n})"
        )
    if not np.all(np.isfinite(vector)) or np.any(vector < 0):
        raise ConfigurationError(
            "previous solution must be finite and non-negative"
        )
    total = float(vector.sum())
    if total <= 0:
        raise ConfigurationError("previous solution carries no mass")
    grown = np.full(n, total / vector.size, dtype=np.float64)
    grown[: vector.size] = vector
    return grown


def power_iterate(
    step: Callable[[FloatVector], FloatVector],
    n: int,
    *,
    tol: float = DEFAULT_TOLERANCE,
    max_iterations: int = 1000,
    start: FloatVector | None = None,
    normalize: bool = True,
    raise_on_failure: bool = True,
) -> tuple[FloatVector, ConvergenceInfo]:
    """Iterate ``x <- step(x)`` until the L1 change drops below ``tol``.

    Parameters
    ----------
    step:
        The fixed-point map.  For a column-stochastic matrix ``R`` this is
        ``lambda x: R @ x`` and the iteration is the power method.
    n:
        Vector length.
    tol:
        L1 convergence tolerance (paper default: 1e-12).
    max_iterations:
        Iteration budget.
    start:
        Starting vector (default: uniform).  The paper's Theorem 1
        guarantees the fixed point is independent of this choice.
    normalize:
        Renormalise the iterate to sum 1 after every step, guarding
        against floating-point drift.  Stochastic steps preserve total
        mass exactly in theory; the renormalisation is numerical hygiene.
    raise_on_failure:
        Raise :class:`ConvergenceError` if the budget is exhausted
        (default).  With ``False``, return the last iterate with
        ``converged=False`` — needed for FutureRank, which the paper
        notes "did not, in practice, converge under all possible
        settings".

    Returns
    -------
    (vector, info):
        The fixed point (or last iterate) and its
        :class:`~repro.ranking.ConvergenceInfo`.
    """
    if tol <= 0:
        raise ConfigurationError(f"tol must be positive, got {tol}")
    if max_iterations < 1:
        raise ConfigurationError(
            f"max_iterations must be >= 1, got {max_iterations}"
        )
    if start is None:
        current = uniform_vector(n)
    else:
        current = np.asarray(start, dtype=np.float64).copy()
        if current.shape != (n,):
            raise ConfigurationError(
                f"start vector has shape {current.shape}, expected ({n},)"
            )
        total = current.sum()
        if normalize and total > 0:
            current /= total

    history: list[float] = []
    residual = np.inf
    for iteration in range(1, max_iterations + 1):
        updated = step(current)
        if normalize:
            total = updated.sum()
            if total > 0:
                updated = updated / total
        residual = float(np.abs(updated - current).sum())
        history.append(residual)
        current = updated
        if residual <= tol:
            info = ConvergenceInfo(
                iterations=iteration,
                residual=residual,
                converged=True,
                residual_history=tuple(history),
            )
            return current, info

    info = ConvergenceInfo(
        iterations=max_iterations,
        residual=residual,
        converged=False,
        residual_history=tuple(history),
    )
    if raise_on_failure:
        raise ConvergenceError(
            f"power iteration did not reach tol={tol} within "
            f"{max_iterations} iterations (last residual {residual:.3e})",
            iterations=max_iterations,
            residual=residual,
        )
    return current, info
