"""Additional ranking metrics beyond the paper's two headline measures.

The companion survey the paper builds on (Kanellos et al., TKDE 2019,
reference [16]) evaluates impact-ranking methods with a wider metric
battery; this module provides the common ones so users can extend the
evaluation without re-implementing them:

* **Kendall's tau-b** — pairwise rank agreement over all papers (a
  stricter cousin of Spearman's rho);
* **overlap@k** (top-k intersection) — how many of the method's top-k
  papers are in the ground-truth top-k;
* **average precision@k** — precision-weighted retrieval of the
  ground-truth top-k set.

All follow the library's :class:`~repro.eval.metrics.Metric` protocol
and can be passed anywhere a metric is expected (tuning, comparisons,
heatmaps).
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from repro._typing import FloatVector
from repro.errors import EvaluationError
from repro.eval.metrics import Metric
from repro.ranking import ranking_from_scores

__all__ = [
    "kendall_tau",
    "overlap_at_k",
    "average_precision_at_k",
    "KendallTau",
    "OverlapAtK",
    "AveragePrecisionAtK",
]


def kendall_tau(scores_a: FloatVector, scores_b: FloatVector) -> float:
    """Kendall's tau-b between two score vectors (ties handled).

    Delegates to :func:`scipy.stats.kendalltau` (the O(n log n)
    implementation) after the same shape checks as
    :func:`~repro.eval.metrics.spearman_rho`.
    """
    a = np.asarray(scores_a, dtype=np.float64)
    b = np.asarray(scores_b, dtype=np.float64)
    if a.shape != b.shape or a.ndim != 1:
        raise EvaluationError(
            f"score vectors must share a 1-D shape, got {a.shape} vs {b.shape}"
        )
    if a.size < 2:
        raise EvaluationError("need at least two papers for a correlation")
    if np.unique(a).size < 2 or np.unique(b).size < 2:
        raise EvaluationError(
            "Kendall correlation undefined: a score vector is constant"
        )
    return float(stats.kendalltau(a, b).statistic)


def overlap_at_k(
    method_scores: FloatVector,
    relevance: FloatVector,
    k: int,
) -> float:
    """Fraction of the ground-truth top-k found in the method's top-k.

    This is the "identical papers in top-k" measure used by ranking
    comparisons in the bibliometrics literature (value in [0, 1]).
    """
    scores = np.asarray(method_scores, dtype=np.float64)
    gains = np.asarray(relevance, dtype=np.float64)
    if scores.shape != gains.shape or scores.ndim != 1:
        raise EvaluationError(
            "method scores and relevance must share a 1-D shape, got "
            f"{scores.shape} vs {gains.shape}"
        )
    if k < 1:
        raise EvaluationError(f"k must be >= 1, got {k}")
    k = min(k, scores.size)
    top_method = ranking_from_scores(scores)[:k]
    top_truth = ranking_from_scores(gains)[:k]
    return float(np.intersect1d(top_method, top_truth).size) / k


def average_precision_at_k(
    method_scores: FloatVector,
    relevance: FloatVector,
    k: int,
) -> float:
    """Average precision of retrieving the ground-truth top-k set.

    The ground-truth top-k papers are the "relevant" set; the method's
    ranking is scanned to depth k, accumulating precision at each hit.
    Returns a value in [0, 1]; 1 iff the method's top-k equals the
    ground-truth top-k in any order... scanned in order, so exactly 1
    only when every prefix consists of relevant papers.
    """
    scores = np.asarray(method_scores, dtype=np.float64)
    gains = np.asarray(relevance, dtype=np.float64)
    if scores.shape != gains.shape or scores.ndim != 1:
        raise EvaluationError(
            "method scores and relevance must share a 1-D shape, got "
            f"{scores.shape} vs {gains.shape}"
        )
    if k < 1:
        raise EvaluationError(f"k must be >= 1, got {k}")
    k = min(k, scores.size)
    relevant = set(ranking_from_scores(gains)[:k].tolist())
    ranking = ranking_from_scores(scores)[:k]
    hits = 0
    precision_sum = 0.0
    for position, paper in enumerate(ranking.tolist(), start=1):
        if paper in relevant:
            hits += 1
            precision_sum += hits / position
    return precision_sum / k


class KendallTau(Metric):
    """Kendall's tau-b to the ground-truth STI (higher is better)."""

    name = "kendall"

    def __call__(
        self, method_scores: FloatVector, ground_truth: FloatVector
    ) -> float:
        return kendall_tau(method_scores, ground_truth)


class OverlapAtK(Metric):
    """Top-k overlap with the ground-truth STI ranking."""

    def __init__(self, k: int = 50) -> None:
        if k < 1:
            raise EvaluationError(f"k must be >= 1, got {k}")
        self.k = int(k)
        self.name = f"overlap@{self.k}"

    def __call__(
        self, method_scores: FloatVector, ground_truth: FloatVector
    ) -> float:
        return overlap_at_k(method_scores, ground_truth, self.k)


class AveragePrecisionAtK(Metric):
    """Average precision at k against the ground-truth top-k set."""

    def __init__(self, k: int = 50) -> None:
        if k < 1:
            raise EvaluationError(f"k must be >= 1, got {k}")
        self.k = int(k)
        self.name = f"ap@{self.k}"

    def __call__(
        self, method_scores: FloatVector, ground_truth: FloatVector
    ) -> float:
        return average_precision_at_k(method_scores, ground_truth, self.k)
