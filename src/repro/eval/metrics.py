"""Ranking-quality metrics of the evaluation (paper Section 4.1).

* **Spearman's rho** — rank correlation between a method's scores and the
  ground-truth STI over *all* current papers (overall list similarity).
* **nDCG@k** — rank-order-sensitive agreement on the *top* of the list,
  with the short-term impact as the gain:
  ``DCG@k = sum_{i=1..k} rel(i) / log2(i + 1)`` over the method's top-k,
  normalised by the ideal DCG.

Both are implemented from their definitions; the tests cross-check
Spearman against :func:`scipy.stats.spearmanr`.
"""

from __future__ import annotations

import numpy as np
from scipy.stats import rankdata

from repro._typing import FloatVector
from repro.errors import EvaluationError
from repro.ranking import ranking_from_scores

__all__ = ["spearman_rho", "dcg_at_k", "ndcg_at_k", "Metric", "SpearmanRho", "NDCG"]


def spearman_rho(scores_a: FloatVector, scores_b: FloatVector) -> float:
    """Spearman rank correlation between two score vectors.

    Ties receive average ranks (the standard treatment, and scipy's).
    Returns a value in [-1, 1]; degenerate inputs where either vector is
    constant have undefined correlation and raise.
    """
    a = np.asarray(scores_a, dtype=np.float64)
    b = np.asarray(scores_b, dtype=np.float64)
    if a.shape != b.shape or a.ndim != 1:
        raise EvaluationError(
            f"score vectors must share a 1-D shape, got {a.shape} vs {b.shape}"
        )
    if a.size < 2:
        raise EvaluationError("need at least two papers for a correlation")
    ranks_a = rankdata(a)
    ranks_b = rankdata(b)
    da = ranks_a - ranks_a.mean()
    db = ranks_b - ranks_b.mean()
    denominator = float(np.sqrt((da**2).sum() * (db**2).sum()))
    if denominator == 0:
        raise EvaluationError(
            "Spearman correlation undefined: a score vector is constant"
        )
    return float((da * db).sum() / denominator)


def dcg_at_k(relevance_in_rank_order: FloatVector, k: int) -> float:
    """Discounted cumulative gain of the first ``k`` relevance values."""
    if k < 1:
        raise EvaluationError(f"k must be >= 1, got {k}")
    gains = np.asarray(relevance_in_rank_order, dtype=np.float64)[:k]
    if gains.size == 0:
        return 0.0
    discounts = np.log2(np.arange(2, gains.size + 2, dtype=np.float64))
    return float((gains / discounts).sum())


def ndcg_at_k(
    method_scores: FloatVector,
    relevance: FloatVector,
    k: int,
) -> float:
    """Normalised DCG@k of a method's ranking against ground-truth gains.

    Parameters
    ----------
    method_scores:
        The method's per-paper scores (higher = ranked earlier).
    relevance:
        Ground-truth gain per paper — the short-term impact in the
        paper's evaluation.
    k:
        Cut-off rank (the paper uses {5, 10, 50, 100, 500}, default 50).

    Returns
    -------
    float
        nDCG in [0, 1].  When every paper has zero relevance the ideal
        DCG vanishes and the nDCG is defined as 0 (no ranking can be
        better than any other).
    """
    scores = np.asarray(method_scores, dtype=np.float64)
    gains = np.asarray(relevance, dtype=np.float64)
    if scores.shape != gains.shape or scores.ndim != 1:
        raise EvaluationError(
            "method scores and relevance must share a 1-D shape, got "
            f"{scores.shape} vs {gains.shape}"
        )
    if gains.size and gains.min() < 0:
        raise EvaluationError("relevance gains must be non-negative")
    method_order = ranking_from_scores(scores)
    ideal_order = ranking_from_scores(gains)
    ideal = dcg_at_k(gains[ideal_order], k)
    if ideal == 0:
        return 0.0
    achieved = dcg_at_k(gains[method_order], k)
    return achieved / ideal


class Metric:
    """A named evaluation metric: callable on (method scores, ground truth)."""

    name: str = "?"

    def __call__(
        self, method_scores: FloatVector, ground_truth: FloatVector
    ) -> float:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


class SpearmanRho(Metric):
    """Spearman correlation to the ground-truth STI (higher is better)."""

    name = "spearman"

    def __call__(
        self, method_scores: FloatVector, ground_truth: FloatVector
    ) -> float:
        return spearman_rho(method_scores, ground_truth)


class NDCG(Metric):
    """nDCG@k with the ground-truth STI as the gain (higher is better)."""

    def __init__(self, k: int = 50) -> None:
        if k < 1:
            raise EvaluationError(f"k must be >= 1, got {k}")
        self.k = int(k)
        self.name = f"ndcg@{self.k}"

    def __call__(
        self, method_scores: FloatVector, ground_truth: FloatVector
    ) -> float:
        return ndcg_at_k(method_scores, ground_truth, self.k)
