"""Evaluation framework: splits, ground truth, metrics, tuning, experiments.

The package mirrors the paper's Section 4 methodology:

* :func:`split_by_ratio` — current/future partition by *test ratio* with
  STI ground truth (§4.1, Table 2).
* :func:`spearman_rho`, :func:`ndcg_at_k` — the two effectiveness
  metrics (§4.1).
* :mod:`repro.eval.grids` — the exact parameter grids of Tables 3 and 4.
* :func:`tune_method` — per-setting grid search (§4.3).
* :func:`compare_over_ratios`, :func:`compare_over_k` — the Figure 3/4/5
  experiment drivers.
"""

from repro.eval.grids import (
    COMPETITOR_GRIDS,
    att_only_grid,
    attrank_grid,
    citerank_grid,
    ecm_grid,
    futurerank_grid,
    grid_for,
    grid_size,
    no_att_grid,
    ram_grid,
    wsdm_grid,
)
from repro.eval.experiment import (
    COMPARISON_METHODS,
    ComparisonCell,
    ComparisonSeries,
    compare_over_k,
    compare_over_ratios,
    methods_available,
    run_comparison_at_ratio,
)
from repro.eval.metrics import (
    NDCG,
    Metric,
    SpearmanRho,
    dcg_at_k,
    ndcg_at_k,
    spearman_rho,
)
from repro.eval.metrics_extra import (
    AveragePrecisionAtK,
    KendallTau,
    OverlapAtK,
    average_precision_at_k,
    kendall_tau,
    overlap_at_k,
)
from repro.eval.significance import (
    BootstrapResult,
    PairedResult,
    bootstrap_metric,
    paired_bootstrap_test,
)
from repro.eval.split import DEFAULT_TEST_RATIOS, TemporalSplit, split_by_ratio
from repro.eval.tuning import (
    SettingScore,
    TuningResult,
    evaluate_setting,
    tune_method,
    tune_methods,
)

__all__ = [
    "COMPETITOR_GRIDS",
    "att_only_grid",
    "attrank_grid",
    "citerank_grid",
    "ecm_grid",
    "futurerank_grid",
    "grid_for",
    "grid_size",
    "no_att_grid",
    "ram_grid",
    "wsdm_grid",
    "COMPARISON_METHODS",
    "ComparisonCell",
    "ComparisonSeries",
    "compare_over_k",
    "compare_over_ratios",
    "methods_available",
    "run_comparison_at_ratio",
    "NDCG",
    "Metric",
    "SpearmanRho",
    "dcg_at_k",
    "ndcg_at_k",
    "spearman_rho",
    "AveragePrecisionAtK",
    "KendallTau",
    "OverlapAtK",
    "average_precision_at_k",
    "kendall_tau",
    "overlap_at_k",
    "BootstrapResult",
    "PairedResult",
    "bootstrap_metric",
    "paired_bootstrap_test",
    "DEFAULT_TEST_RATIOS",
    "TemporalSplit",
    "split_by_ratio",
    "SettingScore",
    "TuningResult",
    "evaluate_setting",
    "tune_method",
    "tune_methods",
]
