"""End-to-end experiment orchestration for the paper's figures.

A *comparison* reproduces one panel of Figures 3-5: on a given dataset,
for each test ratio (or each nDCG cut-off k), tune every method on its
paper grid and record the best value achieved.  The result objects carry
everything the benchmark harness needs to print the paper-style series.

The ablations are handled exactly as in the paper: NO-ATT is the
``beta = 0`` slice of AttRank's grid, ATT-ONLY the ``beta = 1`` slice,
and the full AttRank grid covers everything in between.

The drivers here run serially; the ``repro.parallel`` engine exposes
:meth:`~repro.parallel.ExperimentEngine.compare_over_ratios` and
:meth:`~repro.parallel.ExperimentEngine.compare_over_k` equivalents
that fan the grid points over worker processes and return bit-identical
series (``repro compare --jobs N`` on the command line).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.errors import EvaluationError
from repro.eval.grids import (
    att_only_grid,
    attrank_grid,
    citerank_grid,
    ecm_grid,
    futurerank_grid,
    no_att_grid,
    ram_grid,
    wsdm_grid,
)
from repro.eval.metrics import NDCG, Metric, SpearmanRho
from repro.eval.split import DEFAULT_TEST_RATIOS, split_by_ratio
from repro.eval.tuning import TuningResult, tune_method
from repro.graph.citation_network import CitationNetwork

__all__ = [
    "COMPARISON_METHODS",
    "methods_available",
    "run_comparison_at_ratio",
    "ComparisonCell",
    "ComparisonSeries",
    "compare_over_ratios",
    "compare_over_k",
]

#: The method lineup of Figures 3-5, in the paper's legend order.
COMPARISON_METHODS: tuple[str, ...] = (
    "CR",
    "FR",
    "RAM",
    "ECM",
    "WSDM",
    "AR",
    "NO-ATT",
    "ATT-ONLY",
)


def _grid_for_lineup(method: str):
    """Grid factory for a lineup label, including the ablation slices."""
    factories = {
        "CR": citerank_grid,
        "FR": futurerank_grid,
        "RAM": ram_grid,
        "ECM": ecm_grid,
        "WSDM": wsdm_grid,
        "AR": attrank_grid,
        "NO-ATT": no_att_grid,
        "ATT-ONLY": att_only_grid,
    }
    try:
        return factories[method]()
    except KeyError:
        raise EvaluationError(
            f"method {method!r} is not part of the comparison lineup"
        ) from None


def methods_available(network: CitationNetwork) -> tuple[str, ...]:
    """The lineup restricted to what the network's metadata supports.

    WSDM needs venues (the paper runs it only on PMC and DBLP); the
    tuned FutureRank grid always includes beta > 0 settings and so needs
    authors.
    """
    methods = []
    for name in COMPARISON_METHODS:
        if name == "WSDM" and not (network.has_authors and network.has_venues):
            continue
        if name == "FR" and not network.has_authors:
            continue
        methods.append(name)
    return tuple(methods)


@dataclass(frozen=True)
class ComparisonCell:
    """One tuned method at one x-axis position of a comparison figure."""

    method: str
    x: float
    result: TuningResult

    @property
    def score(self) -> float:
        return self.result.best_score


@dataclass(frozen=True)
class ComparisonSeries:
    """One reproduced figure panel: method -> series over the x-axis.

    Attributes
    ----------
    dataset:
        Dataset label (for reports).
    metric:
        Metric name (``"spearman"`` or ``"ndcg@k"``).
    x_label:
        Meaning of the x values (``"test_ratio"`` or ``"k"``).
    x_values:
        The x-axis positions.
    cells:
        ``cells[method]`` is the list of :class:`ComparisonCell`, aligned
        with ``x_values``.
    """

    dataset: str
    metric: str
    x_label: str
    x_values: tuple[float, ...]
    cells: Mapping[str, tuple[ComparisonCell, ...]]

    def series(self, method: str) -> tuple[float, ...]:
        """The metric values of one method across the x-axis."""
        return tuple(cell.score for cell in self.cells[method])

    def winner_at(self, x: float) -> str:
        """The best method at x-position ``x`` (ties to lineup order)."""
        position = self.x_values.index(x)
        best_method, best_score = "", float("-inf")
        for method, cells in self.cells.items():
            if cells[position].score > best_score:
                best_method, best_score = method, cells[position].score
        return best_method


def run_comparison_at_ratio(
    network: CitationNetwork,
    test_ratio: float,
    metric: Metric,
    *,
    methods: Sequence[str] | None = None,
) -> dict[str, TuningResult]:
    """Tune every lineup method on one split; label -> tuning result."""
    split = split_by_ratio(network, test_ratio)
    lineup = methods if methods is not None else methods_available(network)
    return {
        name: tune_method(name, _grid_for_lineup(name), split, metric)
        for name in lineup
    }


def compare_over_ratios(
    network: CitationNetwork,
    *,
    dataset: str = "dataset",
    metric: Metric | None = None,
    test_ratios: Sequence[float] = DEFAULT_TEST_RATIOS,
    methods: Sequence[str] | None = None,
) -> ComparisonSeries:
    """Reproduce one panel of Figure 3 (Spearman) or Figure 4 (nDCG@50).

    For each test ratio, every method is re-tuned (the paper's protocol)
    and its best metric value recorded.
    """
    chosen_metric = metric if metric is not None else SpearmanRho()
    lineup = tuple(
        methods if methods is not None else methods_available(network)
    )
    columns: dict[str, list[ComparisonCell]] = {name: [] for name in lineup}
    for ratio in test_ratios:
        tuned = run_comparison_at_ratio(
            network, ratio, chosen_metric, methods=lineup
        )
        for name in lineup:
            columns[name].append(
                ComparisonCell(method=name, x=float(ratio), result=tuned[name])
            )
    return ComparisonSeries(
        dataset=dataset,
        metric=chosen_metric.name,
        x_label="test_ratio",
        x_values=tuple(float(r) for r in test_ratios),
        cells={name: tuple(cells) for name, cells in columns.items()},
    )


def compare_over_k(
    network: CitationNetwork,
    *,
    dataset: str = "dataset",
    test_ratio: float = 1.6,
    k_values: Sequence[int] = (5, 10, 50, 100, 500),
    methods: Sequence[str] | None = None,
) -> ComparisonSeries:
    """Reproduce one panel of Figure 5: nDCG@k over k at a fixed ratio.

    The split is computed once; each method is tuned separately per k
    (the paper selects "the parameterization ... that gives the best
    nDCG@k value" for every k).
    """
    split = split_by_ratio(network, test_ratio)
    lineup = tuple(
        methods if methods is not None else methods_available(network)
    )
    columns: dict[str, list[ComparisonCell]] = {name: [] for name in lineup}
    for k in k_values:
        metric = NDCG(k)
        for name in lineup:
            result = tune_method(name, _grid_for_lineup(name), split, metric)
            columns[name].append(
                ComparisonCell(method=name, x=float(k), result=result)
            )
    return ComparisonSeries(
        dataset=dataset,
        metric="ndcg",
        x_label="k",
        x_values=tuple(float(k) for k in k_values),
        cells={name: tuple(cells) for name, cells in columns.items()},
    )
