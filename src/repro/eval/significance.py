"""Statistical significance of method comparisons.

The paper reports point estimates; when corpora are synthetic (or when
comparing close methods on real data) it is useful to quantify the
uncertainty.  Two standard tools are provided:

* :func:`bootstrap_metric` — percentile bootstrap confidence interval of
  a metric by resampling papers;
* :func:`paired_bootstrap_test` — paired bootstrap comparison of two
  methods on the same split: resample papers, recompute the metric for
  both methods, and report how often method A beats method B (a
  one-sided superiority probability).

Both operate on *score vectors*, so any method and metric combination
can be analysed without re-running the methods.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._typing import FloatVector
from repro.errors import EvaluationError
from repro.eval.metrics import Metric

__all__ = ["BootstrapResult", "bootstrap_metric", "PairedResult",
           "paired_bootstrap_test"]


@dataclass(frozen=True)
class BootstrapResult:
    """A bootstrap estimate of one metric.

    Attributes
    ----------
    point:
        The metric on the full (unresampled) data.
    low, high:
        Percentile confidence bounds.
    samples:
        Number of bootstrap resamples used.
    confidence:
        The nominal coverage (e.g. 0.95).
    """

    point: float
    low: float
    high: float
    samples: int
    confidence: float


def _resample_indices(
    n: int, samples: int, rng: np.random.Generator
) -> np.ndarray:
    return rng.integers(0, n, size=(samples, n))


def bootstrap_metric(
    method_scores: FloatVector,
    ground_truth: FloatVector,
    metric: Metric,
    *,
    samples: int = 500,
    confidence: float = 0.95,
    seed: int | None = 0,
) -> BootstrapResult:
    """Percentile-bootstrap confidence interval for ``metric``.

    Papers are resampled with replacement; metric evaluations that are
    undefined on a resample (e.g. a constant score vector for Spearman)
    are skipped.

    Raises
    ------
    EvaluationError
        If fewer than half the resamples produce a defined metric.
    """
    if not 0 < confidence < 1:
        raise EvaluationError(
            f"confidence must be in (0, 1), got {confidence}"
        )
    if samples < 10:
        raise EvaluationError(f"samples must be >= 10, got {samples}")
    scores = np.asarray(method_scores, dtype=np.float64)
    truth = np.asarray(ground_truth, dtype=np.float64)
    if scores.shape != truth.shape:
        raise EvaluationError("score and truth vectors must align")
    rng = np.random.default_rng(seed)
    point = float(metric(scores, truth))
    values = []
    for indices in _resample_indices(scores.size, samples, rng):
        try:
            values.append(float(metric(scores[indices], truth[indices])))
        except EvaluationError:
            continue
    if len(values) < samples / 2:
        raise EvaluationError(
            "metric undefined on most bootstrap resamples; the data is "
            "too degenerate for a bootstrap interval"
        )
    tail = (1.0 - confidence) / 2.0
    low, high = np.quantile(values, [tail, 1.0 - tail])
    return BootstrapResult(
        point=point,
        low=float(low),
        high=float(high),
        samples=len(values),
        confidence=confidence,
    )


@dataclass(frozen=True)
class PairedResult:
    """A paired bootstrap comparison of two methods.

    Attributes
    ----------
    point_a, point_b:
        The metric of each method on the full data.
    mean_difference:
        Mean of (A - B) across resamples.
    p_superior:
        Fraction of resamples where A strictly beats B — close to 1
        means A is reliably better, close to 0 reliably worse.
    samples:
        Number of (defined) resamples.
    """

    point_a: float
    point_b: float
    mean_difference: float
    p_superior: float
    samples: int


def paired_bootstrap_test(
    scores_a: FloatVector,
    scores_b: FloatVector,
    ground_truth: FloatVector,
    metric: Metric,
    *,
    samples: int = 500,
    seed: int | None = 0,
) -> PairedResult:
    """Paired bootstrap: does method A beat method B on this split?

    Both methods are evaluated on the *same* resampled paper sets, so
    the comparison controls for sample composition.
    """
    if samples < 10:
        raise EvaluationError(f"samples must be >= 10, got {samples}")
    a = np.asarray(scores_a, dtype=np.float64)
    b = np.asarray(scores_b, dtype=np.float64)
    truth = np.asarray(ground_truth, dtype=np.float64)
    if a.shape != truth.shape or b.shape != truth.shape:
        raise EvaluationError("score and truth vectors must align")
    rng = np.random.default_rng(seed)
    differences = []
    wins = 0
    for indices in _resample_indices(truth.size, samples, rng):
        try:
            value_a = float(metric(a[indices], truth[indices]))
            value_b = float(metric(b[indices], truth[indices]))
        except EvaluationError:
            continue
        differences.append(value_a - value_b)
        if value_a > value_b:
            wins += 1
    if len(differences) < samples / 2:
        raise EvaluationError(
            "metric undefined on most bootstrap resamples"
        )
    return PairedResult(
        point_a=float(metric(a, truth)),
        point_b=float(metric(b, truth)),
        mean_difference=float(np.mean(differences)),
        p_superior=wins / len(differences),
        samples=len(differences),
    )
