"""Temporal train/test splitting by *test ratio* (paper Section 4.1).

The methodology: sort papers by publication time; the older half forms
the **current state** ``C(tN)`` that every ranking method sees.  The
**future state** ``C(tN + tau)`` consists of the oldest ``ratio x |current|``
papers, so a test ratio of 1.6 means the future network contains 60 %
more papers than the current one (2.0 = the whole dataset).  The ground
truth is each current paper's **short-term impact**: the number of
citations it receives from the future papers that are not in the current
state.  The implied time horizon ``tau`` in years (the paper's Table 2)
falls out of the publication times of the added papers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._typing import FloatVector, IntVector
from repro.errors import EvaluationError
from repro.graph.citation_network import CitationNetwork
from repro.graph.temporal import chronological_order

__all__ = ["TemporalSplit", "split_by_ratio", "DEFAULT_TEST_RATIOS"]

#: The test ratios of the paper's evaluation (1.6 is the default setting).
DEFAULT_TEST_RATIOS: tuple[float, ...] = (1.2, 1.4, 1.6, 1.8, 2.0)


@dataclass(frozen=True)
class TemporalSplit:
    """A current/future partition of a citation network.

    Attributes
    ----------
    current:
        The current state ``C(tN)`` as a re-indexed network — what every
        ranking method is allowed to see.
    current_indices:
        For each paper of :attr:`current`, its index in the full network.
    sti:
        Ground-truth short-term impact of each current paper: citations
        received from future papers outside the current state.
    test_ratio:
        The requested ratio ``|future| / |current|``.
    t_current:
        ``tN`` — publication time of the newest current paper.
    t_future:
        ``tN + tau`` — publication time of the newest future paper.
    n_future_papers:
        Number of papers in the future state (current papers included).
    """

    current: CitationNetwork
    current_indices: IntVector
    sti: FloatVector
    test_ratio: float
    t_current: float
    t_future: float
    n_future_papers: int

    #: Cache of derived arrays (not part of equality/repr).
    _cache: dict = field(default_factory=dict, repr=False, compare=False)

    @property
    def horizon_years(self) -> float:
        """The implied time horizon ``tau`` in years (paper Table 2)."""
        return self.t_future - self.t_current

    @property
    def ground_truth_ranking(self) -> IntVector:
        """Current-paper indices ranked by decreasing STI (ties by index)."""
        if "ranking" not in self._cache:
            from repro.ranking import ranking_from_scores

            self._cache["ranking"] = ranking_from_scores(self.sti)
        return self._cache["ranking"]

    def top_by_sti(self, k: int) -> IntVector:
        """The ``k`` current papers with the highest short-term impact."""
        return self.ground_truth_ranking[:k]


def split_by_ratio(
    network: CitationNetwork,
    test_ratio: float,
    *,
    current_fraction: float = 0.5,
) -> TemporalSplit:
    """Split ``network`` according to the paper's test-ratio methodology.

    Parameters
    ----------
    network:
        The full dataset (its final state plays the role of the
        retrospectively observed future).
    test_ratio:
        ``|future| / |current|`` in papers; must lie in
        ``(1, 1/current_fraction]`` — 2.0 uses the entire dataset when
        ``current_fraction`` is 0.5.
    current_fraction:
        Fraction of papers (oldest first) forming the current state; the
        paper always uses one half.

    Raises
    ------
    EvaluationError
        If the ratio or fraction is out of range for this network.
    """
    if not 0 < current_fraction < 1:
        raise EvaluationError(
            f"current_fraction must be in (0, 1), got {current_fraction}"
        )
    max_ratio = 1.0 / current_fraction
    if not 1.0 < test_ratio <= max_ratio + 1e-9:
        raise EvaluationError(
            f"test_ratio must be in (1, {max_ratio:.2f}], got {test_ratio}"
        )
    n = network.n_papers
    n_current = int(np.floor(n * current_fraction))
    if n_current < 2:
        raise EvaluationError(
            f"current state would have only {n_current} papers"
        )
    order = chronological_order(network)
    n_future = min(int(round(test_ratio * n_current)), n)

    current_global = np.sort(order[:n_current])
    future_extra = order[n_current:n_future]

    current = network.subnetwork(current_global)

    # Ground truth: citations from future-only papers to current papers.
    in_current = np.zeros(n, dtype=bool)
    in_current[current_global] = True
    is_future_extra = np.zeros(n, dtype=bool)
    is_future_extra[future_extra] = True

    edge_mask = is_future_extra[network.citing] & in_current[network.cited]
    sti_full = np.zeros(n, dtype=np.float64)
    np.add.at(sti_full, network.cited[edge_mask], 1.0)

    # Map to current-local indexing (subnetwork preserves sorted order).
    sti = sti_full[current_global]

    times = network.publication_times
    t_current = float(times[current_global].max())
    t_future = (
        float(times[order[:n_future]].max()) if n_future else t_current
    )
    return TemporalSplit(
        current=current,
        current_indices=current_global.astype(np.int64),
        sti=sti,
        test_ratio=float(test_ratio),
        t_current=t_current,
        t_future=t_future,
        n_future_papers=int(n_future),
    )
