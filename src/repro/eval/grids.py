"""The parameter grids of the paper's evaluation (Tables 3 and 4).

Each function yields keyword-argument dictionaries ready for
:func:`repro.baselines.make_method`.  The enumeration sizes match the
paper exactly: 20 settings for CiteRank, 120 for FutureRank, 9 for RAM,
25 for ECM, 50 for WSDM, and 250 for AttRank (50 alpha-beta points x
5 attention windows).
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Mapping

from repro.errors import ConfigurationError

__all__ = [
    "attrank_grid",
    "citerank_grid",
    "futurerank_grid",
    "ram_grid",
    "ecm_grid",
    "wsdm_grid",
    "grid_for",
    "grid_size",
    "COMPETITOR_GRIDS",
]


def _steps(start: float, stop: float, step: float) -> list[float]:
    """Inclusive float range with exact 1-decimal rounding."""
    count = int(round((stop - start) / step)) + 1
    return [round(start + i * step, 10) for i in range(count)]


def attrank_grid(
    *,
    windows: tuple[int, ...] = (1, 2, 3, 4, 5),
) -> Iterator[dict[str, Any]]:
    """Table 3: alpha in [0, 0.5], beta in [0, 1], gamma = 1-alpha-beta
    constrained to [0, 0.9], y in {1..5}.

    Yields 50 coefficient combinations per window (250 settings total
    with the default windows).
    """
    for y in windows:
        for alpha in _steps(0.0, 0.5, 0.1):
            for beta in _steps(0.0, 1.0, 0.1):
                gamma = round(1.0 - alpha - beta, 10)
                if not 0.0 <= gamma <= 0.9:
                    continue
                yield {
                    "alpha": alpha,
                    "beta": beta,
                    "gamma": gamma,
                    "attention_window": float(y),
                }


def citerank_grid() -> Iterator[dict[str, Any]]:
    """Table 4, CR: alpha in {0.1, 0.3, 0.5, 0.7}, tau_dir in {2..10 step 2}
    (20 settings)."""
    for alpha in _steps(0.1, 0.7, 0.2):
        for tau_dir in (2.0, 4.0, 6.0, 8.0, 10.0):
            yield {"alpha": alpha, "tau_dir": tau_dir}


def futurerank_grid() -> Iterator[dict[str, Any]]:
    """Table 4, FR: alpha in {0.1..0.5}, beta/gamma on a 0.1 grid with
    alpha + beta + gamma = 1, rho in {-0.82, -0.62, -0.42} (120 settings)."""
    for rho in (-0.82, -0.62, -0.42):
        for alpha in _steps(0.1, 0.5, 0.1):
            for beta in _steps(0.0, 0.9, 0.1):
                gamma = round(1.0 - alpha - beta, 10)
                if not 0.0 <= gamma <= 0.9:
                    continue
                yield {
                    "alpha": alpha,
                    "beta": beta,
                    "gamma": gamma,
                    "rho": rho,
                }


def ram_grid() -> Iterator[dict[str, Any]]:
    """Table 4, RAM: gamma in {0.1 .. 0.9} (9 settings)."""
    for gamma in _steps(0.1, 0.9, 0.1):
        yield {"gamma": gamma}


def ecm_grid() -> Iterator[dict[str, Any]]:
    """Table 4, ECM: alpha, gamma in {0.1 .. 0.5} (25 settings)."""
    for alpha in _steps(0.1, 0.5, 0.1):
        for gamma in _steps(0.1, 0.5, 0.1):
            yield {"alpha": alpha, "gamma": gamma}


def wsdm_grid() -> Iterator[dict[str, Any]]:
    """Table 4, WSDM: alpha in {1.1..2.3 step 0.3}, beta in {1..5},
    i in {4, 5} (50 settings)."""
    for alpha in _steps(1.1, 2.3, 0.3):
        for beta in (1.0, 2.0, 3.0, 4.0, 5.0):
            for iterations in (4, 5):
                yield {"alpha": alpha, "beta": beta, "iterations": iterations}


#: Method label -> grid factory, matching the paper's Table 4 (+ AttRank).
COMPETITOR_GRIDS: Mapping[str, Callable[[], Iterator[dict[str, Any]]]] = {
    "CR": citerank_grid,
    "FR": futurerank_grid,
    "RAM": ram_grid,
    "ECM": ecm_grid,
    "WSDM": wsdm_grid,
    "AR": attrank_grid,
}


def grid_for(method: str) -> Iterator[dict[str, Any]]:
    """The paper's parameter grid for a method label.

    Methods without tunable grids (CC, PR and the AttRank ablations,
    which inherit AttRank's grid restricted elsewhere) are not listed;
    requesting them raises.
    """
    key = method.upper()
    try:
        factory = COMPETITOR_GRIDS[key]
    except KeyError:
        known = ", ".join(sorted(COMPETITOR_GRIDS))
        raise ConfigurationError(
            f"no parameter grid for method {method!r}; grids exist for: "
            f"{known}"
        ) from None
    return factory()


def grid_size(method: str) -> int:
    """Number of settings in a method's grid (sanity-checked in tests)."""
    return sum(1 for _ in grid_for(method))


def no_att_grid(
    *, windows: tuple[int, ...] = (1, 2, 3, 4, 5)
) -> Iterator[dict[str, Any]]:
    """The beta = 0 slice of the AttRank grid (the NO-ATT ablation)."""
    for params in attrank_grid(windows=windows):
        if params["beta"] == 0.0:
            yield params


def att_only_grid(
    *, windows: tuple[int, ...] = (1, 2, 3, 4, 5)
) -> Iterator[dict[str, Any]]:
    """The beta = 1 slice of the AttRank grid (the ATT-ONLY ablation)."""
    for y in windows:
        yield {
            "alpha": 0.0,
            "beta": 1.0,
            "gamma": 0.0,
            "attention_window": float(y),
        }


__all__ += ["no_att_grid", "att_only_grid"]
