"""Grid-search tuning of ranking methods (paper Section 4.3).

The paper's comparative evaluation tunes every competitor per dataset
and per test ratio, reporting the best setting found ("for each dataset
and test ratio, we choose the parameterization with the best
correlation").  :func:`tune_method` reproduces that protocol: evaluate a
method over a parameter grid on one temporal split and return the
best-scoring setting along with the full sweep (the sweep is what the
heatmap figures visualise).

Grid points share their expensive structure: the stochastic operator,
attention/recency vectors and retained-weight matrices are memoised per
network (:mod:`repro.graph.cache`), so a serial sweep builds each once.
For multi-core machines, :class:`repro.parallel.ExperimentEngine` fans
the same grid points over worker processes with results bit-identical
to this module's serial loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping

from repro._typing import FloatVector
from repro.baselines import make_method
from repro.errors import EvaluationError
from repro.eval.metrics import Metric
from repro.eval.split import TemporalSplit

__all__ = ["SettingScore", "TuningResult", "evaluate_setting", "tune_method"]


@dataclass(frozen=True)
class SettingScore:
    """One grid point: the parameters and the metric value they achieve."""

    params: Mapping[str, Any]
    score: float


@dataclass(frozen=True)
class TuningResult:
    """Outcome of a grid search for one (method, split, metric) triple.

    Attributes
    ----------
    method:
        The method label tuned.
    metric:
        The metric name optimised.
    best:
        The best-scoring grid point.
    sweep:
        All evaluated grid points, in grid order.
    """

    method: str
    metric: str
    best: SettingScore
    sweep: tuple[SettingScore, ...]

    @property
    def best_params(self) -> Mapping[str, Any]:
        return self.best.params

    @property
    def best_score(self) -> float:
        return self.best.score


def evaluate_setting(
    method_name: str,
    params: Mapping[str, Any],
    split: TemporalSplit,
    metric: Metric,
) -> float:
    """Score one parameterisation of a method on one split."""
    method = make_method(method_name, **params)
    scores: FloatVector = method.scores(split.current)
    return float(metric(scores, split.sti))


def tune_method(
    method_name: str,
    grid: Iterable[Mapping[str, Any]],
    split: TemporalSplit,
    metric: Metric,
) -> TuningResult:
    """Grid-search ``method_name`` over ``grid`` on ``split``.

    Ties on the metric keep the earlier grid point, making the selection
    deterministic.

    Raises
    ------
    EvaluationError
        If the grid is empty.
    """
    sweep: list[SettingScore] = []
    best: SettingScore | None = None
    for params in grid:
        frozen = dict(params)
        score = evaluate_setting(method_name, frozen, split, metric)
        entry = SettingScore(params=frozen, score=score)
        sweep.append(entry)
        if best is None or entry.score > best.score:
            best = entry
    if best is None:
        raise EvaluationError(
            f"empty parameter grid for method {method_name!r}"
        )
    return TuningResult(
        method=method_name,
        metric=metric.name,
        best=best,
        sweep=tuple(sweep),
    )


def tune_methods(
    method_grids: Mapping[str, Iterable[Mapping[str, Any]]],
    split: TemporalSplit,
    metric: Metric,
) -> dict[str, TuningResult]:
    """Tune several methods on the same split; returns label -> result."""
    return {
        name: tune_method(name, grid, split, metric)
        for name, grid in method_grids.items()
    }


__all__ += ["tune_methods"]
