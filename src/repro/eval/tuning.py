"""Grid-search tuning of ranking methods (paper Section 4.3).

The paper's comparative evaluation tunes every competitor per dataset
and per test ratio, reporting the best setting found ("for each dataset
and test ratio, we choose the parameterization with the best
correlation").  :func:`tune_method` reproduces that protocol: evaluate a
method over a parameter grid on one temporal split and return the
best-scoring setting along with the full sweep (the sweep is what the
heatmap figures visualise).

Grid points share their expensive structure twice over: the stochastic
operator, attention/recency vectors and retained-weight matrices are
memoised per network (:mod:`repro.graph.cache`), and the grid's solves
are stacked into one fused pass (:func:`repro.core.fused.solve_methods`)
— every iteration advances all still-unconverged grid points with a
single SpMV per distinct operator.  For multi-core machines,
:class:`repro.parallel.ExperimentEngine` fans the same grid points over
worker processes with results bit-identical to this module's serial
loop (the fused pass is itself bit-identical to point-by-point solves,
so both routes agree).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping

from repro._typing import FloatVector
from repro.baselines import make_method
from repro.core.fused import solve_methods
from repro.errors import EvaluationError
from repro.eval.metrics import Metric
from repro.eval.split import TemporalSplit

__all__ = ["SettingScore", "TuningResult", "evaluate_setting", "tune_method"]


@dataclass(frozen=True)
class SettingScore:
    """One grid point: the parameters and the metric value they achieve."""

    params: Mapping[str, Any]
    score: float


@dataclass(frozen=True)
class TuningResult:
    """Outcome of a grid search for one (method, split, metric) triple.

    Attributes
    ----------
    method:
        The method label tuned.
    metric:
        The metric name optimised.
    best:
        The best-scoring grid point.
    sweep:
        All evaluated grid points, in grid order.
    """

    method: str
    metric: str
    best: SettingScore
    sweep: tuple[SettingScore, ...]

    @property
    def best_params(self) -> Mapping[str, Any]:
        return self.best.params

    @property
    def best_score(self) -> float:
        return self.best.score


def evaluate_setting(
    method_name: str,
    params: Mapping[str, Any],
    split: TemporalSplit,
    metric: Metric,
) -> float:
    """Score one parameterisation of a method on one split."""
    method = make_method(method_name, **params)
    scores: FloatVector = method.scores(split.current)
    return float(metric(scores, split.sti))


def tune_method(
    method_name: str,
    grid: Iterable[Mapping[str, Any]],
    split: TemporalSplit,
    metric: Metric,
) -> TuningResult:
    """Grid-search ``method_name`` over ``grid`` on ``split``.

    Ties on the metric keep the earlier grid point, making the selection
    deterministic.

    All grid points are solved in one fused pass — one column per
    point — which amortises the sparse multiplies the sweep would
    otherwise repeat per point.  Scores, metric values and the selected
    setting are bit-identical to a point-by-point loop.

    Raises
    ------
    EvaluationError
        If the grid is empty.
    """
    points = [dict(params) for params in grid]
    if not points:
        raise EvaluationError(
            f"empty parameter grid for method {method_name!r}"
        )
    methods = [make_method(method_name, **params) for params in points]
    solved = solve_methods(split.current, methods)
    sweep: list[SettingScore] = []
    best: SettingScore | None = None
    for frozen, (scores, _info) in zip(points, solved):
        entry = SettingScore(
            params=frozen, score=float(metric(scores, split.sti))
        )
        sweep.append(entry)
        if best is None or entry.score > best.score:
            best = entry
    return TuningResult(
        method=method_name,
        metric=metric.name,
        best=best,
        sweep=tuple(sweep),
    )


def tune_methods(
    method_grids: Mapping[str, Iterable[Mapping[str, Any]]],
    split: TemporalSplit,
    metric: Metric,
) -> dict[str, TuningResult]:
    """Tune several methods on the same split; returns label -> result."""
    return {
        name: tune_method(name, grid, split, metric)
        for name, grid in method_grids.items()
    }


__all__ += ["tune_methods"]
