"""Effective Contagion Matrix (Ghosh et al., 2011) — competitor "ECM".

ECM generalises RAM from single citations to *citation chains*: a chain
of ``k`` citations contributes the product of its per-edge retained
weights, further discounted by ``alpha^(k-1)``.  This is Katz centrality
over the retained adjacency matrix ``R`` (the same age-weighted matrix
RAM uses):

    ECM scores  s = sum_{k>=1} alpha^(k-1) * R^k @ 1
                  = R @ (1 + alpha * s)

Citation networks that respect time order are acyclic, so ``R`` is
nilpotent and the series terminates exactly after the longest citation
chain; the fixed-point iteration therefore converges in finitely many
steps regardless of ``alpha``.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np
import scipy.sparse as sp

from repro._typing import FloatVector
from repro.baselines.ram import retained_edge_weights
from repro.core.power_iteration import power_iterate
from repro.errors import ConfigurationError
from repro.graph.cache import memoize_on
from repro.graph.citation_network import CitationNetwork
from repro.ranking import RankingMethod

__all__ = ["EffectiveContagion"]


class EffectiveContagion(RankingMethod):
    """ECM: age-weighted Katz centrality over citation chains.

    Parameters
    ----------
    alpha:
        Chain-length discount in (0, 1); the original work finds small
        values (0.007-0.1) optimal.
    gamma:
        Retention base of the underlying matrix, as in RAM.
    tol, max_iterations:
        Fixed-point controls (exact termination on DAGs).
    now:
        Current time ``tN`` (default: latest publication time).
    """

    name = "ECM"

    def __init__(
        self,
        *,
        alpha: float = 0.1,
        gamma: float = 0.3,
        tol: float = 1e-12,
        max_iterations: int = 1000,
        now: float | None = None,
    ) -> None:
        if not 0 < alpha < 1:
            raise ConfigurationError(f"alpha must be in (0, 1), got {alpha}")
        if not 0 < gamma <= 1:
            raise ConfigurationError(f"gamma must be in (0, 1], got {gamma}")
        self.alpha = float(alpha)
        self.gamma = float(gamma)
        self.tol = tol
        self.max_iterations = max_iterations
        self.now = now

    def params(self) -> Mapping[str, Any]:
        return {"alpha": self.alpha, "gamma": self.gamma}

    def retained_matrix(self, network: CitationNetwork) -> sp.csr_matrix:
        """The retained adjacency matrix ``R[i, j] = gamma^age * C[i, j]``.

        Memoised per ``(network, gamma, now)`` — ECM's grid sweeps five
        ``alpha`` values against each ``gamma``, and the CSR assembly is
        the expensive part of a score evaluation.
        """
        reference = (
            network.latest_time if self.now is None else float(self.now)
        )

        def build() -> sp.csr_matrix:
            weights = retained_edge_weights(
                network, self.gamma, now=reference
            )
            n = network.n_papers
            matrix = sp.csr_matrix(
                (weights, (network.cited, network.citing)), shape=(n, n)
            )
            matrix.sum_duplicates()
            return matrix

        return memoize_on(
            network, ("retained_matrix", self.gamma, reference), build
        )

    def scores(self, network: CitationNetwork) -> FloatVector:
        if network.n_papers == 0:
            raise ConfigurationError("cannot rank an empty network")
        retained = self.retained_matrix(network)
        ones = np.ones(network.n_papers, dtype=np.float64)
        base = retained @ ones  # RAM scores = chains of length 1

        def step(vector: np.ndarray) -> np.ndarray:
            return base + self.alpha * (retained @ vector)

        result, info = power_iterate(
            step,
            network.n_papers,
            tol=self.tol,
            max_iterations=self.max_iterations,
            start=base,
            normalize=False,
            raise_on_failure=False,
        )
        self.last_convergence = info
        return result

    def fused_column(self, network: CitationNetwork):
        """ECM as one column of a fused solve.

        Uses its own retained matrix rather than the shared stochastic
        operator; the fused solver groups columns by matrix, so ECM costs
        one extra SpMV per iteration but still shares the convergence
        loop.  ``scores`` always starts from ``base`` (warm starts are
        pointless for a finitely-terminating Katz series), so the column
        does too.
        """
        if network.n_papers == 0:
            return None
        from repro.core.fused import FusedColumn

        retained = self.retained_matrix(network)
        ones = np.ones(network.n_papers, dtype=np.float64)
        base = retained @ ones
        return FusedColumn(
            label=self.name,
            matrix=retained,
            alpha=self.alpha,
            jump=base,
            start=base,
            normalize=False,
            tol=self.tol,
            max_iterations=self.max_iterations,
            raise_on_failure=False,
        )
