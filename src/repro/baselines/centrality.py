"""Classic centrality variants (paper Section 5, "Basic Centrality
Variants").

The related-work section groups a family of non-time-aware centrality
methods that preceded the time-aware competitors.  Two canonical
representatives are provided for completeness — they demonstrate the age
bias that motivates the paper and serve as sanity baselines:

* **Katz centrality** on the citation matrix: every citation chain into
  a paper contributes, discounted by ``alpha`` per hop (ECM without the
  time weights);
* **HITS authority** (Kleinberg 1999): papers heavily cited by papers
  with many references (hubs, e.g. surveys) score high.  HITS is also
  the mechanism FutureRank borrows for its author reinforcement.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np
import scipy.sparse as sp

from repro._typing import FloatVector
from repro.core.power_iteration import power_iterate
from repro.errors import ConfigurationError
from repro.graph.citation_network import CitationNetwork
from repro.ranking import RankingMethod

__all__ = ["KatzCentrality", "HITSAuthority"]


class KatzCentrality(RankingMethod):
    """Katz centrality over unweighted citation chains.

    ``s = C @ (1 + alpha * s)``: chains of length k contribute
    ``alpha^(k-1)``.  Citation networks that respect time order are
    acyclic, so the series always terminates (cf. ECM, which adds
    citation-age weights on top of exactly this recursion).

    Parameters
    ----------
    alpha:
        Per-hop attenuation in (0, 1).
    """

    name = "KATZ"

    def __init__(
        self,
        *,
        alpha: float = 0.1,
        tol: float = 1e-12,
        max_iterations: int = 1000,
    ) -> None:
        if not 0 < alpha < 1:
            raise ConfigurationError(f"alpha must be in (0, 1), got {alpha}")
        self.alpha = float(alpha)
        self.tol = tol
        self.max_iterations = max_iterations

    def params(self) -> Mapping[str, Any]:
        return {"alpha": self.alpha}

    def scores(self, network: CitationNetwork) -> FloatVector:
        if network.n_papers == 0:
            raise ConfigurationError("cannot rank an empty network")
        matrix = network.citation_matrix
        base = np.asarray(matrix.sum(axis=1)).ravel()  # citation counts

        def step(vector: np.ndarray) -> np.ndarray:
            return base + self.alpha * (matrix @ vector)

        result, info = power_iterate(
            step,
            network.n_papers,
            tol=self.tol,
            max_iterations=self.max_iterations,
            start=base,
            normalize=False,
            raise_on_failure=False,
        )
        self.last_convergence = info
        return result


class HITSAuthority(RankingMethod):
    """HITS authority scores on the citation graph.

    Alternates hub scores (papers citing good authorities) and authority
    scores (papers cited by good hubs), each L1-normalised per round,
    until the authority vector stabilises.

    Parameters
    ----------
    tol, max_iterations:
        Convergence controls on the authority vector.
    """

    name = "HITS"

    def __init__(
        self, *, tol: float = 1e-12, max_iterations: int = 1000
    ) -> None:
        self.tol = tol
        self.max_iterations = max_iterations

    def params(self) -> Mapping[str, Any]:
        return {}

    def scores(self, network: CitationNetwork) -> FloatVector:
        if network.n_papers == 0:
            raise ConfigurationError("cannot rank an empty network")
        # C[i, j] = 1 iff j cites i: authorities = C @ hubs,
        # hubs = C.T @ authorities.
        matrix: sp.csr_matrix = network.citation_matrix
        transpose = sp.csr_matrix(matrix.T)

        def normalized(vector: np.ndarray) -> np.ndarray:
            total = vector.sum()
            if total <= 0:
                return np.full(vector.size, 1.0 / vector.size)
            return vector / total

        def step(authority: np.ndarray) -> np.ndarray:
            hubs = normalized(transpose @ authority)
            return normalized(matrix @ hubs)

        result, info = power_iterate(
            step,
            network.n_papers,
            tol=self.tol,
            max_iterations=self.max_iterations,
            raise_on_failure=False,
        )
        self.last_convergence = info
        return result
