"""Retained Adjacency Matrix (Ghosh et al., 2011) — competitor "RAM".

RAM discounts each citation by its age: a citation made ``a`` years ago
(measured at the *citing* paper's publication time) retains weight
``gamma^a`` with ``gamma`` in (0, 1).  The score of a paper is the row
sum of the retained matrix:

    RAM(p_i) = sum_j gamma^(tN - t_{p_j}) * C[i, j]

Non-iterative: a single weighted in-degree pass.  With ``gamma -> 1`` the
method degenerates to plain citation count, a relationship the tests
verify.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from repro._typing import FloatVector
from repro.errors import ConfigurationError
from repro.graph.cache import memoize_on
from repro.graph.citation_network import CitationNetwork
from repro.ranking import RankingMethod

__all__ = ["RetainedAdjacency", "retained_edge_weights"]


def retained_edge_weights(
    network: CitationNetwork,
    gamma: float,
    *,
    now: float | None = None,
) -> FloatVector:
    """Per-edge retention weights ``gamma^(tN - t_citing)``.

    Shared by RAM and ECM (which operate on the same retained matrix),
    and memoised per ``(network, gamma, now)``: ECM's 5x5 grid revisits
    each ``gamma`` five times, RAM's sweep once more.  Citation ages are
    clipped below at zero so an explicit early ``now`` never inflates
    weights above one.
    """
    if not 0 < gamma <= 1:
        raise ConfigurationError(f"gamma must be in (0, 1], got {gamma}")
    reference = network.latest_time if now is None else float(now)

    def build() -> FloatVector:
        citation_ages = np.maximum(reference - network.citation_times(), 0.0)
        return np.power(gamma, citation_ages)

    return memoize_on(
        network, ("retained_weights", float(gamma), reference), build
    )


class RetainedAdjacency(RankingMethod):
    """RAM: age-discounted citation count.

    Parameters
    ----------
    gamma:
        Retention base in (0, 1]; the original work finds optima around
        0.3-0.71 depending on the dataset.
    now:
        Current time ``tN`` (default: latest publication time).
    """

    name = "RAM"

    def __init__(self, *, gamma: float = 0.6, now: float | None = None) -> None:
        if not 0 < gamma <= 1:
            raise ConfigurationError(f"gamma must be in (0, 1], got {gamma}")
        self.gamma = float(gamma)
        self.now = now

    def params(self) -> Mapping[str, Any]:
        return {"gamma": self.gamma}

    def scores(self, network: CitationNetwork) -> FloatVector:
        if network.n_papers == 0:
            raise ConfigurationError("cannot rank an empty network")
        weights = retained_edge_weights(network, self.gamma, now=self.now)
        scores = np.zeros(network.n_papers, dtype=np.float64)
        np.add.at(scores, network.cited, weights)
        return scores
