"""CiteRank (Walker, Xie, Yan & Maslov, 2007) — competitor "CR".

CiteRank models the "traffic" to papers from researchers who *start*
reading at a recently published paper and then follow chains of
references.  The entry distribution decays exponentially with paper age,

    rho_i ∝ exp(-age_i / tau_dir),

and the traffic is the geometric sum over chain lengths

    T = rho + alpha*W @ rho + alpha^2 * W^2 @ rho + ...
      = (I - alpha*W)^(-1) @ rho,

with ``W`` the reference-normalised citation matrix.  Following the
original model, dangling-paper mass is *not* recycled (a researcher who
reaches a reference-free paper stops), so we iterate on the sparse part
of ``S`` only.  The fixed point is computed by iterating
``x <- rho + alpha * W @ x``, which converges at rate ``alpha``.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from repro._typing import FloatVector
from repro.core.power_iteration import DEFAULT_TOLERANCE, power_iterate
from repro.errors import ConfigurationError
from repro.graph.citation_network import CitationNetwork
from repro.graph.matrix import shared_operator
from repro.ranking import RankingMethod

__all__ = ["CiteRank"]


class CiteRank(RankingMethod):
    """CiteRank: traffic from age-biased entry points.

    Parameters
    ----------
    alpha:
        Probability of following a reference at each step (the original
        paper's optimum is around 0.5; must be < 1 for the geometric sum
        to converge).
    tau_dir:
        Characteristic *decay time* in years of the entry distribution —
        researchers start at papers roughly ``tau_dir`` years old or
        newer.
    tol, max_iterations:
        Fixed-point iteration controls.
    now:
        Current time ``tN`` (default: latest publication time).
    """

    name = "CR"
    supports_warm_start = True

    def __init__(
        self,
        *,
        alpha: float = 0.5,
        tau_dir: float = 2.0,
        tol: float = DEFAULT_TOLERANCE,
        max_iterations: int = 1000,
        now: float | None = None,
    ) -> None:
        if not 0 < alpha < 1:
            raise ConfigurationError(f"alpha must be in (0, 1), got {alpha}")
        if tau_dir <= 0:
            raise ConfigurationError(
                f"tau_dir must be positive, got {tau_dir}"
            )
        self.alpha = float(alpha)
        self.tau_dir = float(tau_dir)
        self.tol = tol
        self.max_iterations = max_iterations
        self.now = now

    def params(self) -> Mapping[str, Any]:
        return {"alpha": self.alpha, "tau_dir": self.tau_dir}

    def entry_distribution(self, network: CitationNetwork) -> FloatVector:
        """The normalised age-decayed entry vector ``rho``."""
        ages = network.ages(self.now)
        raw = np.exp(-(ages - ages.min()) / self.tau_dir)
        return raw / raw.sum()

    def scores(self, network: CitationNetwork) -> FloatVector:
        if network.n_papers == 0:
            raise ConfigurationError("cannot rank an empty network")
        rho = self.entry_distribution(network)
        transfer = shared_operator(network).sparse_part

        def step(vector: np.ndarray) -> np.ndarray:
            return rho + self.alpha * (transfer @ vector)

        # The iteration is a contraction at rate alpha, so any start
        # converges to the same traffic vector; a previous solution (set
        # by the incremental-update path) beats the default rho start.
        start = rho if self.start_vector is None else self.start_vector
        result, info = power_iterate(
            step,
            network.n_papers,
            tol=self.tol,
            max_iterations=self.max_iterations,
            start=start,
            normalize=False,
        )
        self.last_convergence = info
        return result

    def fused_column(self, network: CitationNetwork):
        """CiteRank as one column of a fused solve.

        Dangling mass is *not* recycled (the original model), so the
        column iterates on the sparse part alone — no dangling mask.
        """
        if network.n_papers == 0:
            return None
        from repro.core.fused import FusedColumn

        rho = self.entry_distribution(network)
        return FusedColumn(
            label=self.name,
            matrix=shared_operator(network).sparse_part,
            alpha=self.alpha,
            jump=rho,
            start=rho if self.start_vector is None else self.start_vector,
            normalize=False,
            tol=self.tol,
            max_iterations=self.max_iterations,
        )
