"""Citation count — the simplest centrality baseline (paper Section 2).

``CC(p_i) = sum_j C[i, j]``: the in-degree of the paper's node.  Included
as the conventional non-time-aware reference point; the paper's Figure 1
discussion explains why it is biased against recent papers.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro._typing import FloatVector
from repro.graph.citation_network import CitationNetwork
from repro.ranking import RankingMethod

__all__ = ["CitationCount"]


class CitationCount(RankingMethod):
    """Rank papers by raw citation count (in-degree)."""

    name = "CC"

    def params(self) -> Mapping[str, Any]:
        return {}

    def scores(self, network: CitationNetwork) -> FloatVector:
        return network.in_degree.astype(float)
