"""The competitor methods of the paper's comparative evaluation (§4.3).

The registry maps the short labels used in the paper's figures to the
method classes, and :func:`make_method` instantiates any registered
method (including AttRank and its ablations) from keyword parameters —
the entry point the tuning harness and the CLI use.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.baselines.centrality import HITSAuthority, KatzCentrality
from repro.baselines.citation_count import CitationCount
from repro.baselines.citerank import CiteRank
from repro.baselines.ecm import EffectiveContagion
from repro.baselines.futurerank import FutureRank
from repro.baselines.pagerank import PageRank
from repro.baselines.ram import RetainedAdjacency
from repro.baselines.wsdm import WSDMRanker
from repro.core.attrank import AttRank
from repro.core.variants import AttentionOnly, NoAttention
from repro.errors import ConfigurationError
from repro.ranking import RankingMethod

__all__ = [
    "CitationCount",
    "CiteRank",
    "EffectiveContagion",
    "FutureRank",
    "HITSAuthority",
    "KatzCentrality",
    "PageRank",
    "RetainedAdjacency",
    "WSDMRanker",
    "METHOD_REGISTRY",
    "make_method",
    "warm_startable",
]

#: Short label -> method class, labels matching the paper's legends
#: (plus the Section-5 classic centrality variants KATZ and HITS).
METHOD_REGISTRY: Mapping[str, type[RankingMethod]] = {
    "CC": CitationCount,
    "PR": PageRank,
    "CR": CiteRank,
    "FR": FutureRank,
    "RAM": RetainedAdjacency,
    "ECM": EffectiveContagion,
    "WSDM": WSDMRanker,
    "AR": AttRank,
    "NO-ATT": NoAttention,
    "ATT-ONLY": AttentionOnly,
    "KATZ": KatzCentrality,
    "HITS": HITSAuthority,
}


def _resolve_method(name: str) -> type[RankingMethod]:
    """Look up a registry label (case-insensitively), or raise."""
    try:
        return METHOD_REGISTRY[name.upper()]
    except KeyError:
        known = ", ".join(sorted(METHOD_REGISTRY))
        raise ConfigurationError(
            f"unknown method {name!r}; expected one of: {known}"
        ) from None


def make_method(name: str, **params: Any) -> RankingMethod:
    """Instantiate a registered ranking method by its short label.

    >>> make_method("RAM", gamma=0.3).describe()
    'RAM(gamma=0.3)'
    """
    return _resolve_method(name)(**params)


def warm_startable(name: str) -> bool:
    """Whether the registered method honours a warm-start vector.

    The incremental-update path (:mod:`repro.serve`) consults this to
    decide whether a method's previous solution can seed the re-solve
    after a delta, or whether a cold recompute is required.
    """
    return bool(_resolve_method(name).supports_warm_start)
