"""The WSDM Cup 2016 winning method (Feng et al.) — competitor "WSDM".

The winning entry of the cup's "query-independent paper importance" task
aggregates, over a *fixed small number of iterations* ``i`` (4 or 5),
scores propagated to each paper from three bipartite structures —
paper-paper citations, paper-author, paper-venue — plus degree-based
priors weighted by two real coefficients ``alpha`` (in-degree) and
``beta`` (out-degree).

No reference implementation of the winning entry is public; this module
is a faithful-in-spirit reconstruction of the four-page cup description
(see DESIGN.md §4, substitution 3):

* paper prior  ``b ∝ alpha * log1p(indegree) + beta * log1p(outdegree)``
* each iteration recomputes author scores (mean of their papers) and
  venue scores (mean of their papers), then updates every paper with the
  normalised mix of (citation inflow, author mean, venue mean, prior);
* exactly ``i`` iterations are run — no convergence criterion, matching
  the original's fixed-iteration design.

Requires author *and* venue metadata; the paper accordingly evaluates
WSDM only on PMC and DBLP, where such metadata exists.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np
import scipy.sparse as sp

from repro._typing import FloatVector
from repro.errors import ConfigurationError, GraphError
from repro.graph.cache import memoize_on
from repro.graph.citation_network import CitationNetwork
from repro.graph.matrix import shared_operator
from repro.ranking import RankingMethod

__all__ = ["WSDMRanker"]


def _row_mean_operator(incidence: sp.csr_matrix) -> sp.csr_matrix:
    """Row-normalise a bipartite incidence matrix (mean over its papers)."""
    sums = np.asarray(incidence.sum(axis=1)).ravel()
    scale = np.divide(
        1.0, sums, out=np.zeros_like(sums), where=sums > 0
    )
    return sp.diags(scale) @ incidence


def _normalized(vector: np.ndarray) -> np.ndarray:
    total = vector.sum()
    if total <= 0:
        return np.full(vector.size, 1.0 / max(vector.size, 1))
    return vector / total


class WSDMRanker(RankingMethod):
    """The reconstructed WSDM Cup 2016 winner.

    Parameters
    ----------
    alpha:
        Coefficient of the in-degree prior (original work: 1.7).
    beta:
        Coefficient of the out-degree prior (original work: 3).
    iterations:
        Fixed iteration count ``i`` (original work: 4 or 5).
    """

    name = "WSDM"

    def __init__(
        self,
        *,
        alpha: float = 1.7,
        beta: float = 3.0,
        iterations: int = 5,
    ) -> None:
        if alpha < 0 or beta < 0:
            raise ConfigurationError(
                f"alpha and beta must be non-negative, got {alpha}, {beta}"
            )
        if iterations < 1:
            raise ConfigurationError(
                f"iterations must be >= 1, got {iterations}"
            )
        self.alpha = float(alpha)
        self.beta = float(beta)
        self.iterations = int(iterations)

    def params(self) -> Mapping[str, Any]:
        return {
            "alpha": self.alpha,
            "beta": self.beta,
            "iterations": self.iterations,
        }

    def scores(self, network: CitationNetwork) -> FloatVector:
        if network.n_papers == 0:
            raise ConfigurationError("cannot rank an empty network")
        if not network.has_authors or not network.has_venues:
            raise GraphError(
                "the WSDM method requires both author and venue metadata "
                "(the paper runs it only on PMC and DBLP for this reason)"
            )
        n = network.n_papers
        citation_flow = shared_operator(network)
        # The bipartite mean operators depend only on the network, so
        # one WSDM grid (50 settings) normalises each matrix once.
        author_mean = memoize_on(
            network,
            ("wsdm_row_mean", "authors"),
            lambda: _row_mean_operator(network.author_matrix),
        )
        venue_mean = memoize_on(
            network,
            ("wsdm_row_mean", "venues"),
            lambda: _row_mean_operator(network.venue_matrix),
        )

        prior = _normalized(
            self.alpha * np.log1p(network.in_degree.astype(np.float64))
            + self.beta * np.log1p(network.out_degree.astype(np.float64))
        )

        scores = np.full(n, 1.0 / n)
        for _ in range(self.iterations):
            author_scores = author_mean @ scores
            venue_scores = venue_mean @ scores
            from_authors = _normalized(author_mean.T @ author_scores)
            from_venues = _normalized(venue_mean.T @ venue_scores)
            inflow = _normalized(citation_flow.apply(scores))
            scores = _normalized(
                inflow + from_authors + from_venues + prior
            )
        self.last_convergence = None
        return scores
