"""PageRank on the citation network (paper Section 2, Equation 1).

    PR = alpha * S @ PR + (1 - alpha) / |P|

with ``S`` the column-stochastic citation matrix (dangling papers spread
uniformly).  The paper notes that AttRank with ``beta = 0`` and ``w = 0``
recovers exactly this method — a relationship the test suite verifies.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from repro._typing import FloatVector
from repro.core.power_iteration import (
    DEFAULT_TOLERANCE,
    power_iterate,
    uniform_vector,
)
from repro.errors import ConfigurationError
from repro.graph.citation_network import CitationNetwork
from repro.graph.matrix import shared_operator
from repro.ranking import RankingMethod

__all__ = ["PageRank"]


class PageRank(RankingMethod):
    """Classic PageRank with uniform random jumps.

    Parameters
    ----------
    alpha:
        Damping factor — probability of following a reference.  Citation
        analyses conventionally use 0.5 (Chen et al. 2007), the default
        here.
    tol, max_iterations:
        Power-iteration controls.
    """

    name = "PR"
    supports_warm_start = True

    def __init__(
        self,
        *,
        alpha: float = 0.5,
        tol: float = DEFAULT_TOLERANCE,
        max_iterations: int = 1000,
    ) -> None:
        if not 0 <= alpha < 1:
            raise ConfigurationError(f"alpha must be in [0, 1), got {alpha}")
        self.alpha = float(alpha)
        self.tol = tol
        self.max_iterations = max_iterations

    def params(self) -> Mapping[str, Any]:
        return {"alpha": self.alpha}

    def scores(self, network: CitationNetwork) -> FloatVector:
        if network.n_papers == 0:
            raise ConfigurationError("cannot rank an empty network")
        operator = shared_operator(network)
        teleport = (1.0 - self.alpha) * uniform_vector(network.n_papers)

        def step(vector: np.ndarray) -> np.ndarray:
            return self.alpha * operator.apply(vector) + teleport

        result, info = power_iterate(
            step,
            network.n_papers,
            tol=self.tol,
            max_iterations=self.max_iterations,
            start=self.start_vector,
        )
        self.last_convergence = info
        return result

    def fused_column(self, network: CitationNetwork):
        """PageRank as one column of a fused solve."""
        if network.n_papers == 0:
            return None
        from repro.core.fused import FusedColumn

        operator = shared_operator(network)
        teleport = (1.0 - self.alpha) * uniform_vector(network.n_papers)
        return FusedColumn(
            label=self.name,
            matrix=operator.sparse_part,
            alpha=self.alpha,
            jump=teleport,
            dangling=(
                operator.dangling_mask if operator.n_dangling else None
            ),
            start=self.start_vector,
            normalize=True,
            tol=self.tol,
            max_iterations=self.max_iterations,
        )
