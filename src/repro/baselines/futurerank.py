"""FutureRank (Sayyadi & Getoor, 2009) — competitor "FR".

FutureRank predicts the *future PageRank* of papers by combining three
signals in a mutually reinforcing iteration:

* PageRank-style flow over citations (coefficient ``alpha``),
* HITS-style reinforcement between papers and their **authors**
  (coefficient ``beta``): author scores are the normalised sum of their
  papers' scores, and papers in turn receive their authors' scores,
* an exponential **recency** preference ``R^T_i ∝ exp(rho * age_i)``
  with ``rho < 0`` (coefficient ``gamma``).

The update (our notation; ``M`` = stochastic citation matrix, ``B`` =
author-paper incidence) is

    R^A = normalize(B @ R^P)
    R^P = alpha * M @ R^P + beta * normalize(B' @ R^A)
          + gamma * R^T + (1 - alpha - beta - gamma)/n

The paper's evaluation (Section 4.3) notes FR "did not, in practice,
converge under all possible settings"; accordingly the iteration budget
is enforced without raising, and :attr:`last_convergence` reports whether
the tolerance was reached.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from repro._typing import FloatVector
from repro.core.power_iteration import DEFAULT_TOLERANCE, power_iterate
from repro.core.recency import recency_vector
from repro.errors import ConfigurationError, GraphError
from repro.graph.citation_network import CitationNetwork
from repro.graph.matrix import shared_operator
from repro.ranking import RankingMethod

__all__ = ["FutureRank"]


def _normalized(vector: np.ndarray) -> np.ndarray:
    total = vector.sum()
    if total <= 0:
        return np.full(vector.size, 1.0 / max(vector.size, 1))
    return vector / total


class FutureRank(RankingMethod):
    """FutureRank: citation flow + author reinforcement + recency.

    Parameters
    ----------
    alpha:
        Weight of the PageRank (citation) component.
    beta:
        Weight of the author-reinforcement component.  Requires author
        metadata on the network when positive.
    gamma:
        Weight of the recency component.
    rho:
        Exponent of the recency weights (negative; original work uses
        -0.62).
    tol, max_iterations:
        Iteration controls.  Non-convergence within the budget is *not*
        an error (see module docstring).
    now:
        Current time ``tN`` (default: latest publication time).
    """

    name = "FR"

    def __init__(
        self,
        *,
        alpha: float = 0.4,
        beta: float = 0.1,
        gamma: float = 0.5,
        rho: float = -0.62,
        tol: float = DEFAULT_TOLERANCE,
        max_iterations: int = 200,
        now: float | None = None,
    ) -> None:
        for label, value in (("alpha", alpha), ("beta", beta), ("gamma", gamma)):
            if not 0 <= value <= 1:
                raise ConfigurationError(
                    f"{label} must lie in [0, 1], got {value}"
                )
        if alpha + beta + gamma > 1 + 1e-9:
            raise ConfigurationError(
                "alpha + beta + gamma must not exceed 1, got "
                f"{alpha + beta + gamma}"
            )
        if rho >= 0:
            raise ConfigurationError(f"rho must be negative, got {rho}")
        self.alpha = float(alpha)
        self.beta = float(beta)
        self.gamma = float(gamma)
        self.rho = float(rho)
        self.tol = tol
        self.max_iterations = max_iterations
        self.now = now

    def params(self) -> Mapping[str, Any]:
        return {
            "alpha": self.alpha,
            "beta": self.beta,
            "gamma": self.gamma,
            "rho": self.rho,
        }

    def recency_weights(self, network: CitationNetwork) -> FloatVector:
        """The normalised time-preference vector ``R^T``.

        Identical formula to AttRank's recency vector (Eq. 3 with
        ``w = rho``), so it shares that memoised implementation — the
        tuned FR grid revisits each of its 3 rho values 40 times.
        """
        return recency_vector(network, self.rho, now=self.now)

    def scores(self, network: CitationNetwork) -> FloatVector:
        if network.n_papers == 0:
            raise ConfigurationError("cannot rank an empty network")
        if self.beta > 0 and not network.has_authors:
            raise GraphError(
                "FutureRank with beta > 0 requires author metadata"
            )
        n = network.n_papers
        operator = shared_operator(network)
        time_vector = self.recency_weights(network)
        uniform_mass = max(1.0 - self.alpha - self.beta - self.gamma, 0.0) / n

        incidence = network.author_matrix if self.beta > 0 else None

        def step(paper_scores: np.ndarray) -> np.ndarray:
            updated = (
                self.alpha * operator.apply(paper_scores)
                + self.gamma * time_vector
                + uniform_mass
            )
            if incidence is not None:
                author_scores = _normalized(incidence @ paper_scores)
                updated = updated + self.beta * _normalized(
                    incidence.T @ author_scores
                )
            return updated

        result, info = power_iterate(
            step,
            n,
            tol=self.tol,
            max_iterations=self.max_iterations,
            raise_on_failure=False,
        )
        self.last_convergence = info
        return result

    def fused_column(self, network: CitationNetwork):
        """FutureRank as one column of a fused solve.

        The citation flow shares the stacked SpMV; the author
        reinforcement and recency terms cannot be folded into a single
        jump vector without changing float addition order, so they run
        in a ``combine`` callback that mirrors :meth:`scores`'s step
        expression term by term.
        """
        if network.n_papers == 0 or (
            self.beta > 0 and not network.has_authors
        ):
            return None
        from repro.core.fused import FusedColumn

        n = network.n_papers
        operator = shared_operator(network)
        time_vector = self.recency_weights(network)
        uniform_mass = max(1.0 - self.alpha - self.beta - self.gamma, 0.0) / n
        incidence = network.author_matrix if self.beta > 0 else None

        def combine(applied: np.ndarray, current: np.ndarray) -> np.ndarray:
            updated = (
                self.alpha * applied
                + self.gamma * time_vector
                + uniform_mass
            )
            if incidence is not None:
                author_scores = _normalized(incidence @ current)
                updated = updated + self.beta * _normalized(
                    incidence.T @ author_scores
                )
            return updated

        return FusedColumn(
            label=self.name,
            matrix=operator.sparse_part,
            dangling=(
                operator.dangling_mask if operator.n_dangling else None
            ),
            combine=combine,
            normalize=True,
            tol=self.tol,
            max_iterations=self.max_iterations,
            raise_on_failure=False,
        )
