"""The sharded score store — partitioned serving state.

A :class:`ShardedScoreIndex` splits the papers of a
:class:`~repro.serve.ScoreIndex` across N :class:`Shard` column stores
(paper ids, publication times, per-method score slices).  Scores are
always *solved globally* — PageRank-style fixed points are properties
of the whole graph, so sharding never re-solves anything — but storing
and querying them sharded is what lets the serving layer scale:

* each shard answers top-k / filter / rank-count requests over its own
  slice, independently and concurrently
  (:class:`~repro.serve.QueryEngine` k-way merges the per-shard
  candidate lists into the global page);
* each shard persists as its *own* ``.npz`` file in the existing
  score-index format — an individual shard file round-trips through
  :meth:`ScoreIndex.load` — and a saved store loads shards lazily, so
  opening a huge index to answer one query touches one manifest and at
  most a few shard files;
* :meth:`ShardedScoreIndex.sync` routes incremental growth to the
  affected shards: after a delta update, new papers are assigned by the
  store's partitioner and only the shards that gained papers are
  reported as touched.

Two partitioners are built in.  ``"hash"`` (default) spreads papers
uniformly by a stable FNV-1a hash of the external id — deterministic
across processes, unlike Python's salted ``hash``.  ``"year"`` assigns
contiguous publication-time ranges using quantile boundaries fixed at
build time, so year-filtered queries can skip shards entirely.

Every partitioning of the same index answers every query with results
*bit-identical* to the unsharded :class:`~repro.serve.RankingService`
— the property the shard-count {1, 2, 7} tests assert.
"""

from __future__ import annotations

import json
import os
import zipfile
import zlib
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro._typing import FloatVector, IntVector
from repro.chaos.points import chaos_point
from repro.errors import ConfigurationError, IndexIntegrityError
from repro.io.serialize import network_payload
from repro.serve.score_index import INDEX_FORMAT_VERSION, ScoreIndex

__all__ = [
    "Shard",
    "ShardedScoreIndex",
    "StoreSnapshot",
    "PARTITIONERS",
    "SHARD_MANIFEST",
    "SHARD_FORMAT_VERSION",
    "hash_shard_of",
    "year_boundaries",
]

#: Supported partitioner names.
PARTITIONERS = ("hash", "year")

#: Manifest filename inside a saved shard directory.
SHARD_MANIFEST = "manifest.json"

#: On-disk format version of the shard directory layout.
SHARD_FORMAT_VERSION = 1


_FNV_OFFSET = 2166136261
_FNV_PRIME = 16777619


def hash_shard_of(paper_id: str, n_shards: int) -> int:
    """Stable shard assignment of one paper id (32-bit FNV-1a mod N).

    Python's built-in ``hash`` is salted per process; FNV-1a keeps the
    routing identical between the process that built a store and the
    process that applies a delta to it.  Zero bytes are skipped so the
    scalar form agrees with the vectorised bulk assignment, which
    operates on NUL-padded fixed-width byte columns.
    """
    value = _FNV_OFFSET
    for byte in str(paper_id).encode("utf-8"):
        if byte:
            value = ((value ^ byte) * _FNV_PRIME) & 0xFFFFFFFF
    return value % n_shards


def _hash_assign(paper_ids: Sequence[str], n_shards: int) -> IntVector:
    """Vectorised :func:`hash_shard_of` over a batch of ids.

    Ids are packed into a fixed-width byte matrix and the FNV-1a state
    is advanced one byte *column* at a time — ``max_id_length`` NumPy
    passes instead of one Python call per paper.  Non-ASCII ids cannot
    be packed into the byte matrix; they fall back to the scalar loop
    (identical results, just slower).
    """
    if not paper_ids:
        return np.zeros(0, dtype=np.int64)
    try:
        encoded = np.asarray(paper_ids, dtype=np.bytes_)
    except UnicodeEncodeError:
        return np.fromiter(
            (hash_shard_of(pid, n_shards) for pid in paper_ids),
            dtype=np.int64,
            count=len(paper_ids),
        )
    width = encoded.dtype.itemsize
    matrix = np.ascontiguousarray(encoded).view(np.uint8).reshape(
        len(paper_ids), width
    )
    state = np.full(len(paper_ids), _FNV_OFFSET, dtype=np.uint64)
    prime = np.uint64(_FNV_PRIME)
    mask = np.uint64(0xFFFFFFFF)
    for column in range(width):
        byte = matrix[:, column].astype(np.uint64)
        advanced = ((state ^ byte) * prime) & mask
        state = np.where(byte != 0, advanced, state)
    return (state % np.uint64(n_shards)).astype(np.int64)


def year_boundaries(times: FloatVector, n_shards: int) -> FloatVector:
    """Interior quantile boundaries splitting ``times`` into N ranges.

    Returns ``n_shards - 1`` ascending split points; paper with time
    ``t`` goes to shard ``searchsorted(boundaries, t, side="right")``.
    Quantiles balance shard populations even for skewed year
    distributions (citation corpora grow exponentially).
    """
    quantiles = np.arange(1, n_shards) / n_shards
    return np.quantile(np.asarray(times, dtype=np.float64), quantiles)


def _assign(
    paper_ids: Sequence[str],
    times: FloatVector,
    n_shards: int,
    partitioner: str,
    boundaries: FloatVector | None,
) -> IntVector:
    """Shard id per paper, by the configured partitioner."""
    if partitioner == "hash":
        return _hash_assign(paper_ids, n_shards)
    if partitioner == "year":
        assert boundaries is not None
        return np.searchsorted(
            boundaries, np.asarray(times, dtype=np.float64), side="right"
        ).astype(np.int64)
    raise ConfigurationError(
        f"unknown partitioner {partitioner!r} "
        f"(available: {', '.join(PARTITIONERS)})"
    )


class Shard:
    """One shard's column store: a slice of the global serving state.

    Parameters
    ----------
    shard_id:
        Position of this shard in its store.
    global_indices:
        Ascending global paper indices this shard owns.  The global
        index is the universal tie-breaker (rankings break score ties
        by ascending index), so every shard carries it.
    paper_ids, times:
        External ids and publication times, parallel to
        ``global_indices``.
    scores:
        Per-method score slices, parallel to ``global_indices``.

    A shard memoises its per-method orderings (and filtered variants)
    on first use; the store drops and rebuilds shards on
    :meth:`ShardedScoreIndex.sync`, which is what keeps memos honest
    across versions.
    """

    def __init__(
        self,
        shard_id: int,
        global_indices: IntVector,
        paper_ids: Sequence[str],
        times: FloatVector,
        scores: Mapping[str, FloatVector],
    ) -> None:
        self.shard_id = int(shard_id)
        self.global_indices = np.asarray(global_indices, dtype=np.int64)
        self.paper_ids = tuple(str(p) for p in paper_ids)
        self.times = np.asarray(times, dtype=np.float64)
        self.scores = {
            label: np.asarray(vector, dtype=np.float64)
            for label, vector in scores.items()
        }
        for array in (self.global_indices, self.times, *self.scores.values()):
            array.setflags(write=False)
        # (label, span) -> local positions sorted by (score desc,
        # global index asc) within the span filter; span None = all.
        # Full orders (span None) are kept unconditionally; filtered
        # spans are user input and capped (FIFO) so arbitrary query
        # filters cannot grow the memo without bound.
        self._orders: dict[tuple[str, tuple[float, float] | None], IntVector] = {}
        self._id_index: dict[str, int] | None = None

    #: Maximum memoised *filtered* orders per shard (full per-method
    #: orders are always kept).
    MAX_SPAN_MEMOS = 32

    @property
    def n_papers(self) -> int:
        """Papers owned by this shard."""
        return len(self.paper_ids)

    @property
    def labels(self) -> tuple[str, ...]:
        """Method labels this shard carries scores for."""
        return tuple(self.scores)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Shard(id={self.shard_id}, n_papers={self.n_papers}, "
            f"methods={list(self.scores)})"
        )

    # ------------------------------------------------------------------
    # Orderings
    # ------------------------------------------------------------------
    def _score_vector(self, label: str) -> FloatVector:
        try:
            return self.scores[label]
        except KeyError:
            known = ", ".join(self.scores) or "<none>"
            raise ConfigurationError(
                f"method {label!r} is not in the index (indexed: {known})"
            ) from None

    def order(
        self, label: str, span: tuple[float, float] | None = None
    ) -> IntVector:
        """Local positions by (score desc, global index asc), filtered.

        The global-index tie-break makes per-shard orders mergeable
        into exactly the global ranking: within a shard the global
        indices are ascending, so a stable local sort suffices.  The
        full order is sorted once per method; span filters reuse it
        with a boolean selection (which preserves the sort), so a new
        filter costs O(n), not O(n log n).
        """
        key = (label, span)
        memo = self._orders.get(key)
        if memo is not None:
            return memo
        if span is None:
            scores = self._score_vector(label)
            candidates = np.arange(self.n_papers, dtype=np.int64)
            # lexsort's last key dominates: score descending, then the
            # (ascending) candidate position, which is ascending global
            # index because global_indices is sorted.
            order = candidates[
                np.lexsort((candidates, -scores))
            ]
        else:
            full = self.order(label, None)
            lo, hi = span
            ordered_times = self.times[full]
            order = full[(ordered_times >= lo) & (ordered_times <= hi)]
            spans_memoised = sum(
                1 for _, memo_span in self._orders if memo_span is not None
            )
            if spans_memoised >= self.MAX_SPAN_MEMOS:
                oldest = next(
                    memo_key
                    for memo_key in self._orders
                    if memo_key[1] is not None
                )
                del self._orders[oldest]
        order.setflags(write=False)
        self._orders[key] = order
        return order

    def candidates(
        self,
        label: str,
        span: tuple[float, float] | None,
        depth: int,
    ) -> tuple[int, IntVector]:
        """``(total_matching, top-depth local positions)`` for a merge.

        ``total_matching`` counts every paper of the shard inside the
        span (for pagination totals); the returned positions are the
        shard's best ``depth`` rows — enough for any global top-
        ``depth`` merge, since no merge can take more rows from one
        shard than it returns overall.
        """
        order = self.order(label, span)
        return int(order.size), order[:depth]

    def count_ranked_before(
        self, label: str, score: float, global_index: int
    ) -> int:
        """Papers of this shard ranking strictly before a global row.

        A paper ranks before ``(score, global_index)`` iff its score is
        higher, or equal with a smaller global index — the same
        tie-break the rankings use.  Binary search over the shard's
        descending score order keeps this O(log n) + O(ties).
        """
        order = self.order(label, None)
        if order.size == 0:
            return 0
        ordered_scores = self._score_vector(label)[order]
        # ordered_scores is descending; search its negation (ascending).
        lo = int(np.searchsorted(-ordered_scores, -score, side="left"))
        hi = int(np.searchsorted(-ordered_scores, -score, side="right"))
        ties = self.global_indices[order[lo:hi]]
        return lo + int(np.count_nonzero(ties < global_index))

    def location_of(self, paper_id: str) -> int | None:
        """Local position of ``paper_id``, or ``None`` if not owned."""
        if self._id_index is None:
            self._id_index = {
                pid: i for i, pid in enumerate(self.paper_ids)
            }
        return self._id_index.get(str(paper_id))


class StoreSnapshot:
    """One immutable read view of a sharded store — a *generation*.

    Everything a query execution needs lives here: the version, the
    labels, the shard column stores, and the pruning bounds.  The
    owning :class:`ShardedScoreIndex` swaps in a *new* snapshot as a
    single attribute assignment on :meth:`ShardedScoreIndex.sync` —
    atomic under the GIL — so a reader that captured a snapshot keeps
    a self-consistent view for its whole execution, no matter how many
    syncs land meanwhile.  This is what makes concurrent
    read-during-update safe: a response is computed entirely against
    the old generation or entirely against the new one, never a mix
    (the threaded shard tests and the gateway's live-update path both
    lean on exactly this).

    The only mutation a snapshot ever sees is the *lazy fill* of a
    detached store's shard cache — idempotent (two racing loaders
    produce equal shards) and invisible to correctness.
    """

    __slots__ = (
        "version", "labels", "n_papers", "n_shards", "partitioner",
        "_boundaries", "_shards", "_shard_paths",
    )

    def __init__(
        self,
        *,
        version: int,
        labels: tuple[str, ...],
        n_papers: int,
        n_shards: int,
        partitioner: str,
        boundaries: FloatVector | None,
        shards: dict[int, Shard],
        shard_paths: tuple[str, ...] | None,
    ) -> None:
        self.version = int(version)
        self.labels = tuple(labels)
        self.n_papers = int(n_papers)
        self.n_shards = int(n_shards)
        self.partitioner = partitioner
        self._boundaries = boundaries
        self._shards = shards
        self._shard_paths = shard_paths

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StoreSnapshot(version={self.version}, "
            f"n_shards={self.n_shards}, n_papers={self.n_papers})"
        )

    @property
    def loaded_shard_count(self) -> int:
        """Shards materialised in memory (lazy loads stay at 0)."""
        return len(self._shards)

    def loaded_shards(self) -> tuple[Shard, ...]:
        """The shards already in memory, in id order (no lazy loads)."""
        return tuple(
            self._shards[i] for i in sorted(self._shards)
        )

    def shard(self, shard_id: int) -> Shard:
        """The shard at ``shard_id``, loading it from disk if lazy."""
        if shard_id < 0 or shard_id >= self.n_shards:
            raise ConfigurationError(
                f"shard id {shard_id} out of range [0, {self.n_shards})"
            )
        existing = self._shards.get(shard_id)
        if existing is not None:
            return existing
        assert self._shard_paths is not None
        shard = _load_shard_file(
            self._shard_paths[shard_id], shard_id, self.labels,
            self.version,
        )
        self._shards[shard_id] = shard
        return shard

    def iter_shards(self) -> Iterable[Shard]:
        """All shards in id order (materialising lazy ones)."""
        return (self.shard(i) for i in range(self.n_shards))

    def shard_time_bounds(
        self, shard_id: int
    ) -> tuple[float, float] | None:
        """Conservative ``[lo, hi]`` publication-time bounds of a shard.

        Only the year partitioner guarantees bounds (its fixed
        boundaries): shard ``i`` holds papers with ``boundaries[i-1] <=
        t < boundaries[i]``, reported here inclusively on both ends to
        stay conservative.  ``None`` means "no guarantee" (hash
        partitioning) — callers must not prune.  The query engine uses
        this to skip shards whose range cannot intersect a year filter,
        without ever loading them.
        """
        if self.partitioner != "year" or self._boundaries is None:
            return None
        lo = (
            float(self._boundaries[shard_id - 1])
            if shard_id > 0
            else float("-inf")
        )
        hi = (
            float(self._boundaries[shard_id])
            if shard_id < self.n_shards - 1
            else float("inf")
        )
        return (lo, hi)


class ShardedScoreIndex:
    """Papers of a score index partitioned across N shards.

    Build one *attached* with :meth:`from_index` (it keeps a reference
    to the backing :class:`ScoreIndex` so :meth:`sync` can follow
    updates), or *detached* with :meth:`load` (query-only, reading a
    directory written by :meth:`save`).

    Internally all serving state lives in one :class:`StoreSnapshot`
    swapped atomically by :meth:`sync`; readers that need a stable
    multi-step view capture it once via :meth:`snapshot`.

    Examples
    --------
    >>> from repro.serve import ScoreIndex
    >>> from repro.synth import toy_network
    >>> index = ScoreIndex(toy_network())
    >>> index.add_method("CC")
    >>> store = ShardedScoreIndex.from_index(index, n_shards=3)
    >>> store.n_shards
    3
    >>> sum(store.shard(i).n_papers for i in range(3))
    8
    """

    def __init__(
        self,
        *,
        n_shards: int,
        partitioner: str,
        version: int,
        labels: tuple[str, ...],
        n_papers: int,
        boundaries: FloatVector | None,
        backing: ScoreIndex | None,
        assignment: IntVector | None,
        shards: dict[int, Shard] | None = None,
        shard_paths: tuple[str, ...] | None = None,
    ) -> None:
        self._backing = backing
        self._assignment = assignment
        self._snapshot = StoreSnapshot(
            version=version,
            labels=labels,
            n_papers=n_papers,
            n_shards=n_shards,
            partitioner=partitioner,
            boundaries=boundaries,
            shards=dict(shards or {}),
            shard_paths=shard_paths,
        )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_index(
        cls,
        index: ScoreIndex,
        *,
        n_shards: int = 1,
        partitioner: str = "hash",
    ) -> "ShardedScoreIndex":
        """Partition a live :class:`ScoreIndex` into an attached store.

        Raises
        ------
        ConfigurationError
            If ``n_shards < 1``, the partitioner is unknown, or the
            index has no solved methods to serve.
        """
        if n_shards < 1:
            raise ConfigurationError(
                f"n_shards must be >= 1, got {n_shards}"
            )
        if partitioner not in PARTITIONERS:
            raise ConfigurationError(
                f"unknown partitioner {partitioner!r} "
                f"(available: {', '.join(PARTITIONERS)})"
            )
        if not index.labels:
            raise ConfigurationError(
                "cannot shard an index with no solved methods"
            )
        network = index.network
        boundaries = None
        if partitioner == "year":
            # n_shards == 1 yields an empty boundary array; searchsorted
            # then routes every paper to shard 0.
            boundaries = year_boundaries(
                network.publication_times, n_shards
            )
        assignment = _assign(
            network.paper_ids,
            network.publication_times,
            n_shards,
            partitioner,
            boundaries,
        )
        store = cls(
            n_shards=n_shards,
            partitioner=partitioner,
            version=index.version,
            labels=index.labels,
            n_papers=network.n_papers,
            boundaries=boundaries,
            backing=index,
            assignment=assignment,
            shards=_slice_shards(index, index.labels, assignment, n_shards),
        )
        return store

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_shards(self) -> int:
        """Number of partitions."""
        return self._snapshot.n_shards

    @property
    def partitioner(self) -> str:
        """Partitioner name (``"hash"`` or ``"year"``)."""
        return self._snapshot.partitioner

    @property
    def version(self) -> int:
        """Version of the serving state the shards were sliced from."""
        return self._snapshot.version

    @property
    def labels(self) -> tuple[str, ...]:
        """Method labels available in every shard."""
        return self._snapshot.labels

    @property
    def n_papers(self) -> int:
        """Total papers across all shards."""
        return self._snapshot.n_papers

    @property
    def attached(self) -> bool:
        """Whether a backing :class:`ScoreIndex` is available."""
        return self._backing is not None

    @property
    def loaded_shard_count(self) -> int:
        """Shards materialised in memory (lazy loads stay at 0)."""
        return self._snapshot.loaded_shard_count

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardedScoreIndex(n_shards={self.n_shards}, "
            f"partitioner={self.partitioner!r}, "
            f"version={self.version}, n_papers={self.n_papers})"
        )

    def snapshot(self) -> StoreSnapshot:
        """The current generation — a stable view for multi-step reads.

        A capture is one attribute read (atomic under the GIL); the
        returned view never changes underneath the caller, even if
        :meth:`sync` swaps in a new generation mid-read.
        """
        return self._snapshot

    def shard(self, shard_id: int) -> Shard:
        """The shard at ``shard_id``, loading it from disk if lazy."""
        return self._snapshot.shard(shard_id)

    def iter_shards(self) -> Iterable[Shard]:
        """All shards in id order (materialising lazy ones)."""
        return self._snapshot.iter_shards()

    def shard_time_bounds(
        self, shard_id: int
    ) -> tuple[float, float] | None:
        """Conservative time bounds of a shard (see
        :meth:`StoreSnapshot.shard_time_bounds`)."""
        return self._snapshot.shard_time_bounds(shard_id)

    # ------------------------------------------------------------------
    # Incremental updates
    # ------------------------------------------------------------------
    def sync(self) -> tuple[int, ...]:
        """Follow the backing index; return the shards that gained papers.

        Routes each *new* paper (anything beyond the assignment's
        length — extension preserves existing indices) to its shard via
        the stored partitioner, then re-slices every shard's score
        columns (a refresh changes scores globally even when no paper
        moved).  Year-partitioned stores route new papers against the
        boundaries fixed at build time, so routing never disagrees
        between the building and the updating process.

        The new generation is assembled completely off to the side and
        published as one :class:`StoreSnapshot` swap — concurrent
        readers that captured :meth:`snapshot` before the swap keep
        serving the old generation, readers arriving after it see only
        the new one, and nobody ever observes a half-rebuilt store.

        Raises
        ------
        ConfigurationError
            On a detached (loaded-from-disk) store.
        """
        if self._backing is None or self._assignment is None:
            raise ConfigurationError(
                "cannot sync a detached sharded index (loaded from "
                "disk without its backing ScoreIndex)"
            )
        current = self._snapshot
        network = self._backing.network
        known = int(self._assignment.size)
        assignment = self._assignment
        touched: tuple[int, ...] = ()
        if network.n_papers > known:
            new_ids = network.paper_ids[known:]
            new_times = network.publication_times[known:]
            new_assignment = _assign(
                new_ids,
                new_times,
                current.n_shards,
                current.partitioner,
                current._boundaries,
            )
            assignment = np.concatenate([assignment, new_assignment])
            touched = tuple(
                int(s) for s in np.unique(new_assignment)
            )
        labels = self._backing.labels
        shards = _slice_shards(
            self._backing, labels, assignment, current.n_shards
        )
        chaos_point("shard.sync.swap")
        self._assignment = assignment
        self._snapshot = StoreSnapshot(
            version=self._backing.version,
            labels=labels,
            n_papers=network.n_papers,
            n_shards=current.n_shards,
            partitioner=current.partitioner,
            boundaries=current._boundaries,
            shards=shards,
            shard_paths=None,
        )
        return touched

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, directory: str) -> str:
        """Write ``manifest.json`` plus one ``.npz`` per shard.

        Each shard file is a complete score index over the shard's
        induced subnetwork (cross-shard edges drop out — the file
        persists serving data, not the solve graph), so a single shard
        also loads via :meth:`ScoreIndex.load`.  Returns the manifest
        path.
        """
        if self._backing is None:
            raise ConfigurationError(
                "cannot save a detached sharded index; save() needs "
                "the backing ScoreIndex for the shard subnetworks"
            )
        os.makedirs(directory, exist_ok=True)
        snapshot = self._snapshot
        network = self._backing.network
        files = []
        for shard_id in range(snapshot.n_shards):
            shard = snapshot.shard(shard_id)
            filename = f"shard_{shard_id:04d}.npz"
            files.append(filename)
            subnet = network.subnetwork(shard.global_indices)
            payload = network_payload(subnet)
            meta = {
                "index_format_version": INDEX_FORMAT_VERSION,
                "version": snapshot.version,
                "methods": [
                    {
                        "label": entry.label,
                        "params": dict(entry.params),
                        "iterations": entry.iterations,
                        "converged": entry.converged,
                        "warm_started": entry.warm_started,
                    }
                    for entry in (
                        self._backing.entry(label)
                        for label in snapshot.labels
                    )
                ],
            }
            payload["index_meta"] = np.asarray(
                [json.dumps(meta)], dtype=np.str_
            )
            shard_meta = {
                "shard_format_version": SHARD_FORMAT_VERSION,
                "shard_id": shard_id,
                "n_shards": snapshot.n_shards,
                "partitioner": snapshot.partitioner,
            }
            payload["shard_meta"] = np.asarray(
                [json.dumps(shard_meta)], dtype=np.str_
            )
            payload["shard_global_indices"] = shard.global_indices
            for label in snapshot.labels:
                payload[f"index_scores__{label}"] = shard.scores[label]
            with open(os.path.join(directory, filename), "wb") as handle:
                np.savez_compressed(handle, **payload)
        manifest = {
            "shard_format_version": SHARD_FORMAT_VERSION,
            "n_shards": snapshot.n_shards,
            "partitioner": snapshot.partitioner,
            "version": snapshot.version,
            "labels": list(snapshot.labels),
            "n_papers": snapshot.n_papers,
            "boundaries": (
                None
                if snapshot._boundaries is None
                else [float(b) for b in snapshot._boundaries]
            ),
            "files": files,
        }
        manifest_path = os.path.join(directory, SHARD_MANIFEST)
        with open(manifest_path, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=2)
            handle.write("\n")
        return manifest_path

    @classmethod
    def load(cls, directory: str) -> "ShardedScoreIndex":
        """Open a saved store *lazily*: only the manifest is read now.

        Shard files are loaded on first access (:meth:`shard`), so a
        query that a year-partitioned plan confines to one shard pays
        for one file.  The result is detached — it answers queries but
        cannot :meth:`sync` or :meth:`save`.

        Raises
        ------
        IndexIntegrityError
            If the manifest is missing, malformed, or disagrees with
            the shard files it names.
        """
        manifest_path = os.path.join(directory, SHARD_MANIFEST)
        if not os.path.exists(manifest_path):
            raise IndexIntegrityError(
                f"{directory}: not a sharded score index "
                f"(missing {SHARD_MANIFEST})"
            )
        try:
            with open(manifest_path, "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
        except json.JSONDecodeError as error:
            raise IndexIntegrityError(
                f"{manifest_path}: invalid JSON ({error})"
            ) from None
        try:
            declared = int(manifest["shard_format_version"])
            n_shards = int(manifest["n_shards"])
            partitioner = str(manifest["partitioner"])
            version = int(manifest["version"])
            labels = tuple(str(l) for l in manifest["labels"])
            n_papers = int(manifest["n_papers"])
            files = [str(f) for f in manifest["files"]]
            raw_boundaries = manifest["boundaries"]
        except (KeyError, TypeError, ValueError) as error:
            raise IndexIntegrityError(
                f"{manifest_path}: malformed manifest ({error})"
            ) from None
        if declared != SHARD_FORMAT_VERSION:
            raise IndexIntegrityError(
                f"{manifest_path}: unsupported shard format version "
                f"{declared} (this build reads "
                f"version {SHARD_FORMAT_VERSION})"
            )
        if len(files) != n_shards:
            raise IndexIntegrityError(
                f"{manifest_path}: manifest declares {n_shards} shards "
                f"but names {len(files)} files"
            )
        boundaries = (
            None
            if raw_boundaries is None
            else np.asarray(raw_boundaries, dtype=np.float64)
        )
        return cls(
            n_shards=n_shards,
            partitioner=partitioner,
            version=version,
            labels=labels,
            n_papers=n_papers,
            boundaries=boundaries,
            backing=None,
            assignment=None,
            shards={},
            shard_paths=tuple(
                os.path.join(directory, name) for name in files
            ),
        )


def _slice_shards(
    index: ScoreIndex,
    labels: tuple[str, ...],
    assignment: IntVector,
    n_shards: int,
) -> dict[int, Shard]:
    """Slice fresh shard column stores out of a backing index."""
    network = index.network
    ids = network.paper_ids
    times = network.publication_times
    vectors = {label: index.scores(label) for label in labels}
    shards: dict[int, Shard] = {}
    for shard_id in range(n_shards):
        owned = np.nonzero(assignment == shard_id)[0].astype(np.int64)
        shards[shard_id] = Shard(
            shard_id=shard_id,
            global_indices=owned,
            paper_ids=[ids[i] for i in owned],
            times=times[owned],
            scores={
                label: vector[owned]
                for label, vector in vectors.items()
            },
        )
    return shards


def _load_shard_file(
    path: str,
    shard_id: int,
    labels: tuple[str, ...],
    version: int,
) -> Shard:
    """Read one shard ``.npz`` and cross-check it against the manifest."""
    if not os.path.exists(path):
        raise IndexIntegrityError(f"shard file not found: {path}")
    try:
        # Materialised eagerly: truncation fails the zip open, but a
        # bit-flipped member only fails when its deflate stream is
        # read — both must surface as a typed integrity failure, never
        # a bare zipfile/zlib traceback.
        with np.load(path, allow_pickle=False) as archive:
            arrays = {name: archive[name] for name in archive.files}
    except (OSError, ValueError, zipfile.BadZipFile, zlib.error) as error:
        raise IndexIntegrityError(
            f"{path}: not a readable shard .npz ({error})"
        ) from None
    members = set(arrays)
    required = {"paper_ids", "pub_time", "shard_meta", "index_meta",
                "shard_global_indices"}
    missing = required - members
    if missing:
        raise IndexIntegrityError(
            f"{path}: not a shard file (missing {sorted(missing)})"
        )
    shard_meta = json.loads(str(arrays["shard_meta"][0]))
    index_meta = json.loads(str(arrays["index_meta"][0]))
    if int(shard_meta.get("shard_id", -1)) != shard_id:
        raise IndexIntegrityError(
            f"{path}: shard file claims id "
            f"{shard_meta.get('shard_id')}, manifest expects "
            f"{shard_id}"
        )
    if int(index_meta.get("version", -1)) != version:
        raise IndexIntegrityError(
            f"{path}: shard is at index version "
            f"{index_meta.get('version')}, manifest expects "
            f"{version} — the store was partially overwritten"
        )
    paper_ids = [str(p) for p in arrays["paper_ids"]]
    times = np.asarray(arrays["pub_time"], dtype=np.float64)
    global_indices = np.asarray(
        arrays["shard_global_indices"], dtype=np.int64
    )
    scores: dict[str, FloatVector] = {}
    for label in labels:
        key = f"index_scores__{label}"
        if key not in members:
            raise IndexIntegrityError(
                f"{path}: score vector for {label!r} is missing"
            )
        vector = np.asarray(arrays[key], dtype=np.float64)
        if vector.shape != (len(paper_ids),):
            raise IndexIntegrityError(
                f"{path}: score vector for {label!r} has length "
                f"{vector.size}, expected {len(paper_ids)}"
            )
        scores[label] = vector
    if global_indices.shape != (len(paper_ids),):
        raise IndexIntegrityError(
            f"{path}: shard_global_indices has length "
            f"{global_indices.size}, expected {len(paper_ids)}"
        )
    return Shard(
        shard_id=shard_id,
        global_indices=global_indices,
        paper_ids=paper_ids,
        times=times,
        scores=scores,
    )
