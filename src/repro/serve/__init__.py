"""repro.serve — the incremental, sharded ranking service layer.

The paper ranks by *short-term* impact, a signal that is only useful if
rankings can follow the corpus as new papers and citations arrive
(BIP! DB, the deployment built on these methods, refreshes its scores
from exactly such harvesting cycles — and serves them for >100M
publications).  This package turns the offline bench into that service:

* :class:`ScoreIndex` — versioned per-method score vectors bound to a
  network snapshot, persistable as one ``.npz`` file;
* :class:`NetworkDelta` / :class:`DeltaUpdater` — batches of new papers
  and citations, applied by extending the snapshot in place (existing
  paper indices are preserved) and re-solving each method
  **warm-started** from its previous solution;
* :class:`ShardedScoreIndex` — the serving state partitioned across N
  shards (hash or year-range), each shard its own lazily-loadable
  ``.npz`` file, with delta growth routed to the affected shards;
* :class:`QueryEngine` — batches of heterogeneous queries
  (:class:`TopKQuery` / :class:`PaperQuery` / :class:`CompareQuery`)
  planned per shard, executed concurrently, and k-way heap-merged into
  results bit-identical to the unsharded path;
* :class:`RankingService` — the per-request front end: paginated top-k
  queries, year-range filters, multi-method comparison and per-paper
  lookups behind an LRU result cache, delegating reads to the engine
  (the unsharded service is the ``shards=1`` special case).

CLI: ``repro index`` builds an index file (``--shards N`` for a shard
directory), ``repro update`` applies a delta, ``repro query`` serves
reads (``--batch FILE`` for a query batch).
"""

from repro.serve.batch import (
    CompareQuery,
    PaperQuery,
    Query,
    QueryEngine,
    TopKQuery,
    execute_with_attribution,
    pairwise_overlap,
    queries_from_file,
    queries_from_payload,
    result_payload,
)
from repro.serve.cache import CacheStats, LRUCache
from repro.serve.delta import (
    DeltaUpdater,
    NetworkDelta,
    UpdateReport,
    delta_between,
)
from repro.serve.results import (
    MethodComparison,
    PaperDetails,
    QueryResult,
    RankedPaper,
)
from repro.serve.score_index import (
    INDEX_FORMAT_VERSION,
    MethodEntry,
    ScoreIndex,
)
from repro.serve.service import RankingService
from repro.serve.shm import (
    SHM_FORMAT_VERSION,
    GenerationBoard,
    SharedStorePublisher,
    SharedStoreReader,
    attach_snapshot,
    export_snapshot,
)
from repro.serve.shard import (
    PARTITIONERS,
    SHARD_FORMAT_VERSION,
    SHARD_MANIFEST,
    Shard,
    ShardedScoreIndex,
    StoreSnapshot,
)

__all__ = [
    "CacheStats",
    "LRUCache",
    "DeltaUpdater",
    "NetworkDelta",
    "UpdateReport",
    "delta_between",
    "INDEX_FORMAT_VERSION",
    "MethodEntry",
    "ScoreIndex",
    "PARTITIONERS",
    "SHARD_FORMAT_VERSION",
    "SHARD_MANIFEST",
    "Shard",
    "ShardedScoreIndex",
    "StoreSnapshot",
    "CompareQuery",
    "PaperQuery",
    "Query",
    "QueryEngine",
    "TopKQuery",
    "execute_with_attribution",
    "pairwise_overlap",
    "queries_from_file",
    "queries_from_payload",
    "result_payload",
    "MethodComparison",
    "PaperDetails",
    "QueryResult",
    "RankedPaper",
    "RankingService",
    "SHM_FORMAT_VERSION",
    "GenerationBoard",
    "SharedStorePublisher",
    "SharedStoreReader",
    "attach_snapshot",
    "export_snapshot",
]
