"""repro.serve — the incremental ranking service layer.

The paper ranks by *short-term* impact, a signal that is only useful if
rankings can follow the corpus as new papers and citations arrive
(BIP! DB, the deployment built on these methods, refreshes its scores
from exactly such harvesting cycles).  This package turns the offline
bench into that service:

* :class:`ScoreIndex` — versioned per-method score vectors bound to a
  network snapshot, persistable as one ``.npz`` file;
* :class:`NetworkDelta` / :class:`DeltaUpdater` — batches of new papers
  and citations, applied by extending the snapshot in place (existing
  paper indices are preserved) and re-solving each method
  **warm-started** from its previous solution;
* :class:`RankingService` — paginated top-k queries, year-range
  filters, multi-method comparison and per-paper lookups, behind an
  LRU result cache that the index version keeps honest.

CLI: ``repro index`` builds an index file, ``repro update`` applies a
delta, ``repro query`` serves reads from it.
"""

from repro.serve.cache import CacheStats, LRUCache
from repro.serve.delta import (
    DeltaUpdater,
    NetworkDelta,
    UpdateReport,
    delta_between,
)
from repro.serve.score_index import (
    INDEX_FORMAT_VERSION,
    MethodEntry,
    ScoreIndex,
)
from repro.serve.service import (
    MethodComparison,
    PaperDetails,
    QueryResult,
    RankedPaper,
    RankingService,
)

__all__ = [
    "CacheStats",
    "LRUCache",
    "DeltaUpdater",
    "NetworkDelta",
    "UpdateReport",
    "delta_between",
    "INDEX_FORMAT_VERSION",
    "MethodEntry",
    "ScoreIndex",
    "MethodComparison",
    "PaperDetails",
    "QueryResult",
    "RankedPaper",
    "RankingService",
]
