"""Result objects shared by the query front ends.

Both query layers — the per-request :class:`~repro.serve.RankingService`
and the batched :class:`~repro.serve.QueryEngine` — answer with the
same frozen dataclasses, defined here so neither layer depends on the
other.  Equality is structural, which is what lets the tests state the
core guarantee directly: a sharded, batched execution produces results
``==`` to the unsharded, one-at-a-time path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

__all__ = [
    "QueryResult",
    "RankedPaper",
    "MethodComparison",
    "PaperDetails",
]


@dataclass(frozen=True)
class RankedPaper:
    """One row of a query result."""

    rank: int
    paper_id: str
    year: float
    score: float


@dataclass(frozen=True)
class QueryResult:
    """One page of a ranking query.

    Attributes
    ----------
    method:
        Method label the ranking is by.
    version:
        Index version the result was computed against.
    k, offset:
        The requested page (``offset`` papers skipped, then ``k`` rows).
    total:
        Papers matching the filter — for pagination UIs.
    year_range:
        The inclusive ``(lo, hi)`` filter, or ``None``.
    entries:
        The rows, ranks numbered within the filtered population.
    """

    method: str
    version: int
    k: int
    offset: int
    total: int
    year_range: tuple[float, float] | None
    entries: tuple[RankedPaper, ...]

    @property
    def paper_ids(self) -> tuple[str, ...]:
        """Just the ids, in rank order."""
        return tuple(entry.paper_id for entry in self.entries)


@dataclass(frozen=True)
class MethodComparison:
    """Top-k lists of several methods over the same filter, side by side.

    Attributes
    ----------
    results:
        Per-method :class:`QueryResult`, in request order.
    overlap:
        Pairwise ``|top-k(a) ∩ top-k(b)|`` for every unordered method
        pair — the agreement measure behind the paper's Table 1-style
        analyses.
    """

    results: Mapping[str, QueryResult]
    overlap: Mapping[tuple[str, str], int]


@dataclass(frozen=True)
class PaperDetails:
    """Scores and ranks of one paper under every indexed method."""

    paper_id: str
    year: float
    scores: Mapping[str, float]
    ranks: Mapping[str, int]
