"""A small LRU result cache for the ranking service.

Query results are cheap to recompute on toy networks but not at corpus
scale, where a handful of popular queries (front page, per-year top
lists) dominate traffic.  The cache is deliberately dependency-free: an
ordered dict with move-to-front on hit, bounded size, and counters that
the service surfaces for observability.

Keys include the score-index *version*, so a delta update never serves
stale rankings: entries written against an older version simply stop
being requested and age out (the service additionally clears the cache
on update to release the memory immediately).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable

from repro.errors import ConfigurationError

__all__ = ["LRUCache", "CacheStats"]

_MISSING = object()


@dataclass(frozen=True)
class CacheStats:
    """Counters of one :class:`LRUCache` since creation (or last reset).

    Attributes
    ----------
    hits, misses:
        Lookup outcomes.
    evictions:
        Entries dropped because the cache was full.
    invalidations:
        :meth:`LRUCache.clear` calls — how often a version bump (or an
        explicit flush) dropped the whole cache.  Distinct from
        evictions: an eviction is capacity pressure, an invalidation
        is staleness.
    size, maxsize:
        Current and maximum entry counts.

    All counters are plain integers bumped inline (no locks): the
    gateway's ``/v1/metrics`` endpoint and the bench reports read them
    concurrently with lookups, and an occasionally-stale snapshot is
    fine where a lock on the query hot path would not be.
    """

    hits: int
    misses: int
    evictions: int
    invalidations: int
    size: int
    maxsize: int

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict[str, int | float]:
        """JSON-ready counters (for ``/v1/metrics`` and bench payloads).

        Values are the six integer counters plus the float
        ``hit_rate`` — ``int | float``, not ``float``: consumers that
        branch on exact equality (bench baselines diffing counter
        values) must not be told these are floats.
        """
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "size": self.size,
            "maxsize": self.maxsize,
            "hit_rate": self.hit_rate,
        }


class LRUCache:
    """Bounded mapping with least-recently-used eviction.

    >>> cache = LRUCache(maxsize=2)
    >>> cache.put("a", 1); cache.put("b", 2); cache.put("c", 3)
    >>> cache.get("a") is None   # evicted, capacity 2
    True
    >>> cache.get("c")
    3
    """

    def __init__(self, maxsize: int = 128) -> None:
        if maxsize < 1:
            raise ConfigurationError(
                f"cache maxsize must be >= 1, got {maxsize}"
            )
        self._maxsize = int(maxsize)
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Return the cached value, refreshing its recency; count the miss."""
        value = self._entries.get(key, _MISSING)
        if value is _MISSING:
            self._misses += 1
            return default
        self._hits += 1
        self._entries.move_to_end(key)
        return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert (or refresh) an entry, evicting the oldest when full."""
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        if len(self._entries) > self._maxsize:
            self._entries.popitem(last=False)
            self._evictions += 1

    def clear(self) -> None:
        """Drop every entry; counts one invalidation (counters survive)."""
        self._entries.clear()
        self._invalidations += 1

    def stats(self) -> CacheStats:
        """A snapshot of the hit/miss/eviction/invalidation counters."""
        return CacheStats(
            hits=self._hits,
            misses=self._misses,
            evictions=self._evictions,
            invalidations=self._invalidations,
            size=len(self._entries),
            maxsize=self._maxsize,
        )
