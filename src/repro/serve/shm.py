"""Shared-memory score store: one index, many serving processes.

The single-process gateway already gets lock-free consistency from the
:class:`~repro.serve.StoreSnapshot` atomic-swap contract: readers pin a
snapshot object, the updater swaps one attribute, and the old snapshot
dies when its last reader drops.  This module extends exactly that
contract across process boundaries so ``repro serve-http --workers N``
can pre-fork N gateway workers that all answer from the *same* score
vectors without N copies of the index:

* :func:`export_snapshot` packs a materialised ``StoreSnapshot`` —
  per-shard score vectors, publication years, global indices, paper
  ids — into one ``multiprocessing.shared_memory`` segment: a JSON
  header describing array offsets, then 64-byte-aligned blobs.
* :func:`attach_snapshot` maps the segment back into a fully loaded
  ``StoreSnapshot`` whose numeric columns are **zero-copy** numpy
  views over the shared pages (``np.asarray`` inside ``Shard`` is a
  no-op for matching dtypes, so not even shard construction copies).
* :class:`GenerationBoard` is the cross-process swap: a tiny shared
  segment holding the current generation number plus a refcounted
  slot table, mutated under one fork-inherited lock.  A publisher
  writes the new segment *first*, then flips the board; readers that
  pinned the old generation finish their batches on it, and the old
  segment is unlinked by whoever drops the **last** reference — the
  multi-process analogue of "old snapshot dies with its last reader".
* :class:`SharedStorePublisher` (updater side, exactly one process)
  and :class:`SharedStoreReader` (worker side) wrap the protocol.
  The reader duck-types ``ShardedScoreIndex`` — ``snapshot()`` /
  ``version`` / ``n_shards`` — so a stock
  :class:`~repro.serve.batch.QueryEngine` serves from shared memory
  unchanged.

Lifecycle notes that keep ``/dev/shm`` clean: every segment is
unregistered from the stdlib resource tracker at creation/attach time
(the tracker would otherwise unlink segments still mapped by sibling
processes — bpo-38119) and ownership moves to this protocol: the last
reader of a retired generation unlinks it, and
:meth:`GenerationBoard.destroy` (the supervisor's shutdown path)
unlinks everything that remains.  A reader that re-attaches a newer
generation keeps its old mapping object parked until every numpy view
into it has died — ``SharedMemory.close`` refuses (``BufferError``)
while views are live, which is exactly the guard we want — and retries
the unmap on the next generation swap.
"""

from __future__ import annotations

import json
import os
import secrets
import struct
from multiprocessing import shared_memory
from multiprocessing.synchronize import Lock as ProcessLock
from typing import Any, Iterator, Mapping

import numpy as np

from repro.errors import SharedStoreError
from repro.serve.shard import Shard, StoreSnapshot

__all__ = [
    "SHM_FORMAT_VERSION",
    "GenerationBoard",
    "SharedStorePublisher",
    "SharedStoreReader",
    "attach_snapshot",
    "board_name",
    "export_snapshot",
    "new_session",
    "segment_name",
]

#: Bump when the segment layout changes; attach refuses mismatches.
SHM_FORMAT_VERSION = 1

_MAGIC = b"RPRSHM01"
_ALIGN = 64
_HEAD = 16  # magic + uint64 header length

# Board slot states.
_FREE, _LIVE, _RETIRED = 0, 1, 2
_BOARD_MAGIC = 0x5250_5242_4F52_4431  # "RPRBORD1"
_SLOTS = 16
_SLOT_BASE = 3  # [magic, current_generation, n_slots] then slot triples


def new_session() -> str:
    """A collision-resistant token naming one serving session's segments."""
    return f"{os.getpid()}x{secrets.token_hex(4)}"


def board_name(session: str) -> str:
    """The shared-memory name of a session's generation board."""
    return f"repro_shm_{session}_board"


def segment_name(session: str, generation: int) -> str:
    """The shared-memory name of one published generation."""
    return f"repro_shm_{session}_g{int(generation)}"


# ----------------------------------------------------------------------
# Tracker-safe creation / attachment
# ----------------------------------------------------------------------
def _untrack(shm: shared_memory.SharedMemory) -> None:
    """Take ownership of cleanup away from the stdlib resource tracker.

    The tracker unlinks every registered segment when the *first*
    registering process tree exits — fatal when sibling workers still
    map it (bpo-38119).  This protocol unlinks explicitly instead: the
    last reader of a retired generation, or the supervisor's
    ``destroy``.
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker internals vary
        pass


def _create(name: str, size: int) -> shared_memory.SharedMemory:
    try:
        shm = shared_memory.SharedMemory(name=name, create=True, size=size)
    except FileExistsError as exc:
        raise SharedStoreError(
            f"shared-memory segment {name!r} already exists; "
            "is another serving session using this name?"
        ) from exc
    _untrack(shm)
    return shm


def _attach(name: str) -> shared_memory.SharedMemory:
    try:
        try:
            # Python >= 3.13 can skip tracker registration outright.
            shm = shared_memory.SharedMemory(name=name, track=False)
            return shm
        except TypeError:
            shm = shared_memory.SharedMemory(name=name)
    except FileNotFoundError as exc:
        raise SharedStoreError(
            f"shared-memory segment {name!r} does not exist "
            "(publisher gone, or generation already unlinked)"
        ) from exc
    _untrack(shm)
    return shm


def _abandon(segment: shared_memory.SharedMemory) -> None:
    """Leak a mapping on purpose at final teardown.

    Called only when views are still exported at ``close()`` time:
    unmapping under them would be unsafe, and leaving the object for
    ``__del__`` prints "Exception ignored: BufferError" at interpreter
    shutdown.  Dropping the handles lets process exit reclaim the
    mapping (and the fd) silently — the segment itself is unlinked by
    the generation protocol regardless.
    """
    segment._buf = None
    segment._mmap = None


def _unlink(name: str) -> None:
    """Unlink a segment by name; missing segments are not an error.

    Goes straight to ``shm_unlink`` rather than through
    ``SharedMemory.unlink`` — the stdlib path would also *unregister*
    the name with the resource tracker, which we already did at
    create/attach time, and a double unregister makes the tracker
    daemon print spurious ``KeyError`` tracebacks.
    """
    posix = getattr(shared_memory, "_posixshmem", None)
    try:
        if posix is not None:
            posix.shm_unlink("/" + name)
        else:  # pragma: no cover - non-POSIX fallback
            segment = shared_memory.SharedMemory(name=name)
            segment.unlink()
            segment.close()
    except FileNotFoundError:
        pass


# ----------------------------------------------------------------------
# Segment packing
# ----------------------------------------------------------------------
def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def _encode_ids(paper_ids: tuple[str, ...]) -> np.ndarray:
    """Paper ids as one fixed-width bytes column (UTF-8)."""
    if not paper_ids:
        return np.empty(0, dtype="S1")
    encoded = np.array([pid.encode("utf-8") for pid in paper_ids])
    if encoded.dtype.itemsize == 0:  # all-empty ids -> illegal S0
        encoded = encoded.astype("S1")
    return encoded


def export_snapshot(
    name: str, snapshot: StoreSnapshot
) -> shared_memory.SharedMemory:
    """Pack a materialised snapshot into one new shared segment.

    Returns the created (and fully written) ``SharedMemory``; the
    caller owns the mapping and usually closes it right away — the
    segment itself lives until unlinked by the generation protocol.
    """
    shards_meta: list[dict[str, Any]] = []
    blobs: list[tuple[int, np.ndarray]] = []
    offset = 0

    def place(array: np.ndarray) -> dict[str, Any]:
        nonlocal offset
        array = np.ascontiguousarray(array)
        spec = {
            "offset": offset,
            "dtype": array.dtype.str,
            "count": int(array.shape[0]),
        }
        blobs.append((offset, array))
        offset = _aligned(offset + array.nbytes)
        return spec

    for shard_id in range(snapshot.n_shards):
        shard = snapshot.shard(shard_id)
        shards_meta.append(
            {
                "n_papers": shard.n_papers,
                "global_indices": place(shard.global_indices),
                "times": place(shard.times),
                "paper_ids": place(_encode_ids(shard.paper_ids)),
                "scores": {
                    label: place(vector)
                    for label, vector in sorted(shard.scores.items())
                },
            }
        )

    boundaries = snapshot._boundaries  # same-package: no public need yet
    header = json.dumps(
        {
            "format": SHM_FORMAT_VERSION,
            "version": snapshot.version,
            "labels": list(snapshot.labels),
            "n_papers": snapshot.n_papers,
            "n_shards": snapshot.n_shards,
            "partitioner": snapshot.partitioner,
            "boundaries": (
                None if boundaries is None
                else [float(b) for b in boundaries]
            ),
            "shards": shards_meta,
        },
        separators=(",", ":"),
    ).encode("utf-8")

    payload_base = _aligned(_HEAD + len(header))
    shm = _create(name, max(1, payload_base + max(1, offset)))
    try:
        shm.buf[:8] = _MAGIC
        struct.pack_into("<Q", shm.buf, 8, len(header))
        shm.buf[_HEAD:_HEAD + len(header)] = header
        for start, array in blobs:
            if array.nbytes == 0:
                continue
            view = np.frombuffer(
                shm.buf,
                dtype=array.dtype,
                count=array.shape[0],
                offset=payload_base + start,
            )
            view[:] = array
            del view  # release the buffer export before returning
    except BaseException:
        shm.close()
        _unlink(name)
        raise
    return shm


def _view(
    shm: shared_memory.SharedMemory, base: int, spec: Mapping[str, Any]
) -> np.ndarray:
    return np.frombuffer(
        shm.buf,
        dtype=np.dtype(spec["dtype"]),
        count=int(spec["count"]),
        offset=base + int(spec["offset"]),
    )


def attach_snapshot(
    name: str,
) -> tuple[shared_memory.SharedMemory, StoreSnapshot]:
    """Map a published segment back into a fully loaded snapshot.

    Numeric columns are zero-copy views over the shared pages; paper
    ids are decoded once per attach (they become Python strings inside
    ``Shard`` anyway).  Keep the returned mapping referenced for as
    long as any view into the snapshot may be alive.
    """
    shm = _attach(name)
    try:
        if bytes(shm.buf[:8]) != _MAGIC:
            raise SharedStoreError(
                f"segment {name!r} is not a repro score store "
                "(bad magic)"
            )
        (header_len,) = struct.unpack_from("<Q", shm.buf, 8)
        header = json.loads(bytes(shm.buf[_HEAD:_HEAD + header_len]))
        if header["format"] != SHM_FORMAT_VERSION:
            raise SharedStoreError(
                f"segment {name!r} has format {header['format']}, "
                f"this build reads {SHM_FORMAT_VERSION}"
            )
        payload_base = _aligned(_HEAD + header_len)
        shards: dict[int, Shard] = {}
        for shard_id, meta in enumerate(header["shards"]):
            raw_ids = _view(shm, payload_base, meta["paper_ids"])
            shards[shard_id] = Shard(
                shard_id,
                _view(shm, payload_base, meta["global_indices"]),
                [b.decode("utf-8") for b in raw_ids.tolist()],
                _view(shm, payload_base, meta["times"]),
                {
                    label: _view(shm, payload_base, spec)
                    for label, spec in meta["scores"].items()
                },
            )
        boundaries = (
            None
            if header["boundaries"] is None
            else np.asarray(header["boundaries"], dtype=np.float64)
        )
        snapshot = StoreSnapshot(
            version=header["version"],
            labels=tuple(header["labels"]),
            n_papers=header["n_papers"],
            n_shards=header["n_shards"],
            partitioner=header["partitioner"],
            boundaries=boundaries,
            shards=shards,
            shard_paths=None,
        )
    except BaseException:
        shm.close()
        raise
    return shm, snapshot


# ----------------------------------------------------------------------
# The generation board
# ----------------------------------------------------------------------
class GenerationBoard:
    """Cross-process current-generation pointer + reader refcounts.

    A fixed table of ``(generation, readers, state)`` slots plus the
    current generation number, in one small shared segment, mutated
    under a single fork-inherited lock.  ``publish`` retires every
    older live generation (unlinking the ones nobody reads any more),
    ``acquire``/``release`` pin and unpin generations for readers, and
    whoever drops the last reference to a retired generation unlinks
    its segment.  The unlocked :attr:`current` peek is one aligned
    8-byte read — the fast path readers poll between batches.
    """

    def __init__(
        self,
        session: str,
        lock: ProcessLock,
        shm: shared_memory.SharedMemory,
    ) -> None:
        self.session = session
        self._lock = lock
        self._shm = shm
        self._cells: np.ndarray | None = np.frombuffer(
            shm.buf, dtype=np.int64, count=_SLOT_BASE + 3 * _SLOTS
        )
        if self._cells[0] != _BOARD_MAGIC:
            cells = self._cells
            self._cells = None
            del cells
            shm.close()
            raise SharedStoreError(
                f"segment {board_name(session)!r} is not a generation "
                "board (bad magic)"
            )

    @classmethod
    def create(cls, session: str, lock: ProcessLock) -> "GenerationBoard":
        size = (_SLOT_BASE + 3 * _SLOTS) * 8
        shm = _create(board_name(session), size)
        cells = np.frombuffer(shm.buf, dtype=np.int64, count=_SLOT_BASE + 3 * _SLOTS)
        cells[:] = 0
        cells[1] = -1  # no generation published yet
        cells[2] = _SLOTS
        for slot in range(_SLOTS):
            cells[_SLOT_BASE + 3 * slot] = -1
        cells[0] = _BOARD_MAGIC
        del cells
        return cls(session, lock, shm)

    @classmethod
    def attach(cls, session: str, lock: ProcessLock) -> "GenerationBoard":
        return cls(session, lock, _attach(board_name(session)))

    # -- unlocked fast path --------------------------------------------
    @property
    def current(self) -> int:
        """The latest published generation (-1 before the first)."""
        cells = self._cells
        if cells is None:
            raise SharedStoreError("generation board is closed")
        return int(cells[1])

    # -- slot helpers (caller holds the lock) --------------------------
    def _slot_of(self, generation: int) -> int | None:
        cells = self._cells
        for slot in range(_SLOTS):
            base = _SLOT_BASE + 3 * slot
            if cells[base] == generation and cells[base + 2] != _FREE:
                return base
        return None

    def _drop_slot(self, base: int) -> None:
        cells = self._cells
        generation = int(cells[base])
        cells[base] = -1
        cells[base + 1] = 0
        cells[base + 2] = _FREE
        _unlink(segment_name(self.session, generation))

    # -- protocol ------------------------------------------------------
    def publish(self, generation: int) -> None:
        """Flip the current pointer; retire older live generations.

        The caller must have fully written the generation's segment
        *before* publishing — readers may attach the instant this
        returns.
        """
        cells = self._cells
        if cells is None:
            raise SharedStoreError("generation board is closed")
        with self._lock:
            for slot in range(_SLOTS):
                base = _SLOT_BASE + 3 * slot
                if cells[base + 2] == _LIVE and cells[base] != generation:
                    if cells[base + 1] == 0:
                        self._drop_slot(base)
                    else:
                        cells[base + 2] = _RETIRED
            free = next(
                (
                    _SLOT_BASE + 3 * slot
                    for slot in range(_SLOTS)
                    if cells[_SLOT_BASE + 3 * slot + 2] == _FREE
                ),
                None,
            )
            if free is None:
                raise SharedStoreError(
                    f"generation board full: {_SLOTS} generations are "
                    "still pinned by readers"
                )
            cells[free] = generation
            cells[free + 1] = 0
            cells[free + 2] = _LIVE
            cells[1] = generation

    def acquire(self) -> int:
        """Pin the current generation for reading; returns its number."""
        cells = self._cells
        if cells is None:
            raise SharedStoreError("generation board is closed")
        with self._lock:
            current = int(cells[1])
            if current < 0:
                raise SharedStoreError(
                    "no generation published yet on board "
                    f"{board_name(self.session)!r}"
                )
            base = self._slot_of(current)
            assert base is not None, "current generation has no slot"
            cells[base + 1] += 1
            return current

    def release(self, generation: int) -> None:
        """Unpin; the last reader of a retired generation unlinks it."""
        cells = self._cells
        if cells is None:
            return
        with self._lock:
            base = self._slot_of(generation)
            if base is None:  # already destroyed (shutdown race)
                return
            cells[base + 1] = max(0, int(cells[base + 1]) - 1)
            if cells[base + 2] == _RETIRED and cells[base + 1] == 0:
                self._drop_slot(base)

    def generations(self) -> dict[int, dict[str, int]]:
        """A locked view of the slot table (diagnostics and tests)."""
        cells = self._cells
        if cells is None:
            return {}
        with self._lock:
            table = {}
            for slot in range(_SLOTS):
                base = _SLOT_BASE + 3 * slot
                if cells[base + 2] != _FREE:
                    table[int(cells[base])] = {
                        "readers": int(cells[base + 1]),
                        "retired": int(cells[base + 2] == _RETIRED),
                    }
            return table

    def close(self) -> None:
        """Drop this process's mapping (the board itself lives on)."""
        if self._cells is None:
            return
        self._cells = None
        self._shm.close()

    def destroy(self) -> None:
        """Owner shutdown: unlink every remaining segment + the board."""
        if self._cells is not None:
            with self._lock:
                for slot in range(_SLOTS):
                    base = _SLOT_BASE + 3 * slot
                    if self._cells[base + 2] != _FREE:
                        self._drop_slot(base)
                self._cells[1] = -1
        self.close()
        _unlink(board_name(self.session))


# ----------------------------------------------------------------------
# Publisher / reader
# ----------------------------------------------------------------------
class SharedStorePublisher:
    """The single-process updater side of the generation protocol.

    Owns the board and the generation counter; ``publish`` packs a
    snapshot into a fresh segment, flips the board, and lets the
    refcount protocol reap superseded generations.
    """

    def __init__(
        self, session: str | None = None, *, lock: ProcessLock | None = None
    ) -> None:
        import multiprocessing

        self.session = session or new_session()
        self.lock = (
            lock
            if lock is not None
            else multiprocessing.get_context("fork").Lock()
        )
        self.board = GenerationBoard.create(self.session, self.lock)
        self._next_generation = 0
        self.published = 0

    def publish(self, snapshot: StoreSnapshot) -> int:
        """Publish one generation; returns its number."""
        generation = self._next_generation
        shm = export_snapshot(
            segment_name(self.session, generation), snapshot
        )
        shm.close()  # this process never reads it; the segment remains
        self.board.publish(generation)
        self._next_generation = generation + 1
        self.published += 1
        return generation

    def close(self) -> None:
        """Tear the session down: unlink every segment and the board."""
        self.board.destroy()

    def __enter__(self) -> "SharedStorePublisher":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


class SharedStoreReader:
    """A worker's view of the shared store; duck-types the shard store.

    Exposes exactly the surface :class:`~repro.serve.batch.QueryEngine`
    (and the gateway's health endpoint) consume — ``snapshot()``,
    ``version``, ``n_shards``, ``n_papers``, ``labels`` — so a worker
    process serves from shared memory with the stock engine.
    ``snapshot()`` peeks the board's current generation (one unlocked
    8-byte read); on a change it pins the new generation, releases the
    old one, and parks the old mapping until every numpy view into it
    has died (``BufferError`` from ``close`` means "still in use" —
    retried on later swaps).
    """

    def __init__(self, session: str, lock: ProcessLock) -> None:
        self._board = GenerationBoard.attach(session, lock)
        self._generation: int | None = None
        self._segment: shared_memory.SharedMemory | None = None
        self._snapshot: StoreSnapshot | None = None
        self._parked: list[shared_memory.SharedMemory] = []
        self._refresh()

    # -- ShardedScoreIndex surface -------------------------------------
    def snapshot(self) -> StoreSnapshot:
        """The current generation's snapshot (pin happens on change)."""
        if self._board.current != self._generation:
            self._refresh()
        assert self._snapshot is not None
        return self._snapshot

    @property
    def version(self) -> int:
        return self.snapshot().version

    @property
    def n_shards(self) -> int:
        return self.snapshot().n_shards

    @property
    def n_papers(self) -> int:
        return self.snapshot().n_papers

    @property
    def labels(self) -> tuple[str, ...]:
        return self.snapshot().labels

    @property
    def partitioner(self) -> str:
        return self.snapshot().partitioner

    @property
    def generation(self) -> int | None:
        """The pinned generation number (diagnostics and tests)."""
        return self._generation

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SharedStoreReader(session={self._board.session!r}, "
            f"generation={self._generation})"
        )

    # -- internals -----------------------------------------------------
    def _refresh(self) -> None:
        generation = self._board.acquire()
        if generation == self._generation:
            # Raced with our own peek; drop the double pin.
            self._board.release(generation)
            return
        segment, snapshot = attach_snapshot(
            segment_name(self._board.session, generation)
        )
        old_generation, old_segment = self._generation, self._segment
        self._generation = generation
        self._segment = segment
        self._snapshot = snapshot
        if old_generation is not None:
            self._board.release(old_generation)
            if old_segment is not None:
                self._parked.append(old_segment)
        self._prune()

    def _prune(self) -> None:
        still_exported = []
        for segment in self._parked:
            try:
                segment.close()
            except BufferError:
                still_exported.append(segment)
        self._parked = still_exported

    def close(self) -> None:
        """Release the pinned generation and this process's mappings."""
        if self._generation is not None:
            self._board.release(self._generation)
            if self._segment is not None:
                self._parked.append(self._segment)
            self._generation = None
            self._segment = None
            self._snapshot = None
        self._prune()
        for segment in self._parked:  # views still live: leak quietly
            _abandon(segment)
        self._parked = []
        self._board.close()

    def __enter__(self) -> "SharedStoreReader":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def iter_repro_segments() -> Iterator[str]:
    """Names of this host's live ``repro_shm_*`` segments (``/dev/shm``).

    The chaos harness and the worker tests use this to prove clean
    shutdown: after a drained stop, no session segments remain.
    """
    root = "/dev/shm"
    try:
        entries = os.listdir(root)
    except OSError:  # pragma: no cover - non-Linux fallback
        return
    for entry in sorted(entries):
        if entry.startswith("repro_shm_"):
            yield entry
