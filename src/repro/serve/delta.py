"""Deltas — batches of new papers and citations — and their application.

A :class:`NetworkDelta` is the serving layer's unit of ingest: the
papers and citation edges that arrived since the index's snapshot was
built (in a deployment, one harvesting cycle of the bibliographic
sources).  :class:`DeltaUpdater` applies a delta to a
:class:`~repro.serve.ScoreIndex`:

1. extend the snapshot through the graph layer
   (:meth:`NetworkBuilder.extending`), preserving existing paper
   indices;
2. re-solve every indexed method, **warm-starting** from the previous
   solution wherever the method supports it (paper Theorem 1 makes the
   fixed point start-independent, so warm starts change iteration
   counts, never results);
3. bump the index version, which invalidates downstream result caches.

For small deltas the warm start lands close to the new fixed point and
the re-solve converges in a fraction of the cold iteration count — the
property ``benchmarks/bench_serve_incremental.py`` measures.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

from repro.errors import ConfigurationError, DataFormatError
from repro.graph.builder import MissingRefPolicy, NetworkBuilder
from repro.graph.citation_network import CitationNetwork
from repro.obs.logging import get_logger
from repro.obs.registry import REGISTRY
from repro.obs.trace import span
from repro.serve.score_index import MethodEntry, ScoreIndex

if TYPE_CHECKING:  # pragma: no cover - import for annotations only
    from repro.serve.shard import ShardedScoreIndex

__all__ = ["NetworkDelta", "DeltaUpdater", "UpdateReport", "delta_between"]

_LOG = get_logger("serve.delta")

_APPLY_SECONDS = REGISTRY.histogram(
    "repro_update_apply_seconds",
    "Wall-clock seconds per applied delta (extend + re-solve + sync).",
)
_PAPERS_TOTAL = REGISTRY.counter(
    "repro_update_papers_total",
    "New papers applied through delta updates.",
)
_CITATIONS_TOTAL = REGISTRY.counter(
    "repro_update_citations_total",
    "New citation edges applied through delta updates.",
)
_TOUCHED_SHARDS = REGISTRY.gauge(
    "repro_update_last_touched_shards",
    "Shards that gained papers in the most recent delta.",
)


@dataclass(frozen=True)
class NetworkDelta:
    """New papers and citations to append to a snapshot.

    Attributes
    ----------
    papers:
        ``(paper_id, publication_time)`` pairs for the new papers, in
        the order they should be appended.
    citations:
        ``(citing_id, cited_id)`` pairs.  Citing papers must be new
        (reference lists of published papers are fixed); cited papers
        may be new or already in the snapshot.
    """

    papers: tuple[tuple[str, float], ...]
    citations: tuple[tuple[str, str], ...]

    @property
    def n_papers(self) -> int:
        """Number of new papers in the delta."""
        return len(self.papers)

    @property
    def n_citations(self) -> int:
        """Number of new citation edges in the delta."""
        return len(self.citations)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"NetworkDelta(n_papers={self.n_papers}, "
            f"n_citations={self.n_citations})"
        )

    @classmethod
    def from_mapping(cls, payload: Mapping) -> "NetworkDelta":
        """Build a delta from the JSON-dict layout of :meth:`to_json`."""
        try:
            papers = tuple(
                (str(p["id"]), float(p["time"])) for p in payload["papers"]
            )
            citations = tuple(
                (str(a), str(b)) for a, b in payload.get("citations", [])
            )
        except (KeyError, TypeError, ValueError) as error:
            raise DataFormatError(f"malformed delta payload: {error}") from None
        return cls(papers=papers, citations=citations)

    @classmethod
    def from_json_file(cls, path: str) -> "NetworkDelta":
        """Load a delta from a JSON file.

        Expected layout::

            {"papers": [{"id": "p1", "time": 2020.5}, ...],
             "citations": [["p1", "p0"], ...]}
        """
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except OSError as error:
            raise DataFormatError(f"cannot read delta file: {error}") from None
        except json.JSONDecodeError as error:
            raise DataFormatError(
                f"{path}: invalid JSON ({error})"
            ) from None
        return cls.from_mapping(payload)

    def to_json(self) -> str:
        """Serialise to the JSON layout :meth:`from_json_file` reads."""
        return json.dumps(
            {
                "papers": [
                    {"id": pid, "time": t} for pid, t in self.papers
                ],
                "citations": [list(pair) for pair in self.citations],
            }
        )


def delta_between(
    base: CitationNetwork, full: CitationNetwork
) -> NetworkDelta:
    """The delta that grows ``base`` into ``full``.

    ``full`` must contain every paper of ``base``; the delta consists of
    the remaining papers (in ``full``'s index order) and all of
    ``full``'s edges whose citing paper is one of them.  Used by tests
    and benchmarks to replay the arrival of the newest slice of a corpus
    on top of an older snapshot.
    """
    new_indices = [
        i for i, pid in enumerate(full.paper_ids) if pid not in base
    ]
    if len(new_indices) + base.n_papers != full.n_papers:
        raise ConfigurationError(
            "base contains papers that are absent from the full network"
        )
    new_set = set(new_indices)
    papers = tuple(
        (full.id_of(i), float(full.publication_times[i])) for i in new_indices
    )
    citations = tuple(
        (full.id_of(int(c)), full.id_of(int(d)))
        for c, d in zip(full.citing, full.cited)
        if int(c) in new_set
    )
    if base.n_citations + len(citations) != full.n_citations:
        # Edges we cannot express as a delta: full has citations from
        # papers already in base (retroactive references), or base has
        # edges full lacks.  Applying the delta would silently produce a
        # network different from ``full``.
        raise ConfigurationError(
            "base is not an induced prefix of full: "
            f"{base.n_citations} base + {len(citations)} delta citations "
            f"!= {full.n_citations} in full"
        )
    return NetworkDelta(papers=papers, citations=citations)


@dataclass(frozen=True)
class UpdateReport:
    """What one :meth:`DeltaUpdater.apply` call did.

    Attributes
    ----------
    version:
        Index version after the update.
    n_new_papers, n_new_citations:
        Size of the applied delta (citations counted after reference
        resolution, i.e. excluding skipped out-of-collection targets).
    n_papers:
        Total papers in the refreshed snapshot.
    entries:
        The refreshed per-method entries (iteration counts of the
        warm-started solves included).
    elapsed_seconds:
        Wall-clock time of extend + re-solve.
    touched_shards:
        Shard ids that gained papers, when the updater routes to a
        :class:`~repro.serve.ShardedScoreIndex` (empty otherwise).
    """

    version: int
    n_new_papers: int
    n_new_citations: int
    n_papers: int
    entries: Mapping[str, MethodEntry]
    elapsed_seconds: float
    touched_shards: tuple[int, ...] = ()


class DeltaUpdater:
    """Applies :class:`NetworkDelta` batches to a :class:`ScoreIndex`.

    Parameters
    ----------
    index:
        The index to update in place.
    missing_references:
        Policy for citations whose cited id is in neither the snapshot
        nor the delta: ``"skip"`` (default) drops them, ``"error"``
        raises — mirroring :class:`~repro.graph.NetworkBuilder`.
    warm:
        Warm-start re-solves from previous solutions (default).  Cold
        mode exists for benchmarking the savings, not for serving.
    sharded:
        An attached :class:`~repro.serve.ShardedScoreIndex` over the
        same index.  When given, every applied delta is routed through
        :meth:`~repro.serve.ShardedScoreIndex.sync` and the report
        records which shards gained papers.
    """

    def __init__(
        self,
        index: ScoreIndex,
        *,
        missing_references: MissingRefPolicy = "skip",
        warm: bool = True,
        sharded: ShardedScoreIndex | None = None,
    ) -> None:
        self._index = index
        self._policy: MissingRefPolicy = missing_references
        self._warm = bool(warm)
        self._sharded = sharded

    @property
    def index(self) -> ScoreIndex:
        """The score index this updater mutates in place."""
        return self._index

    def extend_network(self, delta: NetworkDelta) -> CitationNetwork:
        """The snapshot grown by ``delta`` (without re-solving anything)."""
        if delta.n_papers == 0 and delta.n_citations == 0:
            raise ConfigurationError("empty delta: nothing to apply")
        builder = NetworkBuilder.extending(
            self._index.network, missing_references=self._policy
        )
        references: dict[str, list[str]] = {pid: [] for pid, _ in delta.papers}
        for citing_id, cited_id in delta.citations:
            if citing_id not in references:
                raise ConfigurationError(
                    f"citation from {citing_id!r}, which is not a paper of "
                    "this delta; published papers cannot gain references"
                )
            references[citing_id].append(cited_id)
        for pid, pub_time in delta.papers:
            builder.add_paper(pid, pub_time, references=references[pid])
        return builder.build()

    def apply(self, delta: NetworkDelta) -> UpdateReport:
        """Extend the snapshot, re-solve all methods, bump the version.

        With an attached shard store, the new papers are then routed to
        their shards (:meth:`ShardedScoreIndex.sync`) so the serving
        layer never reads stale slices.
        """
        started = time.perf_counter()
        before = self._index.network
        with span(
            "delta.apply",
            papers=delta.n_papers,
            citations=delta.n_citations,
        ) as sp:
            with span("delta.extend"):
                extended = self.extend_network(delta)
            with span("delta.refresh", warm=self._warm):
                entries = self._index.refresh(extended, warm=self._warm)
            touched: tuple[int, ...] = ()
            if self._sharded is not None:
                with span("delta.sync"):
                    touched = self._sharded.sync()
            if sp is not None:
                sp.set(
                    version=self._index.version,
                    touched_shards=list(touched),
                )
        elapsed = time.perf_counter() - started
        report = UpdateReport(
            version=self._index.version,
            n_new_papers=extended.n_papers - before.n_papers,
            n_new_citations=extended.n_citations - before.n_citations,
            n_papers=extended.n_papers,
            entries=entries,
            elapsed_seconds=elapsed,
            touched_shards=touched,
        )
        _APPLY_SECONDS.observe(elapsed)
        _PAPERS_TOTAL.inc(report.n_new_papers)
        _CITATIONS_TOTAL.inc(report.n_new_citations)
        _TOUCHED_SHARDS.set(len(touched))
        _LOG.info(
            "delta applied",
            extra={
                "version": report.version,
                "new_papers": report.n_new_papers,
                "new_citations": report.n_new_citations,
                "n_papers": report.n_papers,
                "touched_shards": len(touched),
                "ms": round(elapsed * 1e3, 3),
            },
        )
        return report
