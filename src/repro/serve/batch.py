"""The batched query engine over a sharded score store.

An academic search engine does not receive one query at a time — it
receives floods of heterogeneous requests: front-page top-k lists,
year-filtered pages, method comparisons, per-paper score lookups.
:class:`QueryEngine` accepts *batches* of such queries
(:class:`TopKQuery` / :class:`PaperQuery` / :class:`CompareQuery`),
plans the work they share, executes it per shard — concurrently across
shards when ``jobs > 1`` — and k-way merges per-shard candidates into
global results (a vectorised merge: each shard contributes its best
``offset + k`` rows, one ``lexsort`` on the ranking comparator
re-ranks the pooled candidates).

The planning step is where batching pays: every distinct
``(method, year-span)`` ranking needed anywhere in the batch is
computed **once per shard** at the deepest requested depth, no matter
how many pages, comparisons, or lookups ask for it.  The merge then
assembles each query's result in request order, so results are
deterministic under any worker scheduling and *bit-identical* to
issuing the same queries one at a time against an unsharded
:class:`~repro.serve.RankingService` — the acceptance property the
shard-count {1, 2, 7} tests pin down.

``repro query --batch FILE`` drives this engine from the command line;
:func:`queries_from_file` documents the JSON request format.
"""

from __future__ import annotations

import contextvars
import json
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence, Union

import numpy as np

from repro.errors import (
    ConfigurationError,
    DataFormatError,
    GraphError,
    ReproError,
)
from repro.obs.registry import REGISTRY
from repro.obs.trace import span as trace_span
from repro.serve.results import (
    MethodComparison,
    PaperDetails,
    QueryResult,
    RankedPaper,
)
from repro.serve.shard import Shard, ShardedScoreIndex, StoreSnapshot

__all__ = [
    "QueryEngine",
    "TopKQuery",
    "PaperQuery",
    "CompareQuery",
    "Query",
    "execute_with_attribution",
    "pairwise_overlap",
    "queries_from_file",
    "queries_from_payload",
    "result_payload",
]

_BATCHES_TOTAL = REGISTRY.counter(
    "repro_engine_batches_total",
    "Query batches executed by the engine.",
)
_QUERIES_TOTAL = REGISTRY.counter(
    "repro_engine_queries_total",
    "Queries answered by the engine (across all batches).",
)
_SHARD_SECONDS = REGISTRY.histogram(
    "repro_engine_shard_candidate_seconds",
    "Candidate-phase wall-clock seconds, by shard.",
    ["shard"],
)


def execute_with_attribution(
    execute_versioned: "Callable[[Sequence[Query]], tuple[int, tuple[Any, ...]]]",
    queries: Sequence[Query],
) -> tuple[int, list[Any]]:
    """Run a batch; attribute a failure to its query, not the batch.

    Batch planning is all-or-nothing — one unknown method or paper id
    raises before any query is answered.  Both front ends that accept
    *mixed* batches (the gateway's request coalescer and
    ``repro query --batch``) want per-query attribution instead: on a
    :class:`~repro.errors.ReproError`, the batch is retried one query
    at a time, and each outcome slot holds either the result or the
    typed error that query raised.  The shared helper keeps the two
    surfaces' semantics identical by construction.

    ``execute_versioned`` is any ``queries -> (version, results)``
    callable (:meth:`QueryEngine.execute_versioned`,
    :meth:`~repro.serve.RankingService.execute_batch`).  Returns
    ``(version, outcomes)``; the version is ``-1`` when every query
    failed (no serving state was consulted).
    """
    try:
        version, results = execute_versioned(queries)
        return version, list(results)
    except ReproError:
        outcomes: list[Any] = []
        version = -1
        for query in queries:
            try:
                version, (result,) = execute_versioned([query])
                outcomes.append(result)
            except ReproError as error:
                outcomes.append(error)
        return version, outcomes


@dataclass(frozen=True)
class TopKQuery:
    """One page of the ranking by ``method`` (optionally year-filtered)."""

    method: str = "AR"
    k: int = 10
    offset: int = 0
    year_range: tuple[float, float] | None = None


@dataclass(frozen=True)
class PaperQuery:
    """Scores and global ranks of one paper under every method."""

    paper_id: str


@dataclass(frozen=True)
class CompareQuery:
    """The same result page of several methods, with pairwise overlap."""

    methods: tuple[str, ...]
    k: int = 10
    offset: int = 0
    year_range: tuple[float, float] | None = None


Query = Union[TopKQuery, PaperQuery, CompareQuery]


def pairwise_overlap(
    results: Mapping[str, QueryResult]
) -> dict[tuple[str, str], int]:
    """``|page(a) ∩ page(b)|`` for every unordered method pair.

    Shared between :meth:`QueryEngine.compare` and
    :meth:`RankingService.compare` so both layers agree on the
    paper's Table-1-style agreement measure.
    """
    labels = list(results)
    overlap: dict[tuple[str, str], int] = {}
    for i, a in enumerate(labels):
        for b in labels[i + 1:]:
            shared = set(results[a].paper_ids) & set(results[b].paper_ids)
            overlap[(a, b)] = len(shared)
    return overlap


def _normalise_span(
    year_range: tuple[float, float] | None
) -> tuple[float, float] | None:
    if year_range is None:
        return None
    lo, hi = float(year_range[0]), float(year_range[1])
    if lo > hi:
        raise ConfigurationError(f"empty year range: {lo} > {hi}")
    return (lo, hi)


@dataclass(frozen=True)
class _RankingNeed:
    """One distinct per-shard computation the batch plan requires."""

    label: str
    span: tuple[float, float] | None


class QueryEngine:
    """Plan, fan out, and merge batches of ranking queries.

    Parameters
    ----------
    sharded:
        The shard store to serve from (attached or loaded from disk).
    jobs:
        Worker threads for the per-shard phase.  ``1`` (default) runs
        shards serially in the calling thread; ``0``/``None`` uses all
        cores (:func:`repro.parallel.resolve_jobs` semantics).  Threads
        — not processes — because the per-shard work is NumPy sorting
        and searching, which releases the GIL, and shards live in
        shared memory.

    Examples
    --------
    >>> from repro.serve import ScoreIndex, ShardedScoreIndex
    >>> from repro.synth import toy_network
    >>> index = ScoreIndex(toy_network())
    >>> index.add_method("CC")
    >>> engine = QueryEngine(ShardedScoreIndex.from_index(index, n_shards=2))
    >>> engine.top_k("CC", k=2).paper_ids
    ('A', 'C')
    """

    def __init__(
        self,
        sharded: ShardedScoreIndex,
        *,
        jobs: int | None = 1,
    ) -> None:
        # Deferred import: the experiment engine sits above the eval
        # layer, and pulling it in at module scope would drag the whole
        # evaluation stack into every `import repro` (the root package
        # keeps repro.parallel deliberately lazy).
        from repro.parallel.engine import resolve_jobs

        self._sharded = sharded
        self.jobs = resolve_jobs(jobs)

    @property
    def sharded(self) -> ShardedScoreIndex:
        """The shard store queries are answered from."""
        return self._sharded

    @property
    def version(self) -> int:
        """Serving-state version stamped onto every result."""
        return self._sharded.version

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"QueryEngine(n_shards={self._sharded.n_shards}, "
            f"jobs={self.jobs})"
        )

    # ------------------------------------------------------------------
    # The batch path
    # ------------------------------------------------------------------
    def execute(self, queries: Sequence[Query]) -> tuple[Any, ...]:
        """Run a batch; results come back in request order.

        Each element is the exact object the corresponding single-query
        method returns: :class:`QueryResult` for :class:`TopKQuery`,
        :class:`PaperDetails` for :class:`PaperQuery`,
        :class:`MethodComparison` for :class:`CompareQuery`.
        """
        return self.execute_versioned(queries)[1]

    def execute_versioned(
        self, queries: Sequence[Query]
    ) -> tuple[int, tuple[Any, ...]]:
        """Run a batch against ONE generation; return its version too.

        The whole batch — planning, shard phase, merges — executes
        against a single :class:`~repro.serve.StoreSnapshot` captured
        up front, so a concurrent :meth:`ShardedScoreIndex.sync` can
        never tear a batch across two index versions: every result is
        bit-identical to a single-version execution at the returned
        version.  The gateway stamps its HTTP responses with exactly
        this number.
        """
        with trace_span(
            "engine.execute", queries=len(queries)
        ) as sp:
            snap = self._sharded.snapshot()
            plan = self._plan(queries, snap)
            shard_results = self._run_shard_phase(plan, snap)
            # Merged global orders are shared across the batch: twelve
            # pages over the same (method, span) trigger one merge.
            merge_cache: dict[_RankingNeed, tuple[Any, ...]] = {}
            results = tuple(
                self._merge_query(query, snap, shard_results, merge_cache)
                for query in queries
            )
            if sp is not None:
                sp.set(version=snap.version, shards=snap.n_shards)
        _BATCHES_TOTAL.inc()
        _QUERIES_TOTAL.inc(len(queries))
        return snap.version, results

    # -- planning -------------------------------------------------------
    def _plan(
        self, queries: Sequence[Query], snap: StoreSnapshot
    ) -> dict[_RankingNeed, int]:
        """Validate the batch; collect distinct needs at max depth."""
        labels = set(snap.labels)
        needs: dict[_RankingNeed, int] = {}

        def require(label: str, span, depth: int) -> None:
            if label not in labels:
                known = ", ".join(snap.labels) or "<none>"
                raise ConfigurationError(
                    f"method {label!r} is not in the index "
                    f"(indexed: {known})"
                )
            need = _RankingNeed(label=label, span=span)
            needs[need] = max(needs.get(need, 0), depth)

        for query in queries:
            if isinstance(query, TopKQuery):
                self._check_page(query.k, query.offset)
                span = _normalise_span(query.year_range)
                require(
                    query.method.upper(), span, query.offset + query.k
                )
            elif isinstance(query, CompareQuery):
                self._check_page(query.k, query.offset)
                span = _normalise_span(query.year_range)
                upper = [m.upper() for m in query.methods]
                if len(set(upper)) != len(upper):
                    raise ConfigurationError(
                        "duplicate method labels in comparison"
                    )
                for label in upper:
                    require(label, span, query.offset + query.k)
            elif isinstance(query, PaperQuery):
                # Rank counting needs the unfiltered order of every
                # method in every shard (depth 0: order only).
                for label in snap.labels:
                    require(label, None, 0)
            else:
                raise ConfigurationError(
                    f"unsupported query type: {type(query).__name__}"
                )
        return needs

    @staticmethod
    def _check_page(k: int, offset: int) -> None:
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        if offset < 0:
            raise ConfigurationError(f"offset must be >= 0, got {offset}")

    # -- shard phase ----------------------------------------------------
    def _run_shard_phase(
        self, plan: dict[_RankingNeed, int], snap: StoreSnapshot
    ) -> dict[int, dict[_RankingNeed, tuple[int, Any]]]:
        """Compute every planned need on every shard.

        Returns ``shard_id -> need -> (total_matching, candidate local
        positions)``.  Shards execute concurrently when both the engine
        and the store have parallelism to exploit; results are keyed,
        never ordered, so scheduling cannot influence the merge.

        Year-partitioned stores additionally *prune*: a need whose span
        cannot intersect a shard's time bounds is answered ``(0, [])``
        without touching the shard — and a shard none of whose needs
        survive is never even loaded from disk.
        """
        empty = np.zeros(0, dtype=np.int64)

        def run_shard(shard_id: int) -> dict[_RankingNeed, tuple[int, Any]]:
            started = time.perf_counter()
            with trace_span("engine.shard", shard=shard_id) as sp:
                bounds = snap.shard_time_bounds(shard_id)
                results: dict[_RankingNeed, tuple[int, Any]] = {}
                live: list[tuple[_RankingNeed, int]] = []
                for need, depth in plan.items():
                    if (
                        bounds is not None
                        and need.span is not None
                        and (
                            need.span[1] < bounds[0]
                            or need.span[0] > bounds[1]
                        )
                    ):
                        results[need] = (0, empty)
                    else:
                        live.append((need, depth))
                if live:
                    shard = snap.shard(shard_id)
                    for need, depth in live:
                        results[need] = shard.candidates(
                            need.label, need.span, depth
                        )
                if sp is not None:
                    sp.set(needs=len(live), pruned=len(plan) - len(live))
            _SHARD_SECONDS.observe(
                time.perf_counter() - started, shard=str(shard_id)
            )
            return results

        shard_ids = range(snap.n_shards)
        if self.jobs == 1 or snap.n_shards == 1:
            return {sid: run_shard(sid) for sid in shard_ids}
        workers = min(self.jobs, snap.n_shards)
        # Pool threads do not inherit the caller's context, and one
        # Context object cannot be entered concurrently — so every
        # shard task gets its own copy, made here in the caller's
        # thread, which keeps the per-shard spans (and the request id
        # on any log line below) attached to the calling request.
        contexts = [contextvars.copy_context() for _ in shard_ids]
        with ThreadPoolExecutor(max_workers=workers) as pool:
            produced = pool.map(
                lambda pair: pair[0].run(run_shard, pair[1]),
                zip(contexts, shard_ids),
            )
            return dict(zip(shard_ids, produced))

    # -- merge phase ----------------------------------------------------
    def _merge_query(
        self,
        query: Query,
        snap: StoreSnapshot,
        shard_results: dict[int, dict[_RankingNeed, tuple[int, Any]]],
        merge_cache: dict[_RankingNeed, tuple[Any, ...]],
    ) -> Any:
        if isinstance(query, TopKQuery):
            return self._merge_top_k(
                query.method.upper(),
                query.k,
                query.offset,
                _normalise_span(query.year_range),
                snap,
                shard_results,
                merge_cache,
            )
        if isinstance(query, CompareQuery):
            span = _normalise_span(query.year_range)
            results = {
                label.upper(): self._merge_top_k(
                    label.upper(), query.k, query.offset, span,
                    snap, shard_results, merge_cache,
                )
                for label in query.methods
            }
            return MethodComparison(
                results=results, overlap=pairwise_overlap(results)
            )
        assert isinstance(query, PaperQuery)
        return self._lookup_paper(query.paper_id, snap)

    def _merged(
        self,
        need: _RankingNeed,
        snap: StoreSnapshot,
        shard_results: dict[int, dict[_RankingNeed, tuple[int, Any]]],
        merge_cache: dict[_RankingNeed, tuple[Any, ...]],
    ) -> tuple[int, Any, Any, Any]:
        """The globally merged candidate list for one planned need.

        Returns ``(total_matching, owner_shard_ids, local_positions,
        scores)``, globally ranked up to the need's planned depth.
        Computed once per batch per need — every page over the same
        (method, span) slices the same arrays.

        Every shard contributed at most ``depth`` rows (no merge can
        take more rows from one shard than it returns overall), so the
        pool holds at most ``n_shards * depth`` entries; one NumPy
        ``lexsort`` on ``(-score, global_index)`` — the exact
        comparator of the global ranking — re-ranks it, which keeps
        equal scores in the order the unsharded ranking lists them.
        """
        got = merge_cache.get(need)
        if got is not None:
            return got
        total = 0
        parts: list[tuple[Shard, Any]] = []
        for shard_id in range(snap.n_shards):
            shard_total, positions = shard_results[shard_id][need]
            total += shard_total
            if positions.size:
                parts.append((snap.shard(shard_id), positions))
        if not parts:
            owners = np.zeros(0, dtype=np.int64)
            locals_ = np.zeros(0, dtype=np.int64)
            scores = np.zeros(0, dtype=np.float64)
        elif len(parts) == 1:
            shard, positions = parts[0]
            owners = np.full(positions.size, shard.shard_id, dtype=np.int64)
            locals_ = positions
            scores = shard.scores[need.label][positions]
        else:
            scores = np.concatenate(
                [shard.scores[need.label][pos] for shard, pos in parts]
            )
            gidx = np.concatenate(
                [shard.global_indices[pos] for shard, pos in parts]
            )
            owners = np.concatenate(
                [
                    np.full(pos.size, shard.shard_id, dtype=np.int64)
                    for shard, pos in parts
                ]
            )
            locals_ = np.concatenate([pos for _, pos in parts])
            winners = np.lexsort((gidx, -scores))
            owners = owners[winners]
            locals_ = locals_[winners]
            scores = scores[winners]
        merged = (total, owners, locals_, scores)
        merge_cache[need] = merged
        return merged

    def _merge_top_k(
        self,
        label: str,
        k: int,
        offset: int,
        span: tuple[float, float] | None,
        snap: StoreSnapshot,
        shard_results: dict[int, dict[_RankingNeed, tuple[int, Any]]],
        merge_cache: dict[_RankingNeed, tuple[Any, ...]],
    ) -> QueryResult:
        """One result page, sliced from the batch-shared merged order."""
        total, owners, locals_, scores = self._merged(
            _RankingNeed(label=label, span=span), snap, shard_results,
            merge_cache,
        )
        take = offset + k
        rows = tuple(
            RankedPaper(
                rank=offset + position + 1,
                paper_id=snap.shard(int(owners[entry])).paper_ids[
                    int(locals_[entry])
                ],
                year=float(
                    snap.shard(int(owners[entry])).times[
                        int(locals_[entry])
                    ]
                ),
                score=float(scores[entry]),
            )
            for position, entry in enumerate(range(offset, min(take, owners.size)))
        )
        return QueryResult(
            method=label,
            version=snap.version,
            k=k,
            offset=offset,
            total=total,
            year_range=span,
            entries=rows,
        )

    def _lookup_paper(
        self, paper_id: str, snap: StoreSnapshot
    ) -> PaperDetails:
        home: Shard | None = None
        local = None
        for shard in snap.iter_shards():
            local = shard.location_of(paper_id)
            if local is not None:
                home = shard
                break
        if home is None or local is None:
            raise GraphError(f"unknown paper id: {str(paper_id)!r}")
        global_index = int(home.global_indices[local])
        scores: dict[str, float] = {}
        ranks: dict[str, int] = {}
        for label in snap.labels:
            value = float(home.scores[label][local])
            before = sum(
                shard.count_ranked_before(label, value, global_index)
                for shard in snap.iter_shards()
            )
            scores[label] = value
            ranks[label] = before + 1
        return PaperDetails(
            paper_id=home.paper_ids[local],
            year=float(home.times[local]),
            scores=scores,
            ranks=ranks,
        )

    # ------------------------------------------------------------------
    # Single-query conveniences (each is a one-element batch)
    # ------------------------------------------------------------------
    def top_k(
        self,
        method: str = "AR",
        *,
        k: int = 10,
        offset: int = 0,
        year_range: tuple[float, float] | None = None,
    ) -> QueryResult:
        """One page of the ranking by ``method`` (engine-side)."""
        return self.execute(
            [
                TopKQuery(
                    method=method, k=k, offset=offset,
                    year_range=year_range,
                )
            ]
        )[0]

    def compare(
        self,
        methods: Sequence[str],
        *,
        k: int = 10,
        offset: int = 0,
        year_range: tuple[float, float] | None = None,
    ) -> MethodComparison:
        """The same page for several methods, with pairwise overlap."""
        return self.execute(
            [
                CompareQuery(
                    methods=tuple(methods), k=k, offset=offset,
                    year_range=year_range,
                )
            ]
        )[0]

    def paper(self, paper_id: str) -> PaperDetails:
        """Scores and global ranks of one paper across all methods."""
        return self.execute([PaperQuery(paper_id=str(paper_id))])[0]

    # ------------------------------------------------------------------
    # Compatibility with the unsharded service internals
    # ------------------------------------------------------------------
    def warm_methods(self) -> tuple[str, ...]:
        """Labels whose unfiltered order is memoised in *every* loaded
        shard — i.e. rankings served since the last version change."""
        snap = self._sharded.snapshot()
        loaded = snap.loaded_shards()
        warm = []
        for label in snap.labels:
            if loaded and all(
                (label, None) in shard._orders for shard in loaded
            ):
                warm.append(label)
        return tuple(warm)


# ----------------------------------------------------------------------
# Batch-file format (the CLI's ``repro query --batch FILE``)
# ----------------------------------------------------------------------
def queries_from_payload(payload: Any) -> tuple[Query, ...]:
    """Parse the JSON batch layout into query objects.

    Expected layout — a list of request objects discriminated by
    ``type``::

        [{"type": "top_k", "method": "AR", "k": 10, "offset": 0,
          "year_min": 1995.0, "year_max": 2000.0},
         {"type": "paper", "id": "P0000335"},
         {"type": "compare", "methods": ["AR", "CC"], "k": 20}]

    ``year_min``/``year_max`` are optional and combine into the
    inclusive ``year_range`` filter (either side may be omitted).
    """
    if not isinstance(payload, list):
        raise DataFormatError(
            "batch file must contain a JSON list of query objects, "
            f"got {type(payload).__name__}"
        )
    queries: list[Query] = []
    for position, raw in enumerate(payload):
        if not isinstance(raw, dict) or "type" not in raw:
            raise DataFormatError(
                f"batch entry {position}: expected an object with a "
                "'type' field"
            )
        kind = str(raw["type"])
        try:
            if kind == "top_k":
                queries.append(
                    TopKQuery(
                        method=str(raw.get("method", "AR")),
                        k=int(raw.get("k", 10)),
                        offset=int(raw.get("offset", 0)),
                        year_range=_span_from_mapping(raw),
                    )
                )
            elif kind == "paper":
                queries.append(PaperQuery(paper_id=str(raw["id"])))
            elif kind == "compare":
                methods = raw["methods"]
                if not isinstance(methods, (list, tuple)):
                    # A bare string would iterate into single letters.
                    raise TypeError(
                        "'methods' must be a list of labels, got "
                        f"{type(methods).__name__}"
                    )
                queries.append(
                    CompareQuery(
                        methods=tuple(str(m) for m in methods),
                        k=int(raw.get("k", 10)),
                        offset=int(raw.get("offset", 0)),
                        year_range=_span_from_mapping(raw),
                    )
                )
            else:
                raise DataFormatError(
                    f"batch entry {position}: unknown query type "
                    f"{kind!r} (expected top_k, paper, or compare)"
                )
        except (KeyError, TypeError, ValueError) as error:
            raise DataFormatError(
                f"batch entry {position}: malformed {kind!r} query "
                f"({error!r})"
            ) from None
    return tuple(queries)


def _span_from_mapping(raw: Mapping[str, Any]) -> tuple[float, float] | None:
    lo = raw.get("year_min")
    hi = raw.get("year_max")
    if lo is None and hi is None:
        return None
    return (
        float(lo) if lo is not None else float("-inf"),
        float(hi) if hi is not None else float("inf"),
    )


def queries_from_file(path: str) -> tuple[Query, ...]:
    """Load a query batch from a JSON file (see
    :func:`queries_from_payload` for the layout)."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except OSError as error:
        raise DataFormatError(
            f"cannot read batch file: {error}"
        ) from None
    except json.JSONDecodeError as error:
        raise DataFormatError(f"{path}: invalid JSON ({error})") from None
    return queries_from_payload(payload)


def result_payload(result: Any) -> dict[str, Any]:
    """One query result as a JSON-serialisable dictionary.

    The CLI prints a list of these for ``repro query --batch``; the
    shapes mirror the result dataclasses field-for-field.
    """
    if isinstance(result, QueryResult):
        return {
            "type": "top_k",
            "method": result.method,
            "version": result.version,
            "k": result.k,
            "offset": result.offset,
            "total": result.total,
            "year_range": (
                list(result.year_range)
                if result.year_range is not None
                else None
            ),
            "entries": [
                {
                    "rank": row.rank,
                    "paper_id": row.paper_id,
                    "year": row.year,
                    "score": row.score,
                }
                for row in result.entries
            ],
        }
    if isinstance(result, PaperDetails):
        return {
            "type": "paper",
            "paper_id": result.paper_id,
            "year": result.year,
            "scores": dict(result.scores),
            "ranks": dict(result.ranks),
        }
    if isinstance(result, MethodComparison):
        return {
            "type": "compare",
            "results": {
                label: result_payload(page)
                for label, page in result.results.items()
            },
            "overlap": {
                f"{a}&{b}": shared
                for (a, b), shared in result.overlap.items()
            },
        }
    raise ConfigurationError(
        f"cannot serialise result of type {type(result).__name__}"
    )
