"""The query front end: top-k rankings over a live score index.

:class:`RankingService` is the piece a web tier would sit on.  It
answers read queries — paginated top-k lists, year-range filtered
rankings, multi-method comparisons, single-paper lookups — and funnels
write traffic (deltas) through a :class:`~repro.serve.DeltaUpdater`.

Since the sharding refactor the service no longer reads score vectors
directly: it owns a :class:`~repro.serve.ShardedScoreIndex` (a
single-shard store by default — the unsharded service is just the
``shards=1`` special case) and delegates every read to a
:class:`~repro.serve.QueryEngine`, the same engine that serves batched
multi-shard traffic.  What the service adds on top of the engine:

* an LRU result cache whose keys include the serving-state version, so
  a delta update implicitly invalidates every cached page;
* write plumbing — :meth:`update` applies a delta, routes the growth to
  the affected shards, and clears the cache;
* freshness tracking — an out-of-band :meth:`ScoreIndex.refresh` is
  detected by version mismatch and the shard store re-synced before the
  next read.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro._typing import IntVector
from repro.errors import ConfigurationError
from repro.graph.builder import MissingRefPolicy
from repro.ranking import ranking_from_scores
from repro.serve.batch import QueryEngine, pairwise_overlap
from repro.serve.cache import CacheStats, LRUCache
from repro.serve.delta import DeltaUpdater, NetworkDelta, UpdateReport
from repro.serve.results import (
    MethodComparison,
    PaperDetails,
    QueryResult,
    RankedPaper,
)
from repro.serve.score_index import ScoreIndex
from repro.serve.shard import ShardedScoreIndex

__all__ = [
    "RankingService",
    "QueryResult",
    "RankedPaper",
    "MethodComparison",
    "PaperDetails",
]


class RankingService:
    """Serve ranking queries from a score index.

    Parameters
    ----------
    index:
        The (live) score index; the service updates it in place.
    cache_size:
        Capacity of the LRU result cache.
    missing_references:
        Reference-resolution policy for incoming deltas.
    warm:
        Warm-start re-solves on update (default; cold mode exists for
        benchmarking).
    shards:
        Partition count of the underlying shard store.  ``1`` (the
        default) serves exactly like the historical unsharded service;
        any other count produces bit-identical results while spreading
        per-shard work.
    partitioner:
        ``"hash"`` (default) or ``"year"`` — see
        :class:`~repro.serve.ShardedScoreIndex`.
    jobs:
        Worker threads for the per-shard phase of each query
        (``1`` = serial, ``0`` = all cores).

    Examples
    --------
    >>> from repro.serve import ScoreIndex
    >>> from repro.synth import toy_network
    >>> index = ScoreIndex(toy_network())
    >>> index.add_method("CC")
    >>> service = RankingService(index)
    >>> service.top_k("CC", k=2).paper_ids
    ('A', 'B')
    """

    def __init__(
        self,
        index: ScoreIndex,
        *,
        cache_size: int = 128,
        missing_references: MissingRefPolicy = "skip",
        warm: bool = True,
        shards: int = 1,
        partitioner: str = "hash",
        jobs: int | None = 1,
    ) -> None:
        self._index = index
        self._sharded = ShardedScoreIndex.from_index(
            index, n_shards=shards, partitioner=partitioner
        )
        self._engine = QueryEngine(self._sharded, jobs=jobs)
        self._updater = DeltaUpdater(
            index,
            missing_references=missing_references,
            warm=warm,
            sharded=self._sharded,
        )
        self._cache = LRUCache(maxsize=cache_size)

    @property
    def index(self) -> ScoreIndex:
        """The score index queries are answered from."""
        return self._index

    @property
    def engine(self) -> QueryEngine:
        """The batched query engine reads are delegated to."""
        return self._engine

    @property
    def sharded(self) -> ShardedScoreIndex:
        """The shard store backing the engine."""
        return self._sharded

    @property
    def version(self) -> int:
        """Current index version (bumped by :meth:`update`)."""
        return self._index.version

    def cache_stats(self) -> CacheStats:
        """Hit/miss/eviction counters of the result cache."""
        return self._cache.stats()

    @property
    def _rankings(self) -> dict[str, tuple[int, IntVector]]:
        """Back-compat view of the memoised rankings.

        Historically the service memoised one full permutation per
        method as ``label -> (version, order)``; the permutations now
        live per shard inside the engine.  This property reassembles
        that mapping (for the labels whose shard orders are warm) so
        diagnostics and tests keep one stable surface.
        """
        version = self._sharded.version
        snapshot: dict[str, tuple[int, IntVector]] = {}
        for label in self._engine.warm_methods():
            full = np.empty(self._sharded.n_papers, dtype=np.float64)
            for shard in self._sharded.iter_shards():
                full[shard.global_indices] = shard.scores[label]
            snapshot[label] = (version, ranking_from_scores(full))
        return snapshot

    # ------------------------------------------------------------------
    # Freshness
    # ------------------------------------------------------------------
    def _fresh_version(self) -> int:
        """Sync the shard store if the index moved underneath us.

        `ScoreIndex.refresh` and `ScoreIndex.add_method` can be called
        directly (warm-start benchmarks register methods late, and a
        stream replay's :meth:`~repro.stream.StreamIngestor.finalize`
        re-solves out of band); a version or label mismatch is the
        signal that the shard slices are stale.  A *version* change
        additionally invalidates the result cache: entries keyed by
        older versions can never be served again, and letting them
        squat in the LRU until capacity evicts them would push out live
        pages — on a long replay, every micro-batch would poison the
        cache a little more.
        """
        if self._sharded.version != self._index.version:
            self._sharded.sync()
            self._cache.clear()
        elif self._sharded.labels != self._index.labels:
            self._sharded.sync()
        return self._sharded.version

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def top_k(
        self,
        method: str = "AR",
        *,
        k: int = 10,
        offset: int = 0,
        year_range: tuple[float, float] | None = None,
    ) -> QueryResult:
        """One page of the ranking by ``method``.

        Parameters
        ----------
        method:
            Indexed method label.
        k:
            Page size (rows returned; fewer when the population runs
            out).
        offset:
            Rows to skip — page ``p`` of size ``k`` is
            ``offset = p * k``.
        year_range:
            Inclusive ``(lo, hi)`` publication-time filter; ranks are
            renumbered within the filtered population.
        """
        label = method.upper()
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        if offset < 0:
            raise ConfigurationError(f"offset must be >= 0, got {offset}")
        span = None
        if year_range is not None:
            lo, hi = float(year_range[0]), float(year_range[1])
            if lo > hi:
                raise ConfigurationError(
                    f"empty year range: {lo} > {hi}"
                )
            span = (lo, hi)

        version = self._fresh_version()
        cache_key = (version, label, k, offset, span)
        cached = self._cache.get(cache_key)
        if cached is not None:
            return cached
        result = self._engine.top_k(
            label, k=k, offset=offset, year_range=span
        )
        self._cache.put(cache_key, result)
        return result

    def compare(
        self,
        methods: Sequence[str],
        *,
        k: int = 10,
        offset: int = 0,
        year_range: tuple[float, float] | None = None,
    ) -> MethodComparison:
        """The same result page of several methods, with overlaps.

        Overlaps count shared papers *within the requested page* of each
        pair of methods.  Pages go through :meth:`top_k`, so repeated
        comparisons ride the result cache.
        """
        labels = [m.upper() for m in methods]
        if len(set(labels)) != len(labels):
            raise ConfigurationError("duplicate method labels in comparison")
        results = {
            label: self.top_k(
                label, k=k, offset=offset, year_range=year_range
            )
            for label in labels
        }
        return MethodComparison(
            results=results, overlap=pairwise_overlap(results)
        )

    def paper(self, paper_id: str) -> PaperDetails:
        """Scores and (unfiltered) ranks of one paper across all methods."""
        self._fresh_version()
        return self._engine.paper(paper_id)

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def update(self, delta: NetworkDelta) -> UpdateReport:
        """Apply a delta: extend, warm re-solve, re-shard, invalidate.

        The cache clear is belt-and-braces with the version-keyed
        cache entries: keys of the old version could never be served
        again anyway, but dropping them releases the memory at the
        moment it becomes dead instead of waiting for LRU eviction.
        """
        report = self._updater.apply(delta)
        self._cache.clear()
        return report
