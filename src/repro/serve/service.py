"""The query front end: top-k rankings over a live score index.

:class:`RankingService` is the piece a web tier would sit on.  It
answers read queries — paginated top-k lists, year-range filtered
rankings, multi-method comparisons, single-paper lookups — and funnels
write traffic (deltas) through a :class:`~repro.serve.DeltaUpdater`.

Since the sharding refactor the service no longer reads score vectors
directly: it owns a :class:`~repro.serve.ShardedScoreIndex` (a
single-shard store by default — the unsharded service is just the
``shards=1`` special case) and delegates every read to a
:class:`~repro.serve.QueryEngine`, the same engine that serves batched
multi-shard traffic.  What the service adds on top of the engine:

* an LRU result cache whose keys include the serving-state version, so
  a delta update implicitly invalidates every cached page;
* write plumbing — :meth:`update` applies a delta, routes the growth to
  the affected shards, and clears the cache;
* freshness tracking — an out-of-band :meth:`ScoreIndex.refresh` is
  detected by version mismatch and the shard store re-synced before the
  next read.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro._typing import IntVector
from repro.errors import ConfigurationError
from repro.graph.builder import MissingRefPolicy
from repro.obs.trace import span as trace_span
from repro.ranking import ranking_from_scores
from repro.serve.batch import (
    CompareQuery,
    PaperQuery,
    Query,
    QueryEngine,
    TopKQuery,
    pairwise_overlap,
)
from repro.serve.cache import CacheStats, LRUCache
from repro.serve.delta import DeltaUpdater, NetworkDelta, UpdateReport
from repro.serve.results import (
    MethodComparison,
    PaperDetails,
    QueryResult,
    RankedPaper,
)
from repro.serve.score_index import ScoreIndex
from repro.serve.shard import ShardedScoreIndex

__all__ = [
    "RankingService",
    "QueryResult",
    "RankedPaper",
    "MethodComparison",
    "PaperDetails",
]


def _normalise_page(
    k: int, offset: int, year_range: tuple[float, float] | None
) -> tuple[float, float] | None:
    """Validate one page request; return the canonical float span."""
    if k < 1:
        raise ConfigurationError(f"k must be >= 1, got {k}")
    if offset < 0:
        raise ConfigurationError(f"offset must be >= 0, got {offset}")
    if year_range is None:
        return None
    lo, hi = float(year_range[0]), float(year_range[1])
    if lo > hi:
        raise ConfigurationError(f"empty year range: {lo} > {hi}")
    return (lo, hi)


class RankingService:
    """Serve ranking queries from a score index.

    Parameters
    ----------
    index:
        The (live) score index; the service updates it in place.
    cache_size:
        Capacity of the LRU result cache.
    missing_references:
        Reference-resolution policy for incoming deltas.
    warm:
        Warm-start re-solves on update (default; cold mode exists for
        benchmarking).
    shards:
        Partition count of the underlying shard store.  ``1`` (the
        default) serves exactly like the historical unsharded service;
        any other count produces bit-identical results while spreading
        per-shard work.
    partitioner:
        ``"hash"`` (default) or ``"year"`` — see
        :class:`~repro.serve.ShardedScoreIndex`.
    jobs:
        Worker threads for the per-shard phase of each query
        (``1`` = serial, ``0`` = all cores).

    Examples
    --------
    >>> from repro.serve import ScoreIndex
    >>> from repro.synth import toy_network
    >>> index = ScoreIndex(toy_network())
    >>> index.add_method("CC")
    >>> service = RankingService(index)
    >>> service.top_k("CC", k=2).paper_ids
    ('A', 'C')
    """

    def __init__(
        self,
        index: ScoreIndex,
        *,
        cache_size: int = 128,
        missing_references: MissingRefPolicy = "skip",
        warm: bool = True,
        shards: int = 1,
        partitioner: str = "hash",
        jobs: int | None = 1,
    ) -> None:
        self._index = index
        self._sharded = ShardedScoreIndex.from_index(
            index, n_shards=shards, partitioner=partitioner
        )
        self._engine = QueryEngine(self._sharded, jobs=jobs)
        self._updater = DeltaUpdater(
            index,
            missing_references=missing_references,
            warm=warm,
            sharded=self._sharded,
        )
        self._cache = LRUCache(maxsize=cache_size)

    @property
    def index(self) -> ScoreIndex:
        """The score index queries are answered from."""
        return self._index

    @property
    def engine(self) -> QueryEngine:
        """The batched query engine reads are delegated to."""
        return self._engine

    @property
    def sharded(self) -> ShardedScoreIndex:
        """The shard store backing the engine."""
        return self._sharded

    @property
    def version(self) -> int:
        """Current index version (bumped by :meth:`update`)."""
        return self._index.version

    def cache_stats(self) -> CacheStats:
        """Hit/miss/eviction counters of the result cache."""
        return self._cache.stats()

    @property
    def _rankings(self) -> dict[str, tuple[int, IntVector]]:
        """Back-compat view of the memoised rankings.

        Historically the service memoised one full permutation per
        method as ``label -> (version, order)``; the permutations now
        live per shard inside the engine.  This property reassembles
        that mapping (for the labels whose shard orders are warm) so
        diagnostics and tests keep one stable surface.
        """
        snap = self._sharded.snapshot()
        rankings: dict[str, tuple[int, IntVector]] = {}
        for label in self._engine.warm_methods():
            full = np.empty(snap.n_papers, dtype=np.float64)
            for shard in snap.iter_shards():
                full[shard.global_indices] = shard.scores[label]
            rankings[label] = (snap.version, ranking_from_scores(full))
        return rankings

    # ------------------------------------------------------------------
    # Freshness
    # ------------------------------------------------------------------
    def _fresh_version(self) -> int:
        """Sync the shard store if the index moved underneath us.

        `ScoreIndex.refresh` and `ScoreIndex.add_method` can be called
        directly (warm-start benchmarks register methods late, and a
        stream replay's :meth:`~repro.stream.StreamIngestor.finalize`
        re-solves out of band); a version or label mismatch is the
        signal that the shard slices are stale.  A *version* change
        additionally invalidates the result cache: entries keyed by
        older versions can never be served again, and letting them
        squat in the LRU until capacity evicts them would push out live
        pages — on a long replay, every micro-batch would poison the
        cache a little more.
        """
        if self._sharded.version != self._index.version:
            self._sharded.sync()
            self._cache.clear()
        elif self._sharded.labels != self._index.labels:
            self._sharded.sync()
        return self._sharded.version

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def top_k(
        self,
        method: str = "AR",
        *,
        k: int = 10,
        offset: int = 0,
        year_range: tuple[float, float] | None = None,
    ) -> QueryResult:
        """One page of the ranking by ``method``.

        Parameters
        ----------
        method:
            Indexed method label.
        k:
            Page size (rows returned; fewer when the population runs
            out).
        offset:
            Rows to skip — page ``p`` of size ``k`` is
            ``offset = p * k``.
        year_range:
            Inclusive ``(lo, hi)`` publication-time filter; ranks are
            renumbered within the filtered population.
        """
        label = method.upper()
        span = _normalise_page(k, offset, year_range)
        version = self._fresh_version()
        cache_key = (version, label, k, offset, span)
        cached = self._cache.get(cache_key)
        if cached is not None:
            return cached
        result = self._engine.top_k(
            label, k=k, offset=offset, year_range=span
        )
        self._cache.put(cache_key, result)
        return result

    def compare(
        self,
        methods: Sequence[str],
        *,
        k: int = 10,
        offset: int = 0,
        year_range: tuple[float, float] | None = None,
    ) -> MethodComparison:
        """The same result page of several methods, with overlaps.

        Overlaps count shared papers *within the requested page* of each
        pair of methods.  Pages go through :meth:`top_k`, so repeated
        comparisons ride the result cache.
        """
        labels = [m.upper() for m in methods]
        if len(set(labels)) != len(labels):
            raise ConfigurationError("duplicate method labels in comparison")
        results = {
            label: self.top_k(
                label, k=k, offset=offset, year_range=year_range
            )
            for label in labels
        }
        return MethodComparison(
            results=results, overlap=pairwise_overlap(results)
        )

    def paper(self, paper_id: str) -> PaperDetails:
        """Scores and (unfiltered) ranks of one paper across all methods."""
        self._fresh_version()
        return self._engine.paper(paper_id)

    # ------------------------------------------------------------------
    # Batched reads through the result cache
    # ------------------------------------------------------------------
    @staticmethod
    def _normalise_query(query: Query) -> Query:
        """Validate one query and canonicalise it for caching."""
        if isinstance(query, TopKQuery):
            span = _normalise_page(query.k, query.offset, query.year_range)
            return TopKQuery(
                method=query.method.upper(), k=query.k,
                offset=query.offset, year_range=span,
            )
        if isinstance(query, CompareQuery):
            span = _normalise_page(query.k, query.offset, query.year_range)
            labels = tuple(m.upper() for m in query.methods)
            if len(set(labels)) != len(labels):
                raise ConfigurationError(
                    "duplicate method labels in comparison"
                )
            return CompareQuery(
                methods=labels, k=query.k, offset=query.offset,
                year_range=span,
            )
        if isinstance(query, PaperQuery):
            return PaperQuery(paper_id=str(query.paper_id))
        raise ConfigurationError(
            f"unsupported query type: {type(query).__name__}"
        )

    @staticmethod
    def _batch_key(version: int, query: Query) -> tuple:
        """Cache key of one normalised query at one version.

        :class:`TopKQuery` keys deliberately match the ones
        :meth:`top_k` writes, so the batched gateway path and the
        single-query path share cache entries.  The other shapes cannot
        collide: a compare key carries a *tuple* of labels where a
        top-k key carries a string, and a paper key has a different
        arity altogether.
        """
        if isinstance(query, TopKQuery):
            return (
                version, query.method, query.k, query.offset,
                query.year_range,
            )
        if isinstance(query, CompareQuery):
            return (
                version, query.methods, query.k, query.offset,
                query.year_range,
            )
        assert isinstance(query, PaperQuery)
        return (version, "paper", query.paper_id)

    def execute_batch(
        self, queries: Sequence[Query]
    ) -> tuple[int, tuple[Any, ...]]:
        """Answer a query batch through the result cache and the engine.

        The read path the gateway's request coalescer drives: every
        query is first looked up in the LRU result cache (under the
        fresh version), the misses are executed as ONE engine batch
        (amortising the shard fan-out), and the computed results are
        cached for the next flood.  Returns ``(version, results)`` in
        request order; each result is exactly the object the
        corresponding single-query method would return — bit-identical
        to :meth:`top_k` / :meth:`compare` / :meth:`paper` calls at the
        same version.
        """
        normalised = [self._normalise_query(query) for query in queries]
        while True:
            version = self._fresh_version()
            keys = [
                self._batch_key(version, query) for query in normalised
            ]
            results: list[Any] = [None] * len(normalised)
            misses: list[int] = []
            with trace_span(
                "service.cache_lookup", queries=len(normalised)
            ) as sp:
                for position, key in enumerate(keys):
                    cached = self._cache.get(key)
                    if cached is None:
                        misses.append(position)
                    else:
                        results[position] = cached
                if sp is not None:
                    sp.set(
                        hits=len(normalised) - len(misses),
                        misses=len(misses),
                    )
            if not misses:
                return version, tuple(results)
            engine_version, computed = self._engine.execute_versioned(
                tuple(normalised[position] for position in misses)
            )
            if engine_version != version:
                # The store moved between the cache lookups and the
                # engine pinning its snapshot (an out-of-band refresh
                # from another thread).  Mixing version-N cache hits
                # with version-N+1 computations — or caching the new
                # results under the old key — would break the method's
                # single-version promise; retry against the new state.
                continue
            for position, value in zip(misses, computed):
                self._cache.put(keys[position], value)
                results[position] = value
            return version, tuple(results)

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def update(self, delta: NetworkDelta) -> UpdateReport:
        """Apply a delta: extend, warm re-solve, re-shard, invalidate.

        The cache clear is belt-and-braces with the version-keyed
        cache entries: keys of the old version could never be served
        again anyway, but dropping them releases the memory at the
        moment it becomes dead instead of waiting for LRU eviction.
        """
        report = self._updater.apply(delta)
        self._cache.clear()
        return report
