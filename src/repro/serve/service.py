"""The query front end: top-k rankings over a live score index.

:class:`RankingService` is the piece a web tier would sit on.  It
answers read queries — paginated top-k lists, year-range filtered
rankings, multi-method comparisons, single-paper lookups — from the
score vectors of a :class:`~repro.serve.ScoreIndex`, and funnels write
traffic (deltas) through a :class:`~repro.serve.DeltaUpdater`.

Two layers keep the read path fast:

* the full ranking permutation of each method is memoised per index
  version (computing it is the only O(n log n) step), and
* assembled query results go through an LRU cache whose keys include
  the index version, so a delta update implicitly invalidates every
  cached page (the cache is also cleared eagerly to free memory).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro._typing import IntVector
from repro.errors import ConfigurationError
from repro.graph.builder import MissingRefPolicy
from repro.ranking import ranking_from_scores
from repro.serve.cache import CacheStats, LRUCache
from repro.serve.delta import DeltaUpdater, NetworkDelta, UpdateReport
from repro.serve.score_index import ScoreIndex

__all__ = [
    "RankingService",
    "QueryResult",
    "RankedPaper",
    "MethodComparison",
    "PaperDetails",
]


@dataclass(frozen=True)
class RankedPaper:
    """One row of a query result."""

    rank: int
    paper_id: str
    year: float
    score: float


@dataclass(frozen=True)
class QueryResult:
    """One page of a ranking query.

    Attributes
    ----------
    method:
        Method label the ranking is by.
    version:
        Index version the result was computed against.
    k, offset:
        The requested page (``offset`` papers skipped, then ``k`` rows).
    total:
        Papers matching the filter — for pagination UIs.
    year_range:
        The inclusive ``(lo, hi)`` filter, or ``None``.
    entries:
        The rows, ranks numbered within the filtered population.
    """

    method: str
    version: int
    k: int
    offset: int
    total: int
    year_range: tuple[float, float] | None
    entries: tuple[RankedPaper, ...]

    @property
    def paper_ids(self) -> tuple[str, ...]:
        """Just the ids, in rank order."""
        return tuple(entry.paper_id for entry in self.entries)


@dataclass(frozen=True)
class MethodComparison:
    """Top-k lists of several methods over the same filter, side by side.

    Attributes
    ----------
    results:
        Per-method :class:`QueryResult`, in request order.
    overlap:
        Pairwise ``|top-k(a) ∩ top-k(b)|`` for every unordered method
        pair — the agreement measure behind the paper's Table 1-style
        analyses.
    """

    results: Mapping[str, QueryResult]
    overlap: Mapping[tuple[str, str], int]


@dataclass(frozen=True)
class PaperDetails:
    """Scores and ranks of one paper under every indexed method."""

    paper_id: str
    year: float
    scores: Mapping[str, float]
    ranks: Mapping[str, int]


class RankingService:
    """Serve ranking queries from a score index.

    Parameters
    ----------
    index:
        The (live) score index; the service updates it in place.
    cache_size:
        Capacity of the LRU result cache.
    missing_references:
        Reference-resolution policy for incoming deltas.
    warm:
        Warm-start re-solves on update (default; cold mode exists for
        benchmarking).

    Examples
    --------
    >>> from repro.serve import ScoreIndex
    >>> from repro.synth import toy_network
    >>> index = ScoreIndex(toy_network())
    >>> index.add_method("CC")
    >>> service = RankingService(index)
    >>> service.top_k("CC", k=2).paper_ids
    ('A', 'B')
    """

    def __init__(
        self,
        index: ScoreIndex,
        *,
        cache_size: int = 128,
        missing_references: MissingRefPolicy = "skip",
        warm: bool = True,
    ) -> None:
        self._index = index
        self._updater = DeltaUpdater(
            index, missing_references=missing_references, warm=warm
        )
        self._cache = LRUCache(maxsize=cache_size)
        # label -> (version, permutation); one entry per method, so
        # version bumps (even via an external ScoreIndex.refresh) can
        # never accumulate stale permutations.
        self._rankings: dict[str, tuple[int, IntVector]] = {}

    @property
    def index(self) -> ScoreIndex:
        """The score index queries are answered from."""
        return self._index

    @property
    def version(self) -> int:
        """Current index version (bumped by :meth:`update`)."""
        return self._index.version

    def cache_stats(self) -> CacheStats:
        """Hit/miss/eviction counters of the result cache."""
        return self._cache.stats()

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def _ranking(self, label: str) -> IntVector:
        """The full ranking permutation for ``label``, memoised while the
        index version it was computed against is still current."""
        version = self._index.version
        memo = self._rankings.get(label)
        if memo is None or memo[0] != version:
            order = ranking_from_scores(self._index.scores(label))
            self._rankings[label] = (version, order)
            return order
        return memo[1]

    def top_k(
        self,
        method: str = "AR",
        *,
        k: int = 10,
        offset: int = 0,
        year_range: tuple[float, float] | None = None,
    ) -> QueryResult:
        """One page of the ranking by ``method``.

        Parameters
        ----------
        method:
            Indexed method label.
        k:
            Page size (rows returned; fewer when the population runs
            out).
        offset:
            Rows to skip — page ``p`` of size ``k`` is
            ``offset = p * k``.
        year_range:
            Inclusive ``(lo, hi)`` publication-time filter; ranks are
            renumbered within the filtered population.
        """
        label = method.upper()
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        if offset < 0:
            raise ConfigurationError(f"offset must be >= 0, got {offset}")
        span = None
        if year_range is not None:
            lo, hi = float(year_range[0]), float(year_range[1])
            if lo > hi:
                raise ConfigurationError(
                    f"empty year range: {lo} > {hi}"
                )
            span = (lo, hi)

        cache_key = (self._index.version, label, k, offset, span)
        cached = self._cache.get(cache_key)
        if cached is not None:
            return cached

        entry = self._index.entry(label)  # validates the label
        network = self._index.network
        order = self._ranking(label)
        if span is not None:
            times = network.publication_times[order]
            order = order[(times >= span[0]) & (times <= span[1])]
        total = int(order.size)
        page = order[offset: offset + k]
        scores = entry.scores
        rows = tuple(
            RankedPaper(
                rank=offset + position + 1,
                paper_id=network.id_of(int(index)),
                year=float(network.publication_times[index]),
                score=float(scores[index]),
            )
            for position, index in enumerate(page)
        )
        result = QueryResult(
            method=label,
            version=self._index.version,
            k=k,
            offset=offset,
            total=total,
            year_range=span,
            entries=rows,
        )
        self._cache.put(cache_key, result)
        return result

    def compare(
        self,
        methods: Sequence[str],
        *,
        k: int = 10,
        offset: int = 0,
        year_range: tuple[float, float] | None = None,
    ) -> MethodComparison:
        """The same result page of several methods, with overlaps.

        Overlaps count shared papers *within the requested page* of each
        pair of methods.
        """
        labels = [m.upper() for m in methods]
        if len(set(labels)) != len(labels):
            raise ConfigurationError("duplicate method labels in comparison")
        results = {
            label: self.top_k(
                label, k=k, offset=offset, year_range=year_range
            )
            for label in labels
        }
        overlap: dict[tuple[str, str], int] = {}
        for i, a in enumerate(labels):
            for b in labels[i + 1:]:
                shared = set(results[a].paper_ids) & set(results[b].paper_ids)
                overlap[(a, b)] = len(shared)
        return MethodComparison(results=results, overlap=overlap)

    def paper(self, paper_id: str) -> PaperDetails:
        """Scores and (unfiltered) ranks of one paper across all methods."""
        network = self._index.network
        index = network.index_of(str(paper_id))
        scores: dict[str, float] = {}
        ranks: dict[str, int] = {}
        for label in self._index.labels:
            vector = self._index.scores(label)
            order = self._ranking(label)
            position = int(np.nonzero(order == index)[0][0])
            scores[label] = float(vector[index])
            ranks[label] = position + 1
        return PaperDetails(
            paper_id=network.id_of(index),
            year=float(network.publication_times[index]),
            scores=scores,
            ranks=ranks,
        )

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def update(self, delta: NetworkDelta) -> UpdateReport:
        """Apply a delta: extend, warm re-solve, invalidate caches."""
        report = self._updater.apply(delta)
        self._cache.clear()
        self._rankings.clear()
        return report
