"""The versioned score index — per-method solutions over one snapshot.

A :class:`ScoreIndex` binds a :class:`~repro.graph.CitationNetwork`
snapshot to the score vectors of any number of registered ranking
methods (addressed by their paper labels: ``"AR"``, ``"PR"``, ...).  It
is the unit of state the serving layer works with:

* :class:`~repro.serve.RankingService` answers queries from it,
* :class:`~repro.serve.DeltaUpdater` refreshes it in place after a
  delta, warm-starting every method that supports it from its previous
  solution,
* :meth:`ScoreIndex.save` / :meth:`ScoreIndex.load` persist it as a
  single ``.npz`` file (network payload + score vectors + metadata), so
  a service restart never recomputes from scratch.

Every refresh bumps :attr:`ScoreIndex.version`; query-result caches key
on the version, which makes invalidation after updates automatic.
"""

from __future__ import annotations

import glob
import json
import os
import time
import zipfile
import zlib
from dataclasses import dataclass
from typing import Any, Mapping

import numpy as np

from repro._typing import FloatVector
from repro.baselines import METHOD_REGISTRY, make_method, warm_startable
from repro.chaos.points import chaos_point
from repro.core.power_iteration import grow_start_vector
from repro.errors import (
    ConfigurationError,
    DataFormatError,
    IndexIntegrityError,
)
from repro.graph.citation_network import CitationNetwork
from repro.io.serialize import network_from_payload, network_payload
from repro.obs.logging import get_logger
from repro.obs.registry import REGISTRY
from repro.obs.trace import span

__all__ = ["ScoreIndex", "MethodEntry", "INDEX_FORMAT_VERSION"]

INDEX_FORMAT_VERSION = 1

_LOG = get_logger("serve.solver")

_SOLVES_TOTAL = REGISTRY.counter(
    "repro_solver_solves_total",
    "Method solves, by method label and convergence outcome.",
    ["method", "converged"],
)
_SOLVE_SECONDS = REGISTRY.histogram(
    "repro_solver_solve_seconds",
    "Wall-clock seconds per method solve.",
    ["method"],
)
_LAST_ITERATIONS = REGISTRY.gauge(
    "repro_solver_last_iterations",
    "Iterations of the most recent solve, by method.",
    ["method"],
)
_LAST_RESIDUAL = REGISTRY.gauge(
    "repro_solver_last_residual",
    "Final L1 residual of the most recent solve, by method.",
    ["method"],
)


@dataclass(frozen=True)
class MethodEntry:
    """One method's solution over the index's current snapshot.

    Attributes
    ----------
    label:
        Registry label (``"AR"``, ``"PR"``, ...).
    params:
        Constructor keyword arguments the method was registered with;
        refreshes re-instantiate the method from these via
        :func:`repro.baselines.make_method`.
    scores:
        The score vector, aligned with the snapshot's paper indices.
    iterations:
        Iterations of the solve that produced :attr:`scores` (0 for
        closed-form/non-iterative methods).
    converged:
        Whether that solve converged (always true for closed forms).
    warm_started:
        Whether the solve was seeded from a previous solution.
    """

    label: str
    params: Mapping[str, Any]
    scores: FloatVector
    iterations: int
    converged: bool
    warm_started: bool


class ScoreIndex:
    """Versioned per-method score vectors over a network snapshot.

    Parameters
    ----------
    network:
        The snapshot to score.
    version:
        Starting version number (0 for a fresh index; :meth:`load`
        restores the persisted value).
    solver_jobs:
        Thread count passed to the fused solver's row-chunked SpMV
        (``repro index --jobs`` / ``repro update --jobs``).  Scores are
        bit-identical for any value.

    Examples
    --------
    >>> from repro.synth import toy_network
    >>> index = ScoreIndex(toy_network())
    >>> index.add_method("CC")
    >>> index.labels
    ('CC',)
    >>> int(index.scores("CC").argmax())   # A, the most cited toy paper
    0
    """

    def __init__(
        self,
        network: CitationNetwork,
        *,
        version: int = 0,
        solver_jobs: int = 1,
    ) -> None:
        if network.n_papers == 0:
            raise ConfigurationError("cannot index an empty network")
        if solver_jobs < 1:
            raise ConfigurationError(
                f"solver_jobs must be >= 1, got {solver_jobs}"
            )
        self._network = network
        self._version = int(version)
        self._entries: dict[str, MethodEntry] = {}
        #: Thread count for the fused solver's row-chunked SpMV; results
        #: are bit-identical for any value (see repro.core.fused).
        self.solver_jobs = int(solver_jobs)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def network(self) -> CitationNetwork:
        """The current snapshot."""
        return self._network

    @property
    def version(self) -> int:
        """Monotonic counter, bumped by every :meth:`refresh`."""
        return self._version

    @property
    def labels(self) -> tuple[str, ...]:
        """Registered method labels, in registration order."""
        return tuple(self._entries)

    def __contains__(self, label: object) -> bool:
        return isinstance(label, str) and label.upper() in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ScoreIndex(version={self._version}, "
            f"methods={list(self._entries)}, "
            f"n_papers={self._network.n_papers})"
        )

    def entry(self, label: str) -> MethodEntry:
        """The full :class:`MethodEntry` for ``label``."""
        key = label.upper()
        try:
            return self._entries[key]
        except KeyError:
            known = ", ".join(self._entries) or "<none>"
            raise ConfigurationError(
                f"method {label!r} is not in the index "
                f"(indexed: {known})"
            ) from None

    def scores(self, label: str) -> FloatVector:
        """The score vector for ``label``, aligned with paper indices."""
        return self.entry(label).scores

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def add_method(self, label: str, **params: Any) -> MethodEntry:
        """Register a method and solve it cold on the current snapshot.

        ``params`` are the method's constructor keyword arguments; they
        are stored so that every later refresh re-instantiates exactly
        the same configuration.
        """
        key = label.upper()
        if key in self._entries:
            raise ConfigurationError(f"method {label!r} is already indexed")
        entry = self._solve_fused(
            {key: (dict(params), None)}, self._network
        )[key]
        self._entries[key] = entry
        return entry

    def refresh(
        self,
        network: CitationNetwork | None = None,
        *,
        warm: bool = True,
        fused: bool = True,
    ) -> dict[str, MethodEntry]:
        """Re-solve every indexed method and bump the version.

        Parameters
        ----------
        network:
            A replacement snapshot (the delta-update path passes the
            extended network).  It must contain at least the papers of
            the current snapshot, *in the same index positions* — the
            contract :meth:`CitationNetwork.extend` guarantees.  ``None``
            re-solves on the unchanged snapshot.
        warm:
            Seed each method that supports it from its previous
            solution, grown to the new size.  ``False`` forces cold
            solves (the benchmark's comparison baseline).
        fused:
            Solve all fusable methods in one stacked pass
            (:func:`repro.core.fused.solve_methods`) instead of one at a
            time.  The scores are bit-identical either way; ``False``
            keeps the serial per-method loop as the benchmark's
            comparison baseline.

        Notes
        -----
        The refresh is atomic: every method is re-solved against the
        new snapshot first, and the index state (network, entries,
        version) is only swapped once all solves succeeded.  A
        :class:`~repro.errors.ConvergenceError` mid-refresh therefore
        leaves the index exactly as it was, still serving the old
        version.
        """
        target = self._network
        if network is not None:
            if network.n_papers < self._network.n_papers:
                raise ConfigurationError(
                    "refresh network has fewer papers than the indexed "
                    f"snapshot ({network.n_papers} < "
                    f"{self._network.n_papers}); the index only grows"
                )
            target = network
        if fused:
            refreshed = self._solve_fused(
                {
                    key: (
                        dict(entry.params),
                        entry.scores if warm else None,
                    )
                    for key, entry in self._entries.items()
                },
                target,
            )
        else:
            refreshed = {
                key: self._solve(
                    key,
                    dict(entry.params),
                    previous=entry.scores if warm else None,
                    network=target,
                )
                for key, entry in self._entries.items()
            }
        chaos_point("index.refresh.swap")
        self._network = target
        self._entries = refreshed
        self._version += 1
        return dict(self._entries)

    def _solve_fused(
        self,
        specs: Mapping[str, tuple[dict[str, Any], FloatVector | None]],
        network: CitationNetwork,
    ) -> dict[str, MethodEntry]:
        """Solve ``{key: (params, previous)}`` in one fused pass.

        The per-method instruments (``repro_solver_solves_total``,
        ``repro_solver_last_*``) fire exactly as the serial path's do;
        ``repro_solver_solve_seconds`` does not — wall-clock is shared
        across the stack, so the fused pass reports its own
        ``repro_fused_pass_seconds`` instead.
        """
        from repro.core.fused import solve_methods

        keys = list(specs)
        methods = []
        warm_flags = []
        for key in keys:
            params, previous = specs[key]
            method = make_method(key, **params)
            is_warm = previous is not None and warm_startable(key)
            if is_warm:
                method.start_vector = grow_start_vector(
                    previous, network.n_papers
                )
            methods.append(method)
            warm_flags.append(is_warm)
        started = time.perf_counter()
        with span(
            "solver.solve_fused", methods=",".join(keys)
        ) as sp:
            solved = solve_methods(
                network, methods, jobs=self.solver_jobs
            )
            if sp is not None:
                sp.set(papers=network.n_papers)
        elapsed = time.perf_counter() - started
        entries: dict[str, MethodEntry] = {}
        for key, is_warm, (scores, info) in zip(keys, warm_flags, solved):
            # Shared arrays are read-only throughout this codebase (see
            # CitationNetwork); the score vector doubles as the next
            # warm start and the ranking basis, so caller mutation must
            # fail loud.
            scores.setflags(write=False)
            iterations = info.iterations if info is not None else 0
            converged = info.converged if info is not None else True
            _SOLVES_TOTAL.inc(
                method=key, converged="true" if converged else "false"
            )
            _LAST_ITERATIONS.set(iterations, method=key)
            if info is not None:
                _LAST_RESIDUAL.set(info.residual, method=key)
            entries[key] = MethodEntry(
                label=key,
                params=specs[key][0],
                scores=scores,
                iterations=iterations,
                converged=converged,
                warm_started=is_warm,
            )
        _LOG.info(
            "solve_fused",
            extra={
                "methods": keys,
                "papers": network.n_papers,
                "iterations": {
                    key: entries[key].iterations for key in keys
                },
                "warm": [key for key, w in zip(keys, warm_flags) if w],
                "ms": round(elapsed * 1e3, 3),
            },
        )
        return entries

    def _solve(
        self,
        key: str,
        params: dict[str, Any],
        *,
        previous: FloatVector | None,
        network: CitationNetwork | None = None,
    ) -> MethodEntry:
        if network is None:
            network = self._network
        method = make_method(key, **params)
        warm = previous is not None and warm_startable(key)
        if warm:
            method.start_vector = grow_start_vector(
                previous, network.n_papers
            )
        started = time.perf_counter()
        with span("solver.solve", method=key, warm=warm) as sp:
            scores = method.scores(network)
            info = method.last_convergence
            if sp is not None and info is not None:
                sp.set(
                    iterations=info.iterations,
                    converged=info.converged,
                )
        elapsed = time.perf_counter() - started
        # Shared arrays are read-only throughout this codebase (see
        # CitationNetwork); the score vector doubles as the next warm
        # start and the ranking basis, so caller mutation must fail loud.
        scores.setflags(write=False)
        iterations = info.iterations if info is not None else 0
        converged = info.converged if info is not None else True
        _SOLVES_TOTAL.inc(
            method=key, converged="true" if converged else "false"
        )
        _SOLVE_SECONDS.observe(elapsed, method=key)
        _LAST_ITERATIONS.set(iterations, method=key)
        if info is not None:
            _LAST_RESIDUAL.set(info.residual, method=key)
        _LOG.info(
            "solve",
            extra={
                "method": key,
                "papers": network.n_papers,
                "iterations": iterations,
                "converged": converged,
                "warm": warm,
                "ms": round(elapsed * 1e3, 3),
            },
        )
        return MethodEntry(
            label=key,
            params=params,
            scores=scores,
            iterations=iterations,
            converged=converged,
            warm_started=warm,
        )

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: str) -> None:
        """Write the index (snapshot + scores + metadata) to ``path``.

        The write is atomic (temp file + rename): ``repro update``
        overwrites the live index in place, and an interrupted write
        must never destroy the only copy of the serving state.
        """
        payload = network_payload(self._network)
        meta = {
            "index_format_version": INDEX_FORMAT_VERSION,
            "version": self._version,
            "methods": [
                {
                    "label": entry.label,
                    "params": dict(entry.params),
                    "iterations": entry.iterations,
                    "converged": entry.converged,
                    "warm_started": entry.warm_started,
                }
                for entry in self._entries.values()
            ],
        }
        payload["index_meta"] = np.asarray([json.dumps(meta)], dtype=np.str_)
        for entry in self._entries.values():
            payload[f"index_scores__{entry.label}"] = entry.scores
        # Temp debris from a *crashed* earlier save (the cleanup below
        # only runs on live exceptions, not on a kill) is swept here,
        # on the next commit attempt — the same recovery moment the
        # checkpoint protocol uses.
        for stale in glob.glob(f"{glob.escape(path)}.tmp-*"):
            os.remove(stale)
        temp_path = f"{path}.tmp-{os.getpid()}"
        try:
            # A file handle keeps savez from appending ".npz" to the
            # temp name and lets us fsync before the rename.
            with open(temp_path, "wb") as handle:
                np.savez_compressed(handle, **payload)
                handle.flush()
                chaos_point("index.save.write")
                os.fsync(handle.fileno())
            chaos_point("index.save.fsync")
            os.replace(temp_path, path)
            chaos_point("index.save.replace")
        except Exception:
            # Deliberately narrower than a finally: an injected crash
            # (BaseException) must leave the same orphaned temp file a
            # real kill would, so the sweep above stays honest.
            if os.path.exists(temp_path):
                os.remove(temp_path)
            raise

    @classmethod
    def load(cls, path: str) -> "ScoreIndex":
        """Read an index previously written by :meth:`save`.

        Raises
        ------
        DataFormatError
            If the file is missing, is a bare network file rather than
            an index, or declares an unsupported index format version.
        IndexIntegrityError
            If the file parses as an index but its pieces disagree:
            metadata fields missing, method labels unknown to the
            registry or duplicated, score vectors missing, undeclared,
            or of the wrong length, version numbers malformed.  (A
            subclass of :class:`DataFormatError`.)
        """
        if not os.path.exists(path):
            raise DataFormatError(f"file not found: {path}")
        chaos_point("index.load")
        try:
            with np.load(path, allow_pickle=False) as archive:
                arrays = {name: archive[name] for name in archive.files}
        except DataFormatError:
            raise
        except (OSError, ValueError, zipfile.BadZipFile, zlib.error) as error:
            # np.load raises zipfile/OS errors on truncated archives
            # and directories, and zlib errors on bit-flipped deflate
            # data; a CLI caller must get a typed one-liner, not a
            # traceback.
            raise DataFormatError(
                f"{path}: not a readable .npz index ({error})"
            ) from None
        if "index_meta" not in arrays:
            raise DataFormatError(
                f"{path}: not a repro score index (missing index_meta; "
                "is this a bare network file?)"
            )
        meta = json.loads(str(arrays["index_meta"][0]))
        declared = int(meta.get("index_format_version", -1))
        if declared != INDEX_FORMAT_VERSION:
            raise DataFormatError(
                f"{path}: unsupported index format version {declared} "
                f"(this build reads version {INDEX_FORMAT_VERSION})"
            )
        records = _validated_method_records(meta, source=path)
        network = network_from_payload(arrays, source=path)
        index = cls(network, version=records["version"])
        declared_keys = set()
        for record in records["methods"]:
            label = record["label"]
            key = f"index_scores__{label}"
            declared_keys.add(key)
            if key not in arrays:
                raise IndexIntegrityError(
                    f"{path}: score vector for {label!r} is missing"
                )
            scores = np.asarray(arrays[key], dtype=np.float64)
            scores.setflags(write=False)
            if scores.shape != (network.n_papers,):
                raise IndexIntegrityError(
                    f"{path}: score vector for {label!r} has length "
                    f"{scores.size}, expected {network.n_papers}"
                )
            index._entries[label] = MethodEntry(
                label=label,
                params=record["params"],
                scores=scores,
                iterations=record["iterations"],
                converged=record["converged"],
                warm_started=record["warm_started"],
            )
        undeclared = sorted(
            name
            for name in arrays
            if name.startswith("index_scores__")
            and name not in declared_keys
        )
        if undeclared:
            raise IndexIntegrityError(
                f"{path}: score vectors not declared in the metadata: "
                f"{undeclared} — the file was assembled inconsistently"
            )
        return index


def _validated_method_records(
    meta: Mapping[str, Any], *, source: str
) -> dict[str, Any]:
    """Validate a persisted index's metadata block.

    Returns ``{"version": int, "methods": [normalised records]}``.
    Every failure raises :class:`IndexIntegrityError` — a loader must
    never surface a bare :class:`KeyError` from a truncated or
    hand-edited file.
    """
    try:
        version = int(meta["version"])
        raw_methods = meta["methods"]
    except (KeyError, TypeError, ValueError) as error:
        raise IndexIntegrityError(
            f"{source}: malformed index metadata ({error!r})"
        ) from None
    if version < 0:
        raise IndexIntegrityError(
            f"{source}: negative index version {version}"
        )
    if not isinstance(raw_methods, list):
        raise IndexIntegrityError(
            f"{source}: metadata 'methods' must be a list, "
            f"got {type(raw_methods).__name__}"
        )
    methods: list[dict[str, Any]] = []
    seen: set[str] = set()
    for record in raw_methods:
        try:
            label = str(record["label"])
            normalised = {
                "label": label,
                "params": dict(record["params"]),
                "iterations": int(record["iterations"]),
                "converged": bool(record["converged"]),
                "warm_started": bool(record["warm_started"]),
            }
        except (KeyError, TypeError, ValueError) as error:
            raise IndexIntegrityError(
                f"{source}: malformed method record ({error!r})"
            ) from None
        if label != label.upper() or label.upper() not in METHOD_REGISTRY:
            known = ", ".join(sorted(METHOD_REGISTRY))
            raise IndexIntegrityError(
                f"{source}: metadata names unknown method {label!r} "
                f"(registered: {known})"
            )
        if label in seen:
            raise IndexIntegrityError(
                f"{source}: metadata declares method {label!r} twice"
            )
        seen.add(label)
        methods.append(normalised)
    return {"version": version, "methods": methods}
