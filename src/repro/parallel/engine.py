"""The process-pool experiment engine.

The paper's evaluation protocol (Section 4.3, Figures 3-5) tunes every
method over its full hyper-parameter grid, per dataset and per test
ratio — embarrassingly parallel work: each grid point is one independent
"score this parameterisation on this split" task.
:class:`ExperimentEngine` fans those tasks out over worker processes
with :mod:`concurrent.futures`, while keeping three guarantees:

* **Deterministic results.**  Tasks are reduced in submission order, so
  sweeps, tie-breaking (the earlier grid point wins) and the returned
  :class:`~repro.eval.tuning.TuningResult` are *bit-identical* to the
  serial :func:`repro.eval.tuning.tune_method` — the property the
  determinism tests assert for ``jobs`` in {1, 2, 4}.
* **One snapshot per worker, not per task.**  The temporal splits are
  shipped once per worker (pool initializer), and every worker wraps
  them in :class:`~repro.parallel.SplitSnapshot` so the CSR transition
  matrix, attention and recency vectors are built once per process and
  reused across all of its grid points.
* **Serial fallback.**  ``jobs=1`` evaluates in-process with no pool
  and no pickling, against the same warm caches — so the engine is
  also the fastest way to run the protocol on one core.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Sequence

from repro.errors import ConfigurationError, EvaluationError
from repro.eval.experiment import (
    ComparisonCell,
    ComparisonSeries,
    _grid_for_lineup,
    methods_available,
)
from repro.eval.metrics import Metric, NDCG, SpearmanRho
from repro.eval.split import (
    DEFAULT_TEST_RATIOS,
    TemporalSplit,
    split_by_ratio,
)
from repro.eval.tuning import SettingScore, TuningResult
from repro.graph.citation_network import CitationNetwork
from repro.parallel.snapshot import SplitSnapshot

__all__ = ["ExperimentEngine", "GridTask", "resolve_jobs"]


def resolve_jobs(jobs: int | None) -> int:
    """Normalise a ``--jobs`` value: ``None``/``0`` means "all cores".

    Raises
    ------
    ConfigurationError
        If ``jobs`` is negative.
    """
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ConfigurationError(f"jobs must be >= 0, got {jobs}")
    return int(jobs)


@dataclass(frozen=True)
class GridTask:
    """One unit of fan-out work: a grid point on a keyed split.

    Attributes
    ----------
    split_key:
        Which of the batch's splits to evaluate on (e.g. the test
        ratio).  Workers cache one :class:`SplitSnapshot` per key.
    method:
        Registry label of the method to instantiate.
    params:
        The grid point (constructor keyword arguments).
    metric:
        The metric to optimise; picklable (a plain instance).
    """

    split_key: Any
    method: str
    params: Mapping[str, Any]
    metric: Metric


# ----------------------------------------------------------------------
# Worker-side state.  Populated by the pool initializer; each worker
# process owns an independent copy (and therefore independent caches).
# ----------------------------------------------------------------------
_WORKER_SPLITS: dict[Any, TemporalSplit] = {}
_WORKER_SNAPSHOTS: dict[Any, SplitSnapshot] = {}


def _worker_init(splits: dict[Any, TemporalSplit]) -> None:
    """Pool initializer: receive the batch's splits once per worker."""
    global _WORKER_SPLITS, _WORKER_SNAPSHOTS
    _WORKER_SPLITS = splits
    _WORKER_SNAPSHOTS = {}


def _worker_evaluate(task: GridTask) -> float:
    """Score one grid point against the worker's cached snapshot."""
    snapshot = _WORKER_SNAPSHOTS.get(task.split_key)
    if snapshot is None:
        snapshot = SplitSnapshot(_WORKER_SPLITS[task.split_key])
        _WORKER_SNAPSHOTS[task.split_key] = snapshot
    return snapshot.evaluate(task.method, task.params, task.metric)


class ExperimentEngine:
    """Run grid-search experiments across worker processes.

    Parameters
    ----------
    jobs:
        Worker process count.  ``1`` (default) evaluates in-process;
        ``0`` or ``None`` uses every core the machine reports.
    chunk_size:
        Tasks handed to a worker per dispatch.  ``None`` picks
        ``ceil(n_tasks / (4 * workers))`` — large enough to amortise
        pickling, small enough to balance uneven grid-point costs.

    Examples
    --------
    >>> from repro.synth import toy_network
    >>> from repro.eval.split import split_by_ratio
    >>> from repro.eval.metrics import SpearmanRho
    >>> from repro.eval.grids import ram_grid
    >>> engine = ExperimentEngine(jobs=1)
    >>> split = split_by_ratio(toy_network(), 1.6)
    >>> result = engine.tune_method("RAM", ram_grid(), split, SpearmanRho())
    >>> len(result.sweep)
    9
    """

    def __init__(
        self,
        jobs: int | None = 1,
        *,
        chunk_size: int | None = None,
    ) -> None:
        self.jobs = resolve_jobs(jobs)
        if chunk_size is not None and chunk_size < 1:
            raise ConfigurationError(
                f"chunk_size must be >= 1, got {chunk_size}"
            )
        self.chunk_size = chunk_size

    # ------------------------------------------------------------------
    # Core primitive
    # ------------------------------------------------------------------
    def map_evaluations(
        self,
        splits: Mapping[Any, TemporalSplit],
        tasks: Sequence[GridTask],
    ) -> list[float]:
        """Evaluate ``tasks`` and return their scores *in task order*.

        The ordering guarantee is what makes every reduction downstream
        (sweeps, tie-breaks, series assembly) independent of worker
        scheduling.
        """
        for task in tasks:
            if task.split_key not in splits:
                raise ConfigurationError(
                    f"task references unknown split {task.split_key!r}"
                )
        if self.jobs == 1 or len(tasks) <= 1:
            snapshots: dict[Any, SplitSnapshot] = {}
            scores = []
            for task in tasks:
                snapshot = snapshots.get(task.split_key)
                if snapshot is None:
                    snapshot = SplitSnapshot(splits[task.split_key])
                    snapshots[task.split_key] = snapshot
                scores.append(
                    snapshot.evaluate(task.method, task.params, task.metric)
                )
            return scores

        workers = max(1, min(self.jobs, len(tasks)))
        chunk = self.chunk_size
        if chunk is None:
            chunk = max(1, -(-len(tasks) // (4 * workers)))
        with ProcessPoolExecutor(
            max_workers=workers,
            initializer=_worker_init,
            initargs=(dict(splits),),
        ) as pool:
            return list(pool.map(_worker_evaluate, tasks, chunksize=chunk))

    # ------------------------------------------------------------------
    # The paper's protocols, parallelised
    # ------------------------------------------------------------------
    def tune_method(
        self,
        method_name: str,
        grid: Iterable[Mapping[str, Any]],
        split: TemporalSplit,
        metric: Metric,
    ) -> TuningResult:
        """Parallel :func:`repro.eval.tuning.tune_method`.

        Same sweep order, same tie-breaking (earlier grid point wins on
        equal scores), same result type — the only difference is which
        process evaluated each point.

        Raises
        ------
        EvaluationError
            If the grid is empty.
        """
        points = [dict(params) for params in grid]
        if not points:
            raise EvaluationError(
                f"empty parameter grid for method {method_name!r}"
            )
        tasks = [
            GridTask(
                split_key="tune", method=method_name,
                params=params, metric=metric,
            )
            for params in points
        ]
        scores = self.map_evaluations({"tune": split}, tasks)
        return _reduce_tuning(method_name, metric, points, scores)

    def tune_methods(
        self,
        method_grids: Mapping[str, Iterable[Mapping[str, Any]]],
        split: TemporalSplit,
        metric: Metric,
    ) -> dict[str, TuningResult]:
        """Parallel :func:`repro.eval.tuning.tune_methods`.

        All methods' grid points enter one task batch, so short grids
        (RAM: 9 points) and long ones (AttRank: 250) share the pool
        instead of serialising per method.
        """
        named_points = {
            name: [dict(params) for params in grid]
            for name, grid in method_grids.items()
        }
        for name, points in named_points.items():
            if not points:
                raise EvaluationError(
                    f"empty parameter grid for method {name!r}"
                )
        tasks = [
            GridTask(
                split_key="tune", method=name, params=params, metric=metric
            )
            for name, points in named_points.items()
            for params in points
        ]
        scores = self.map_evaluations({"tune": split}, tasks)
        results: dict[str, TuningResult] = {}
        cursor = 0
        for name, points in named_points.items():
            chunk = scores[cursor : cursor + len(points)]
            cursor += len(points)
            results[name] = _reduce_tuning(name, metric, points, chunk)
        return results

    def compare_over_ratios(
        self,
        network: CitationNetwork,
        *,
        dataset: str = "dataset",
        metric: Metric | None = None,
        test_ratios: Sequence[float] = DEFAULT_TEST_RATIOS,
        methods: Sequence[str] | None = None,
    ) -> ComparisonSeries:
        """Parallel :func:`repro.eval.experiment.compare_over_ratios`.

        Splits are computed once in the parent; the full cross product
        (ratio x method x grid point) becomes one task batch.  Each
        worker caches one snapshot per ratio it encounters.
        """
        chosen_metric = metric if metric is not None else SpearmanRho()
        lineup = tuple(
            methods if methods is not None else methods_available(network)
        )
        ratio_keys = [float(ratio) for ratio in test_ratios]
        splits = {
            ratio: split_by_ratio(network, ratio)
            for ratio in dict.fromkeys(ratio_keys)
        }
        grids = {name: list(_grid_for_lineup(name)) for name in lineup}
        tasks = [
            GridTask(
                split_key=ratio, method=name, params=params,
                metric=chosen_metric,
            )
            for ratio in ratio_keys
            for name in lineup
            for params in grids[name]
        ]
        scores = self.map_evaluations(splits, tasks)

        columns: dict[str, list[ComparisonCell]] = {name: [] for name in lineup}
        cursor = 0
        for ratio in ratio_keys:
            for name in lineup:
                points = grids[name]
                chunk = scores[cursor : cursor + len(points)]
                cursor += len(points)
                result = _reduce_tuning(name, chosen_metric, points, chunk)
                columns[name].append(
                    ComparisonCell(method=name, x=ratio, result=result)
                )
        return ComparisonSeries(
            dataset=dataset,
            metric=chosen_metric.name,
            x_label="test_ratio",
            x_values=tuple(ratio_keys),
            cells={name: tuple(cells) for name, cells in columns.items()},
        )

    def compare_over_k(
        self,
        network: CitationNetwork,
        *,
        dataset: str = "dataset",
        test_ratio: float = 1.6,
        k_values: Sequence[int] = (5, 10, 50, 100, 500),
        methods: Sequence[str] | None = None,
    ) -> ComparisonSeries:
        """Parallel :func:`repro.eval.experiment.compare_over_k`.

        One split, one task per (k, method, grid point); each k carries
        its own :class:`~repro.eval.metrics.NDCG` metric, exactly as the
        serial driver re-tunes per cut-off.
        """
        split = split_by_ratio(network, test_ratio)
        lineup = tuple(
            methods if methods is not None else methods_available(network)
        )
        grids = {name: list(_grid_for_lineup(name)) for name in lineup}
        metrics = {k: NDCG(k) for k in k_values}
        tasks = [
            GridTask(
                split_key="split", method=name, params=params,
                metric=metrics[k],
            )
            for k in k_values
            for name in lineup
            for params in grids[name]
        ]
        scores = self.map_evaluations({"split": split}, tasks)

        columns: dict[str, list[ComparisonCell]] = {name: [] for name in lineup}
        cursor = 0
        for k in k_values:
            for name in lineup:
                points = grids[name]
                chunk = scores[cursor : cursor + len(points)]
                cursor += len(points)
                result = _reduce_tuning(name, metrics[k], points, chunk)
                columns[name].append(
                    ComparisonCell(method=name, x=float(k), result=result)
                )
        return ComparisonSeries(
            dataset=dataset,
            metric="ndcg",
            x_label="k",
            x_values=tuple(float(k) for k in k_values),
            cells={name: tuple(cells) for name, cells in columns.items()},
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ExperimentEngine(jobs={self.jobs})"


def _reduce_tuning(
    method_name: str,
    metric: Metric,
    points: Sequence[Mapping[str, Any]],
    scores: Sequence[float],
) -> TuningResult:
    """Fold ordered (params, score) pairs into a :class:`TuningResult`.

    Mirrors the serial loop of :func:`repro.eval.tuning.tune_method`
    exactly: sweep in grid order, best = first strictly-greater score.
    """
    sweep: list[SettingScore] = []
    best: SettingScore | None = None
    for params, score in zip(points, scores):
        entry = SettingScore(params=dict(params), score=float(score))
        sweep.append(entry)
        if best is None or entry.score > best.score:
            best = entry
    if best is None:
        raise EvaluationError(
            f"empty parameter grid for method {method_name!r}"
        )
    return TuningResult(
        method=method_name,
        metric=metric.name,
        best=best,
        sweep=tuple(sweep),
    )
