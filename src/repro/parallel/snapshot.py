"""Shared evaluation snapshots — one precomputed context per split.

A grid search evaluates hundreds of parameterisations against one
temporal split.  The expensive structure — the CSR transition matrix,
the attention vectors of the grid's windows, the recency vector of the
fitted decay rate — depends on the split's current network, not on the
grid point.  :class:`SplitSnapshot` binds a split to that precomputed
structure so that every evaluation (serial, or inside a worker process
of :class:`~repro.parallel.ExperimentEngine`) hits warm caches.

The heavy lifting lives in the per-network memoisation layer
(:mod:`repro.graph.cache`); this class is the *policy*: what to build
eagerly before a batch of grid points, and the single entry point
(:meth:`SplitSnapshot.evaluate`) workers call per task.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

from repro.errors import ReproError
from repro.eval.metrics import Metric
from repro.eval.split import TemporalSplit
from repro.eval.tuning import evaluate_setting
from repro.graph.cache import cached_keys
from repro.graph.matrix import shared_operator

__all__ = ["SplitSnapshot"]


class SplitSnapshot:
    """One split plus its hoisted evaluation structure.

    Parameters
    ----------
    split:
        The temporal split every grid point is scored on.
    warm:
        Eagerly build the structure shared by *all* PageRank-style
        methods (the stochastic operator, the decay-rate fit) at
        construction time.  ``False`` defers everything to first use —
        useful when the snapshot may never be evaluated.

    Examples
    --------
    >>> from repro.synth import toy_network
    >>> from repro.eval.split import split_by_ratio
    >>> from repro.eval.metrics import SpearmanRho
    >>> snapshot = SplitSnapshot(split_by_ratio(toy_network(), 1.6))
    >>> score = snapshot.evaluate("CC", {}, SpearmanRho())
    >>> -1.0 <= score <= 1.0
    True
    """

    def __init__(self, split: TemporalSplit, *, warm: bool = True) -> None:
        self.split = split
        if warm:
            self.warm()

    def warm(
        self,
        grid: Iterable[Mapping[str, Any]] | None = None,
    ) -> "SplitSnapshot":
        """Precompute the shared structure (idempotent; returns ``self``).

        Without a ``grid``, builds what every iterative method needs:
        the column-stochastic operator and the decay-rate fit.  With a
        ``grid``, additionally touches the attention vector of every
        ``attention_window`` the grid mentions, so no grid point pays
        for a counting pass.
        """
        network = self.split.current
        shared_operator(network)
        try:
            from repro.core.recency import fit_decay_rate

            fit_decay_rate(network)
        except ReproError:
            # Degenerate citation-age distributions (tiny or synthetic
            # corpora) cannot be fitted; methods that need the fit will
            # raise the precise error at evaluation time.
            pass
        if grid is not None:
            from repro.core.attention import attention_vector

            windows = {
                float(params["attention_window"])
                for params in grid
                if "attention_window" in params
            }
            for window in sorted(windows):
                attention_vector(network, window)
        return self

    def evaluate(
        self,
        method_name: str,
        params: Mapping[str, Any],
        metric: Metric,
    ) -> float:
        """Score one parameterisation of ``method_name`` on this split.

        Exactly :func:`repro.eval.tuning.evaluate_setting` — same code
        path, same floating-point result — but against the snapshot's
        warm caches.
        """
        return evaluate_setting(method_name, dict(params), self.split, metric)

    @property
    def cached_structures(self) -> int:
        """How many derived artifacts are materialised (diagnostics)."""
        return len(cached_keys(self.split.current))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SplitSnapshot(ratio={self.split.test_ratio}, "
            f"n_current={self.split.current.n_papers}, "
            f"cached={self.cached_structures})"
        )
