"""repro.parallel — the process-pool experiment engine.

The paper's comparative evaluation (Figures 3-5, Tables 1-3) tunes
every method over its full hyper-parameter grid per dataset and test
ratio.  Those grid points are independent, so this package fans them
out over worker processes while guaranteeing results *bit-identical* to
the serial drivers in :mod:`repro.eval`:

* :class:`ExperimentEngine` — ``jobs``-configurable pool running
  :meth:`~ExperimentEngine.tune_method`,
  :meth:`~ExperimentEngine.tune_methods`,
  :meth:`~ExperimentEngine.compare_over_ratios` and
  :meth:`~ExperimentEngine.compare_over_k` with deterministic
  reduction order;
* :class:`SplitSnapshot` — one precomputed evaluation context (CSR
  transition matrix, attention/recency vectors, decay fit) per split,
  shared by every grid point a worker evaluates;
* :func:`resolve_jobs` — ``--jobs`` semantics (``0`` = all cores).

CLI: ``repro compare --jobs N`` reproduces a figure panel in parallel,
``repro bench`` measures the speedup and writes ``BENCH_*.json``.
"""

from repro.parallel.engine import ExperimentEngine, GridTask, resolve_jobs
from repro.parallel.snapshot import SplitSnapshot

__all__ = [
    "ExperimentEngine",
    "GridTask",
    "SplitSnapshot",
    "resolve_jobs",
]
