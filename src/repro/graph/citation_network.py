"""The citation-network data structure at the heart of the library.

A :class:`CitationNetwork` is an immutable snapshot of a scholarly corpus:
papers with publication times, directed citation edges (citing -> cited),
and optional author / venue metadata.  All ranking methods in
:mod:`repro.core` and :mod:`repro.baselines` operate on this structure.

Papers are addressed internally by dense integer indices ``0 .. n_papers-1``
in insertion order; the external (string) identifiers are kept in
:attr:`CitationNetwork.paper_ids` and can be translated both ways with
:meth:`CitationNetwork.index_of` and :meth:`CitationNetwork.id_of`.

The citation matrix follows the paper's convention (Section 2):

    ``C[i, j] = 1``  iff paper ``j`` cites paper ``i``

so that rows index the *cited* paper and columns the *citing* paper.
"""

from __future__ import annotations

from functools import cached_property
from typing import Iterable, Mapping, Sequence

import numpy as np
import scipy.sparse as sp

from repro._typing import FloatVector, IntVector
from repro.errors import GraphError

__all__ = ["CitationNetwork"]


def _as_index_array(values: Iterable[int], *, name: str) -> IntVector:
    """Convert ``values`` to a 1-D int64 array, validating dimensionality."""
    array = np.asarray(list(values) if not isinstance(values, np.ndarray) else values)
    if array.size == 0:
        return np.zeros(0, dtype=np.int64)
    if array.ndim != 1:
        raise GraphError(f"{name} must be one-dimensional, got shape {array.shape}")
    if not np.issubdtype(array.dtype, np.integer):
        raise GraphError(f"{name} must contain integers, got dtype {array.dtype}")
    return array.astype(np.int64)


class CitationNetwork:
    """An immutable directed citation network with publication times.

    Parameters
    ----------
    paper_ids:
        External identifiers of the papers, one per paper.  Must be unique.
    publication_times:
        Publication time of each paper, in (possibly fractional) years,
        e.g. ``1997.5``.  Length must equal ``len(paper_ids)``.
    citing, cited:
        Parallel integer arrays encoding the citation edges: paper
        ``citing[e]`` cites paper ``cited[e]``.
    paper_authors:
        Optional sequence (one entry per paper) of author-index tuples.
        Author indices are dense integers ``0 .. n_authors-1``.
    paper_venues:
        Optional integer array (one entry per paper) of venue indices,
        with ``-1`` meaning "venue unknown".
    validate:
        When true (the default), run structural integrity checks; see
        :meth:`validate`.

    Notes
    -----
    Instances should be treated as immutable: the underlying arrays are
    flagged read-only, and derived artifacts (degree vectors, sparse
    matrices) are cached on first use.
    """

    def __init__(
        self,
        paper_ids: Sequence[str],
        publication_times: Iterable[float],
        citing: Iterable[int],
        cited: Iterable[int],
        *,
        paper_authors: Sequence[Sequence[int]] | None = None,
        paper_venues: Iterable[int] | None = None,
        validate: bool = True,
    ) -> None:
        self._paper_ids = tuple(str(p) for p in paper_ids)
        self._pub_time = np.asarray(list(publication_times), dtype=np.float64)
        self._citing = _as_index_array(citing, name="citing")
        self._cited = _as_index_array(cited, name="cited")
        self._pub_time.setflags(write=False)
        self._citing.setflags(write=False)
        self._cited.setflags(write=False)

        if paper_authors is not None:
            self._paper_authors: tuple[tuple[int, ...], ...] | None = tuple(
                tuple(int(a) for a in authors) for authors in paper_authors
            )
        else:
            self._paper_authors = None

        if paper_venues is not None:
            self._paper_venues: IntVector | None = np.asarray(
                list(paper_venues), dtype=np.int64
            )
            self._paper_venues.setflags(write=False)
        else:
            self._paper_venues = None

        self._index: dict[str, int] = {
            pid: i for i, pid in enumerate(self._paper_ids)
        }
        if validate:
            self.validate()

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def n_papers(self) -> int:
        """Number of papers (nodes) in the network."""
        return len(self._paper_ids)

    @property
    def n_citations(self) -> int:
        """Number of citation edges in the network."""
        return int(self._citing.size)

    @property
    def paper_ids(self) -> tuple[str, ...]:
        """External identifiers of all papers, in index order."""
        return self._paper_ids

    @property
    def publication_times(self) -> FloatVector:
        """Publication time (in years) of each paper."""
        return self._pub_time

    @property
    def citing(self) -> IntVector:
        """Citing-paper index of each edge (the source of the reference)."""
        return self._citing

    @property
    def cited(self) -> IntVector:
        """Cited-paper index of each edge (the target of the reference)."""
        return self._cited

    @property
    def paper_authors(self) -> tuple[tuple[int, ...], ...] | None:
        """Author indices per paper, or ``None`` when unavailable."""
        return self._paper_authors

    @property
    def paper_venues(self) -> IntVector | None:
        """Venue index per paper (``-1`` = unknown), or ``None``."""
        return self._paper_venues

    @property
    def has_authors(self) -> bool:
        """Whether author metadata is present."""
        return self._paper_authors is not None

    @property
    def has_venues(self) -> bool:
        """Whether venue metadata is present."""
        return self._paper_venues is not None

    @cached_property
    def n_authors(self) -> int:
        """Number of distinct authors (0 when author data is absent)."""
        if self._paper_authors is None:
            return 0
        return 1 + max(
            (a for authors in self._paper_authors for a in authors), default=-1
        )

    @cached_property
    def n_venues(self) -> int:
        """Number of distinct venues (0 when venue data is absent)."""
        if self._paper_venues is None:
            return 0
        return int(self._paper_venues.max(initial=-1)) + 1

    def index_of(self, paper_id: str) -> int:
        """Return the dense index of the paper with external id ``paper_id``."""
        try:
            return self._index[paper_id]
        except KeyError:
            raise GraphError(f"unknown paper id: {paper_id!r}") from None

    def id_of(self, index: int) -> str:
        """Return the external id of the paper at dense index ``index``."""
        return self._paper_ids[index]

    def __contains__(self, paper_id: object) -> bool:
        return paper_id in self._index

    def __len__(self) -> int:
        return self.n_papers

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        span = ""
        if self.n_papers:
            span = f", years {self._pub_time.min():.1f}-{self._pub_time.max():.1f}"
        return (
            f"CitationNetwork(n_papers={self.n_papers}, "
            f"n_citations={self.n_citations}{span})"
        )

    # ------------------------------------------------------------------
    # Derived structure (cached)
    # ------------------------------------------------------------------
    @cached_property
    def citation_matrix(self) -> sp.csr_matrix:
        """The sparse citation matrix ``C`` with ``C[i, j] = 1`` iff j cites i.

        Duplicate edges (the same reference listed twice in the source
        data) are collapsed to weight 1.
        """
        n = self.n_papers
        data = np.ones(self.n_citations, dtype=np.float64)
        matrix = sp.csr_matrix(
            (data, (self._cited, self._citing)), shape=(n, n)
        )
        # Collapse duplicate references to binary entries.
        matrix.data[:] = 1.0
        matrix.sum_duplicates()
        matrix.data[:] = np.minimum(matrix.data, 1.0)
        return matrix

    @cached_property
    def in_degree(self) -> IntVector:
        """Citation count of each paper (number of distinct citing papers)."""
        counts = np.asarray(self.citation_matrix.sum(axis=1)).ravel()
        return counts.astype(np.int64)

    @cached_property
    def out_degree(self) -> IntVector:
        """Reference-list length of each paper (distinct cited papers)."""
        counts = np.asarray(self.citation_matrix.sum(axis=0)).ravel()
        return counts.astype(np.int64)

    @cached_property
    def dangling_mask(self) -> np.ndarray:
        """Boolean mask of papers that cite no other paper in the network."""
        return self.out_degree == 0

    @cached_property
    def author_matrix(self) -> sp.csr_matrix:
        """Bipartite author-paper matrix ``A`` with ``A[a, p] = 1``.

        Raises
        ------
        GraphError
            If the network carries no author metadata.
        """
        if self._paper_authors is None:
            raise GraphError("this network has no author metadata")
        rows: list[int] = []
        cols: list[int] = []
        for paper, authors in enumerate(self._paper_authors):
            for author in authors:
                rows.append(author)
                cols.append(paper)
        data = np.ones(len(rows), dtype=np.float64)
        matrix = sp.csr_matrix(
            (data, (rows, cols)), shape=(self.n_authors, self.n_papers)
        )
        matrix.sum_duplicates()
        matrix.data[:] = 1.0
        return matrix

    @cached_property
    def venue_matrix(self) -> sp.csr_matrix:
        """Bipartite venue-paper matrix ``V`` with ``V[v, p] = 1``.

        Papers with unknown venue (index ``-1``) have an all-zero column.

        Raises
        ------
        GraphError
            If the network carries no venue metadata.
        """
        if self._paper_venues is None:
            raise GraphError("this network has no venue metadata")
        known = self._paper_venues >= 0
        papers = np.nonzero(known)[0]
        venues = self._paper_venues[known]
        data = np.ones(papers.size, dtype=np.float64)
        return sp.csr_matrix(
            (data, (venues, papers)), shape=(self.n_venues, self.n_papers)
        )

    # ------------------------------------------------------------------
    # Ages and time helpers
    # ------------------------------------------------------------------
    @cached_property
    def latest_time(self) -> float:
        """Publication time of the most recent paper (the network "now")."""
        if self.n_papers == 0:
            raise GraphError("empty network has no latest time")
        return float(self._pub_time.max())

    def ages(self, now: float | None = None) -> FloatVector:
        """Age of every paper at time ``now`` (default: :attr:`latest_time`).

        Ages are clipped below at zero so that a caller passing an earlier
        ``now`` never produces negative ages.
        """
        reference = self.latest_time if now is None else float(now)
        return np.maximum(reference - self._pub_time, 0.0)

    def citation_times(self) -> FloatVector:
        """Time of each citation edge = publication time of the citing paper."""
        return self._pub_time[self._citing]

    # ------------------------------------------------------------------
    # Validation and export
    # ------------------------------------------------------------------
    def validate(self, *, require_time_order: bool = False) -> None:
        """Check structural integrity, raising :class:`GraphError` on failure.

        Always checked: array-length agreement, unique external ids,
        edge-index bounds, absence of self-citations, finite publication
        times.  With ``require_time_order=True`` also require that no
        paper cites a paper published strictly after itself.
        """
        n = self.n_papers
        if self._pub_time.shape != (n,):
            raise GraphError(
                f"publication_times has length {self._pub_time.size}, "
                f"expected {n}"
            )
        if len(self._index) != n:
            raise GraphError("paper ids are not unique")
        if not np.all(np.isfinite(self._pub_time)):
            raise GraphError("publication times must be finite")
        if self._citing.shape != self._cited.shape:
            raise GraphError("citing and cited arrays differ in length")
        if self.n_citations:
            for name, arr in (("citing", self._citing), ("cited", self._cited)):
                if arr.min(initial=0) < 0 or arr.max(initial=0) >= n:
                    raise GraphError(f"{name} index out of range [0, {n})")
            if np.any(self._citing == self._cited):
                raise GraphError("self-citations are not allowed")
        if self._paper_authors is not None and len(self._paper_authors) != n:
            raise GraphError("paper_authors length must equal n_papers")
        if self._paper_venues is not None and self._paper_venues.shape != (n,):
            raise GraphError("paper_venues length must equal n_papers")
        if require_time_order and self.n_citations:
            citing_t = self._pub_time[self._citing]
            cited_t = self._pub_time[self._cited]
            bad = citing_t < cited_t
            if np.any(bad):
                count = int(bad.sum())
                raise GraphError(
                    f"{count} citations point to papers published later "
                    "than the citing paper"
                )

    def to_networkx(self):
        """Export as a :class:`networkx.DiGraph` (edges citing -> cited).

        Node attributes: ``time`` (publication time), ``paper_id``.  Intended
        for interoperability and visualisation, not for the ranking paths.
        """
        import networkx as nx

        graph = nx.DiGraph()
        for i, pid in enumerate(self._paper_ids):
            graph.add_node(i, paper_id=pid, time=float(self._pub_time[i]))
        graph.add_edges_from(zip(self._citing.tolist(), self._cited.tolist()))
        return graph

    # ------------------------------------------------------------------
    # Subsetting
    # ------------------------------------------------------------------
    def subnetwork(self, paper_indices: Iterable[int]) -> "CitationNetwork":
        """Return the induced subnetwork on ``paper_indices``.

        Papers are re-indexed densely, preserving the relative order given
        by ``paper_indices``.  Edges with either endpoint outside the subset
        are dropped.  Author indices are preserved verbatim (they remain
        globally meaningful); venue indices likewise.
        """
        keep = _as_index_array(paper_indices, name="paper_indices")
        if keep.size != np.unique(keep).size:
            raise GraphError("paper_indices contains duplicates")
        if keep.size and (keep.min() < 0 or keep.max() >= self.n_papers):
            raise GraphError("paper_indices out of range")

        remap = np.full(self.n_papers, -1, dtype=np.int64)
        remap[keep] = np.arange(keep.size, dtype=np.int64)
        edge_ok = (remap[self._citing] >= 0) & (remap[self._cited] >= 0)

        authors = None
        if self._paper_authors is not None:
            authors = [self._paper_authors[i] for i in keep]
        venues = None
        if self._paper_venues is not None:
            venues = self._paper_venues[keep]

        return CitationNetwork(
            paper_ids=[self._paper_ids[i] for i in keep],
            publication_times=self._pub_time[keep],
            citing=remap[self._citing[edge_ok]],
            cited=remap[self._cited[edge_ok]],
            paper_authors=authors,
            paper_venues=venues,
            validate=False,
        )

    # ------------------------------------------------------------------
    # Extension (incremental growth)
    # ------------------------------------------------------------------
    def extend(
        self,
        paper_ids: Sequence[str],
        publication_times: Iterable[float],
        citations: Iterable[tuple[str, str]],
        *,
        validate: bool = True,
    ) -> "CitationNetwork":
        """Return a new network with papers and citations appended.

        The crucial invariant for incremental ranking
        (:mod:`repro.serve`): every existing paper keeps its dense index,
        and the new papers take indices ``n_papers .. n_papers+k-1`` in
        the order given.  A score vector computed on this snapshot
        therefore stays aligned with the old coordinates of the extended
        network, which is what makes warm-started re-solves possible.

        Parameters
        ----------
        paper_ids:
            External ids of the new papers; must not collide with
            existing ids (or each other).
        publication_times:
            Publication time of each new paper, parallel to
            ``paper_ids``.
        citations:
            ``(citing_id, cited_id)`` pairs over the combined id space.
            Both endpoints must exist after the extension; unknown ids
            raise :class:`GraphError` (callers wanting a skip policy
            should resolve through :class:`~repro.graph.NetworkBuilder`).

        Notes
        -----
        New papers inherit empty author lists and unknown venues when the
        base network carries that metadata — bibliographic deltas in the
        serving path are citation events, not metadata updates.
        """
        new_ids = [str(p) for p in paper_ids]
        new_times = [float(t) for t in publication_times]
        if len(new_ids) != len(new_times):
            raise GraphError(
                f"{len(new_ids)} new papers but {len(new_times)} "
                "publication times"
            )
        combined_index = dict(self._index)
        for pid in new_ids:
            if pid in combined_index:
                raise GraphError(f"duplicate paper id: {pid!r}")
            combined_index[pid] = len(combined_index)

        extra_citing: list[int] = []
        extra_cited: list[int] = []
        for citing_id, cited_id in citations:
            try:
                source = combined_index[str(citing_id)]
            except KeyError:
                raise GraphError(
                    f"unknown citing paper: {citing_id!r}"
                ) from None
            try:
                target = combined_index[str(cited_id)]
            except KeyError:
                raise GraphError(
                    f"unknown cited paper: {cited_id!r}"
                ) from None
            extra_citing.append(source)
            extra_cited.append(target)

        authors = None
        if self._paper_authors is not None:
            authors = list(self._paper_authors) + [()] * len(new_ids)
        venues = None
        if self._paper_venues is not None:
            venues = np.concatenate(
                [self._paper_venues, np.full(len(new_ids), -1, dtype=np.int64)]
            )

        return CitationNetwork(
            paper_ids=list(self._paper_ids) + new_ids,
            publication_times=np.concatenate(
                [self._pub_time, np.asarray(new_times, dtype=np.float64)]
            ),
            citing=np.concatenate(
                [self._citing, np.asarray(extra_citing, dtype=np.int64)]
            ),
            cited=np.concatenate(
                [self._cited, np.asarray(extra_cited, dtype=np.int64)]
            ),
            paper_authors=authors,
            paper_venues=venues,
            validate=validate,
        )

    @classmethod
    def from_edges(
        cls,
        edges: Iterable[tuple[str, str]],
        publication_times: Mapping[str, float],
        **kwargs,
    ) -> "CitationNetwork":
        """Build a network from ``(citing_id, cited_id)`` pairs.

        Papers are indexed in the sorted order of their external ids for
        determinism.  Every id appearing in ``edges`` must have an entry
        in ``publication_times``; papers without edges may also be listed
        in ``publication_times`` and become isolated nodes.
        """
        edge_list = [(str(a), str(b)) for a, b in edges]
        ids = set(publication_times)
        for a, b in edge_list:
            if a not in ids:
                raise GraphError(f"no publication time for citing paper {a!r}")
            if b not in ids:
                raise GraphError(f"no publication time for cited paper {b!r}")
        ordered = sorted(ids)
        index = {pid: i for i, pid in enumerate(ordered)}
        citing = [index[a] for a, _ in edge_list]
        cited = [index[b] for _, b in edge_list]
        times = [float(publication_times[pid]) for pid in ordered]
        return cls(ordered, times, citing, cited, **kwargs)
