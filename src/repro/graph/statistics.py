"""Descriptive statistics of citation networks.

This module provides the empirical quantities the paper analyses before
introducing AttRank:

* the **citation-age distribution** — the fraction of all citations that
  arrive ``n`` years after the cited paper's publication (Figure 1a),
  whose exponential tail calibrates the recency weight ``w`` (Eq. 3);
* **yearly citation trajectories** of individual papers (Figure 1b);
* summary statistics used by loaders, generators and reports.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._typing import FloatVector, IntVector
from repro.errors import GraphError
from repro.graph.citation_network import CitationNetwork

__all__ = [
    "citation_age_distribution",
    "yearly_citations",
    "citations_per_year",
    "top_cited",
    "NetworkSummary",
    "summarize",
]


def citation_age_distribution(
    network: CitationNetwork,
    *,
    max_age: int = 10,
) -> FloatVector:
    """Empirical distribution of citation ages, as in the paper's Figure 1a.

    Entry ``n`` (for ``n`` in ``0 .. max_age``) is the fraction of *all*
    citations in the network that were made ``n`` whole years after the
    publication of the cited paper.  Citation age is measured as
    ``floor(t_citing - t_cited)`` and negative ages (data noise) are
    discarded.  The returned vector sums to the fraction of citations with
    age <= ``max_age`` (i.e. it is *not* renormalised — exactly the "% of
    citations" y-axis of Figure 1a, divided by 100).

    Raises
    ------
    GraphError
        If the network has no citations.
    """
    if network.n_citations == 0:
        raise GraphError("citation-age distribution of an edgeless network")
    ages = network.citation_times() - network.publication_times[network.cited]
    ages = np.floor(ages).astype(np.int64)
    ages = ages[ages >= 0]
    if ages.size == 0:
        raise GraphError("all citations have negative age; check the data")
    distribution = np.zeros(max_age + 1, dtype=np.float64)
    clipped = ages[ages <= max_age]
    np.add.at(distribution, clipped, 1.0)
    return distribution / ages.size


def yearly_citations(
    network: CitationNetwork,
    paper: int | str,
    *,
    first_year: int | None = None,
    last_year: int | None = None,
) -> tuple[IntVector, IntVector]:
    """Yearly citation counts of one paper (the Figure 1b trajectories).

    Returns ``(years, counts)`` where ``years`` are whole calendar years
    and ``counts[k]`` is the number of citations made to ``paper`` during
    year ``years[k]``.  The range defaults to the span from the paper's
    publication year to the network's latest year.
    """
    index = network.index_of(paper) if isinstance(paper, str) else int(paper)
    if not 0 <= index < network.n_papers:
        raise GraphError(f"paper index {index} out of range")
    received = network.cited == index
    made_at = network.citation_times()[received]
    start = int(np.floor(network.publication_times[index]))
    end = int(np.floor(network.latest_time))
    if first_year is not None:
        start = int(first_year)
    if last_year is not None:
        end = int(last_year)
    if end < start:
        raise GraphError(f"empty year range [{start}, {end}]")
    years = np.arange(start, end + 1, dtype=np.int64)
    counts = np.zeros(years.size, dtype=np.int64)
    offsets = np.floor(made_at).astype(np.int64) - start
    valid = (offsets >= 0) & (offsets < years.size)
    np.add.at(counts, offsets[valid], 1)
    return years, counts


def citations_per_year(network: CitationNetwork) -> tuple[IntVector, IntVector]:
    """Total citations made per calendar year, over the whole network."""
    if network.n_citations == 0:
        raise GraphError("network has no citations")
    made_at = np.floor(network.citation_times()).astype(np.int64)
    start, end = int(made_at.min()), int(made_at.max())
    years = np.arange(start, end + 1, dtype=np.int64)
    counts = np.zeros(years.size, dtype=np.int64)
    np.add.at(counts, made_at - start, 1)
    return years, counts


def top_cited(
    network: CitationNetwork,
    k: int,
    *,
    since: float | None = None,
) -> IntVector:
    """Indices of the ``k`` most-cited papers, optionally counting only
    citations made after ``since``.

    Ties are broken deterministically by paper index.  Used by the
    "recently popular" analysis behind the paper's Table 1.
    """
    if k < 0:
        raise GraphError(f"k must be non-negative, got {k}")
    if since is None:
        counts = network.in_degree.astype(np.float64)
    else:
        from repro.graph.temporal import citation_counts_between

        counts = citation_counts_between(network, since, np.inf)
    order = np.lexsort((np.arange(network.n_papers), -counts))
    return order[:k].astype(np.int64)


@dataclass(frozen=True)
class NetworkSummary:
    """Headline statistics of a citation network."""

    n_papers: int
    n_citations: int
    n_authors: int
    n_venues: int
    first_year: float
    last_year: float
    mean_references: float
    mean_citations: float
    dangling_fraction: float

    def as_rows(self) -> list[tuple[str, str]]:
        """Render as (label, value) rows for report tables."""
        return [
            ("papers", f"{self.n_papers:,}"),
            ("citations", f"{self.n_citations:,}"),
            ("authors", f"{self.n_authors:,}"),
            ("venues", f"{self.n_venues:,}"),
            ("years", f"{self.first_year:.0f}-{self.last_year:.0f}"),
            ("mean references", f"{self.mean_references:.2f}"),
            ("mean citations", f"{self.mean_citations:.2f}"),
            ("dangling fraction", f"{self.dangling_fraction:.3f}"),
        ]


def summarize(network: CitationNetwork) -> NetworkSummary:
    """Compute a :class:`NetworkSummary` for ``network``."""
    if network.n_papers == 0:
        raise GraphError("cannot summarise an empty network")
    times = network.publication_times
    n = network.n_papers
    return NetworkSummary(
        n_papers=n,
        n_citations=network.n_citations,
        n_authors=network.n_authors,
        n_venues=network.n_venues,
        first_year=float(times.min()),
        last_year=float(times.max()),
        mean_references=float(network.out_degree.mean()),
        mean_citations=float(network.in_degree.mean()),
        dangling_fraction=float(network.dangling_mask.mean()),
    )
