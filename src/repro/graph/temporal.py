"""Temporal views of a citation network: snapshots and citation windows.

The evaluation methodology of the paper revolves around two temporal
operations:

* the *state* of the network at a time ``t`` — papers published up to
  ``t`` and the citations among them (``C(t)`` in the paper), and
* the *citation window* ``C[t0 : t1]`` — only citations *made* (i.e. whose
  citing paper was published) inside a time interval, which drives the
  attention vector (Eq. 2) and the RAM/ECM baselines.

Both are provided here, along with count-based prefixes used by the
test-ratio split of Section 4.1.
"""

from __future__ import annotations

import numpy as np

from repro._typing import FloatVector, IntVector
from repro.errors import GraphError
from repro.graph.citation_network import CitationNetwork

__all__ = [
    "snapshot_at",
    "prefix_by_count",
    "papers_published_until",
    "chronological_order",
    "citations_in_window",
    "citation_counts_between",
]


def chronological_order(network: CitationNetwork) -> IntVector:
    """Paper indices sorted by publication time (stable on ties).

    The stable tie-break on the original index makes every split
    deterministic, which the test-ratio methodology relies on.
    """
    return np.argsort(network.publication_times, kind="stable").astype(np.int64)


def papers_published_until(network: CitationNetwork, t: float) -> IntVector:
    """Indices of papers with publication time <= ``t``, in index order."""
    return np.nonzero(network.publication_times <= t)[0].astype(np.int64)


def snapshot_at(
    network: CitationNetwork, t: float
) -> tuple[CitationNetwork, IntVector]:
    """The network state ``C(t)``: papers published up to ``t``.

    Returns
    -------
    (snapshot, kept_indices):
        ``snapshot`` is the induced subnetwork re-indexed densely;
        ``kept_indices[i]`` gives the index in the *original* network of
        snapshot paper ``i``.
    """
    keep = papers_published_until(network, t)
    return network.subnetwork(keep), keep


def prefix_by_count(
    network: CitationNetwork, n_papers: int
) -> tuple[CitationNetwork, IntVector]:
    """The subnetwork of the ``n_papers`` chronologically oldest papers.

    This is the count-based state used by the paper's test-ratio split
    ("we partition each dataset according to time in two parts, each
    having equal number of papers").
    """
    if not 0 <= n_papers <= network.n_papers:
        raise GraphError(
            f"n_papers must be in [0, {network.n_papers}], got {n_papers}"
        )
    order = chronological_order(network)
    keep = np.sort(order[:n_papers])
    return network.subnetwork(keep), keep


def citations_in_window(
    network: CitationNetwork,
    t_start: float,
    t_end: float,
) -> np.ndarray:
    """Boolean edge mask of citations made in the half-open window
    ``(t_start, t_end]``.

    A citation is *made* at the publication time of its citing paper,
    matching the paper's ``C[tN-y : tN]`` notation for the attention
    window.
    """
    if t_end < t_start:
        raise GraphError(
            f"empty window: t_end ({t_end}) earlier than t_start ({t_start})"
        )
    made_at = network.citation_times()
    return (made_at > t_start) & (made_at <= t_end)


def citation_counts_between(
    network: CitationNetwork,
    t_start: float,
    t_end: float,
) -> FloatVector:
    """Per-paper count of citations received in the window ``(t_start, t_end]``.

    Entry ``i`` is the number of edges pointing at paper ``i`` whose citing
    paper was published in the window — the row sums of ``C[t_start : t_end]``.
    """
    mask = citations_in_window(network, t_start, t_end)
    counts = np.zeros(network.n_papers, dtype=np.float64)
    np.add.at(counts, network.cited[mask], 1.0)
    return counts
