"""Citation-network substrate: graph structure, matrices, temporal views.

Public entry points:

* :class:`CitationNetwork` — the immutable network (papers, times, edges,
  optional authors/venues).
* :class:`NetworkBuilder` — incremental construction with id resolution.
* :class:`StochasticOperator` — the paper's column-stochastic matrix ``S``
  with exact dangling handling.
* :mod:`repro.graph.temporal` — snapshots ``C(t)`` and citation windows.
* :mod:`repro.graph.statistics` — citation-age distribution (Figure 1a),
  per-paper yearly trajectories (Figure 1b) and summaries.
"""

from repro.graph.builder import NetworkBuilder
from repro.graph.cache import (
    cached_keys,
    clear_derived,
    derived_store,
    memoize_on,
)
from repro.graph.citation_network import CitationNetwork
from repro.graph.matrix import (
    StochasticOperator,
    column_stochastic,
    is_column_stochastic,
    shared_operator,
)
from repro.graph.statistics import (
    NetworkSummary,
    citation_age_distribution,
    citations_per_year,
    summarize,
    top_cited,
    yearly_citations,
)
from repro.graph.temporal import (
    chronological_order,
    citation_counts_between,
    citations_in_window,
    papers_published_until,
    prefix_by_count,
    snapshot_at,
)

__all__ = [
    "CitationNetwork",
    "NetworkBuilder",
    "StochasticOperator",
    "column_stochastic",
    "is_column_stochastic",
    "shared_operator",
    "cached_keys",
    "clear_derived",
    "derived_store",
    "memoize_on",
    "NetworkSummary",
    "citation_age_distribution",
    "citations_per_year",
    "summarize",
    "top_cited",
    "yearly_citations",
    "chronological_order",
    "citation_counts_between",
    "citations_in_window",
    "papers_published_until",
    "prefix_by_count",
    "snapshot_at",
]
