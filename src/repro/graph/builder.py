"""Incremental construction of :class:`~repro.graph.CitationNetwork`.

Dataset loaders and the synthetic generator assemble networks paper by
paper; :class:`NetworkBuilder` collects papers, references and metadata,
resolves external identifiers, and applies a configurable policy for
references pointing outside the collection (a routine occurrence in real
bibliographic dumps).
"""

from __future__ import annotations

from typing import Iterable, Literal

from repro.errors import GraphError
from repro.graph.citation_network import CitationNetwork

__all__ = ["NetworkBuilder"]

MissingRefPolicy = Literal["skip", "error"]


class NetworkBuilder:
    """Accumulates papers and references, then builds a network.

    Parameters
    ----------
    missing_references:
        What to do with a reference whose target id was never added:
        ``"skip"`` silently drops it (default, matching how the paper's
        datasets treat out-of-collection references), ``"error"`` raises.

    Examples
    --------
    >>> builder = NetworkBuilder()
    >>> builder.add_paper("a", 1999.0)
    >>> builder.add_paper("b", 2001.0, references=["a"])
    >>> network = builder.build()
    >>> network.n_papers, network.n_citations
    (2, 1)
    """

    def __init__(self, *, missing_references: MissingRefPolicy = "skip") -> None:
        if missing_references not in ("skip", "error"):
            raise GraphError(
                f"unknown missing-reference policy: {missing_references!r}"
            )
        self._policy: MissingRefPolicy = missing_references
        self._base: CitationNetwork | None = None
        self._ids: list[str] = []
        self._index: dict[str, int] = {}
        self._times: list[float] = []
        self._references: list[list[str]] = []
        self._authors: list[tuple[str, ...]] = []
        self._venues: list[str | None] = []
        self._any_author = False
        self._any_venue = False

    @classmethod
    def extending(
        cls,
        base: CitationNetwork,
        *,
        missing_references: MissingRefPolicy = "skip",
    ) -> "NetworkBuilder":
        """A builder that appends papers to an existing snapshot.

        Papers added to the returned builder become *new* papers of the
        extended network; their references may point at base papers, at
        other new papers, or (under the ``"skip"`` policy) outside the
        collection entirely.  :meth:`build` then returns
        ``base.extend(...)`` — the base papers keep their dense indices,
        which is what the warm-start path of :mod:`repro.serve` relies
        on.

        >>> base = NetworkBuilder()
        >>> base.add_paper("a", 1999.0)
        >>> snapshot = base.build()
        >>> delta = NetworkBuilder.extending(snapshot)
        >>> delta.add_paper("b", 2001.0, references=["a"])
        >>> extended = delta.build()
        >>> extended.n_papers, extended.index_of("a")
        (2, 0)
        """
        builder = cls(missing_references=missing_references)
        builder._base = base
        return builder

    def __len__(self) -> int:
        """Number of papers added to *this* builder (base excluded)."""
        return len(self._ids)

    def __contains__(self, paper_id: object) -> bool:
        if paper_id in self._index:
            return True
        return self._base is not None and paper_id in self._base

    def add_paper(
        self,
        paper_id: str,
        publication_time: float,
        *,
        references: Iterable[str] = (),
        authors: Iterable[str] = (),
        venue: str | None = None,
    ) -> None:
        """Register one paper.

        Parameters
        ----------
        paper_id:
            External identifier; must be unique across the collection.
        publication_time:
            Publication time in (fractional) years.
        references:
            External ids of the papers this paper cites.  Targets may be
            added later; resolution happens at :meth:`build` time.
        authors:
            Author names (any hashable strings); shared names are shared
            authors.
        venue:
            Venue name, or ``None`` if unknown.
        """
        pid = str(paper_id)
        if pid in self._index or (self._base is not None and pid in self._base):
            raise GraphError(f"duplicate paper id: {pid!r}")
        self._index[pid] = len(self._ids)
        self._ids.append(pid)
        self._times.append(float(publication_time))
        self._references.append([str(r) for r in references])
        author_tuple = tuple(str(a) for a in authors)
        self._authors.append(author_tuple)
        self._any_author = self._any_author or bool(author_tuple)
        self._venues.append(None if venue is None else str(venue))
        self._any_venue = self._any_venue or venue is not None

    def add_reference(self, citing_id: str, cited_id: str) -> None:
        """Append one reference to an already-registered citing paper.

        In extension mode (:meth:`extending`) the citing paper must be
        one of the *new* papers: the reference lists of base papers were
        fixed when the snapshot was built.
        """
        try:
            index = self._index[str(citing_id)]
        except KeyError:
            raise GraphError(f"unknown citing paper: {citing_id!r}") from None
        self._references[index].append(str(cited_id))

    def build(self, *, validate: bool = True) -> CitationNetwork:
        """Resolve references and produce the immutable network.

        Self-references and duplicate references are removed.  Author
        names and venue names are interned to dense integer indices in
        first-appearance order.  In extension mode (:meth:`extending`)
        the result is ``base.extend(...)`` — base papers keep their
        indices, new papers are appended.
        """
        if self._base is not None:
            return self._build_extension(validate=validate)
        citing: list[int] = []
        cited: list[int] = []
        for source, refs in enumerate(self._references):
            seen: set[int] = set()
            for ref in refs:
                target = self._index.get(ref)
                if target is None:
                    if self._policy == "error":
                        raise GraphError(
                            f"paper {self._ids[source]!r} references unknown "
                            f"paper {ref!r}"
                        )
                    continue
                if target == source or target in seen:
                    continue
                seen.add(target)
                citing.append(source)
                cited.append(target)

        paper_authors = None
        if self._any_author:
            author_index: dict[str, int] = {}
            paper_authors = []
            for names in self._authors:
                row = []
                for name in names:
                    if name not in author_index:
                        author_index[name] = len(author_index)
                    row.append(author_index[name])
                paper_authors.append(tuple(row))

        paper_venues = None
        if self._any_venue:
            venue_index: dict[str, int] = {}
            paper_venues = []
            for name in self._venues:
                if name is None:
                    paper_venues.append(-1)
                    continue
                if name not in venue_index:
                    venue_index[name] = len(venue_index)
                paper_venues.append(venue_index[name])

        return CitationNetwork(
            paper_ids=self._ids,
            publication_times=self._times,
            citing=citing,
            cited=cited,
            paper_authors=paper_authors,
            paper_venues=paper_venues,
            validate=validate,
        )

    def _build_extension(self, *, validate: bool) -> CitationNetwork:
        """Resolve the accumulated delta against the base snapshot."""
        base = self._base
        assert base is not None
        if self._any_author or self._any_venue:
            raise GraphError(
                "extension builders do not accept author/venue metadata; "
                "deltas carry papers and citations only"
            )
        citations: list[tuple[str, str]] = []
        for source, refs in enumerate(self._references):
            citing_id = self._ids[source]
            seen: set[str] = set()
            for ref in refs:
                if ref not in self._index and ref not in base:
                    if self._policy == "error":
                        raise GraphError(
                            f"paper {citing_id!r} references unknown "
                            f"paper {ref!r}"
                        )
                    continue
                if ref == citing_id or ref in seen:
                    continue
                seen.add(ref)
                citations.append((citing_id, ref))
        return base.extend(
            self._ids, self._times, citations, validate=validate
        )
