"""Per-network memoisation of derived ranking structure.

Every grid search of the paper's evaluation (Figures 3-5) re-evaluates
hundreds of parameterisations against the *same* current state
``C(tN)``: the column-stochastic operator ``S``, the attention vector of
a given window, the recency vector of a given decay rate and the
retained adjacency weights of a given ``gamma`` are all functions of the
network alone (plus a scalar hyper-parameter), yet the method objects
used to rebuild them once per grid point.  This module hoists that
structure out of the per-grid-point loop: derived artifacts are memoised
*per network instance*, so the first evaluation pays for construction
and every later one — whether in the same process or in a worker of
:mod:`repro.parallel` — reuses the cached object.

Design notes
------------
* The store is a :class:`weakref.WeakKeyDictionary` keyed by the
  :class:`~repro.graph.CitationNetwork` *instance*.  Networks are
  immutable (their arrays are flagged read-only), so identity is a safe
  cache key, and the weak reference means a network's derived structure
  dies with it — no explicit invalidation is ever needed.
* Cached arrays — and the backing arrays of cached scipy sparse
  matrices — are flagged read-only before they are stored, so a caller
  that mutates shared state fails loudly instead of silently
  corrupting every later evaluation.
* Memoisation never changes numerical results: the factory runs exactly
  the code the call site used to run, so cached and uncached evaluations
  are bit-identical (the property the determinism tests pin down).
"""

from __future__ import annotations

from threading import Lock
from typing import Any, Callable, Hashable, TypeVar
from weakref import WeakKeyDictionary

import numpy as np
import scipy.sparse as sp

__all__ = ["derived_store", "memoize_on", "cached_keys", "clear_derived"]

T = TypeVar("T")

#: network instance -> {cache key -> derived artifact}.
_STORES: "WeakKeyDictionary[Any, dict[Hashable, Any]]" = WeakKeyDictionary()

#: Guards store *creation* only; per-store access is single-threaded in
#: practice (worker processes each hold their own interpreter).
_LOCK = Lock()


def derived_store(network: Any) -> dict[Hashable, Any]:
    """The mutable cache dictionary attached to ``network``.

    Created on first access; garbage-collected with the network.
    """
    with _LOCK:
        store = _STORES.get(network)
        if store is None:
            store = {}
            _STORES[network] = store
        return store


def memoize_on(
    network: Any,
    key: Hashable,
    factory: Callable[[], T],
) -> T:
    """Return the cached value for ``key`` on ``network``, building it once.

    ``factory`` is only invoked on a miss; numpy arrays it returns are
    flagged read-only before being cached — and for scipy sparse
    matrices the backing ``data``/``indices``/``indptr`` arrays are
    frozen likewise — so shared state cannot be mutated by one caller
    under another's feet.  Richer objects (e.g. a cached operator) are
    expected to guard their own internals.
    """
    store = derived_store(network)
    try:
        return store[key]
    except KeyError:
        pass
    value = factory()
    if isinstance(value, np.ndarray):
        value.setflags(write=False)
    elif sp.issparse(value):
        for name in ("data", "indices", "indptr", "row", "col"):
            backing = getattr(value, name, None)
            if isinstance(backing, np.ndarray):
                backing.setflags(write=False)
    store[key] = value
    return value


def cached_keys(network: Any) -> tuple[Hashable, ...]:
    """The cache keys currently materialised for ``network`` (diagnostics)."""
    return tuple(_STORES.get(network, ()))


def clear_derived(network: Any | None = None) -> None:
    """Drop cached structure for one network (or for all, with ``None``).

    Only needed by benchmarks that want to time cold construction;
    regular code relies on the weak references instead.
    """
    if network is None:
        _STORES.clear()
    else:
        _STORES.pop(network, None)
