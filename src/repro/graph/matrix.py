"""Stochastic-matrix machinery shared by all PageRank-style methods.

The paper (Section 2) defines the column-stochastic matrix ``S`` derived
from the citation matrix ``C``:

* ``S[i, j] = 1 / k_j``  if paper ``j`` cites ``k_j`` papers, one of which
  is ``i``;
* ``S[i, j] = 0``        if ``j`` cites papers but not ``i``;
* ``S[i, j] = 1 / |P|``  if ``j`` is *dangling* (cites nothing).

Materialising the dangling columns would make ``S`` dense, so this module
represents ``S`` as a sparse part plus a dangling rank-one correction and
exposes :class:`StochasticOperator` whose :meth:`StochasticOperator.apply`
computes the exact product ``S @ v`` in O(nnz) time.
"""

from __future__ import annotations

from functools import cached_property

import numpy as np
import scipy.sparse as sp

from repro._typing import FloatVector
from repro.errors import GraphError
from repro.graph.cache import memoize_on
from repro.graph.citation_network import CitationNetwork

__all__ = [
    "StochasticOperator",
    "column_stochastic",
    "is_column_stochastic",
    "shared_operator",
]


def column_stochastic(matrix: sp.spmatrix) -> sp.csr_matrix:
    """Normalise the columns of a non-negative sparse matrix to sum to one.

    Columns that sum to zero are left as all-zero (the caller decides how
    to treat dangling nodes).

    Raises
    ------
    GraphError
        If ``matrix`` is not square or contains negative entries.
    """
    if matrix.shape[0] != matrix.shape[1]:
        raise GraphError(f"matrix must be square, got shape {matrix.shape}")
    csr = sp.csr_matrix(matrix, dtype=np.float64)
    if csr.nnz and csr.data.min() < 0:
        raise GraphError("matrix entries must be non-negative")
    col_sums = np.asarray(csr.sum(axis=0)).ravel()
    scale = np.ones_like(col_sums)
    nonzero = col_sums > 0
    scale[nonzero] = 1.0 / col_sums[nonzero]
    return csr @ sp.diags(scale)


def is_column_stochastic(
    matrix: sp.spmatrix,
    *,
    allow_zero_columns: bool = False,
    atol: float = 1e-10,
) -> bool:
    """Return whether every column of ``matrix`` sums to one (within ``atol``).

    With ``allow_zero_columns=True``, all-zero columns are also accepted
    (the dangling-column convention used by the sparse part of ``S``).
    """
    col_sums = np.asarray(sp.csr_matrix(matrix).sum(axis=0)).ravel()
    ok = np.abs(col_sums - 1.0) <= atol
    if allow_zero_columns:
        ok |= np.abs(col_sums) <= atol
    return bool(np.all(ok))


class StochasticOperator:
    """The exact column-stochastic citation operator ``S`` of the paper.

    The operator is stored as ``S = S_sparse + (1/n) * 1 @ d^T`` where
    ``S_sparse`` holds the reference-normalised columns and ``d`` is the
    indicator of dangling papers.  :meth:`apply` evaluates ``S @ v``
    without densifying.

    Parameters
    ----------
    network:
        The citation network whose matrix to build.
    weights:
        Optional per-edge weight vector (aligned with
        ``network.citing`` / ``network.cited``).  Used by time-weighted
        variants (e.g. retained adjacency matrices); defaults to all-ones.
    """

    def __init__(
        self,
        network: CitationNetwork,
        *,
        weights: FloatVector | None = None,
    ) -> None:
        self._n = network.n_papers
        if weights is None:
            data = np.ones(network.n_citations, dtype=np.float64)
        else:
            data = np.asarray(weights, dtype=np.float64)
            if data.shape != (network.n_citations,):
                raise GraphError(
                    "weights must have one entry per citation edge; got "
                    f"{data.shape}, expected ({network.n_citations},)"
                )
            if data.size and data.min() < 0:
                raise GraphError("edge weights must be non-negative")
        raw = sp.csr_matrix(
            (data, (network.cited, network.citing)), shape=(self._n, self._n)
        )
        raw.sum_duplicates()
        self._sparse = column_stochastic(raw)
        col_sums = np.asarray(raw.sum(axis=0)).ravel()
        self._dangling = col_sums == 0.0
        # CSR is efficient for matvec; keep a CSC view for column slicing.
        self._sparse = sp.csr_matrix(self._sparse)

    @property
    def n(self) -> int:
        """Dimension of the operator (number of papers)."""
        return self._n

    @property
    def sparse_part(self) -> sp.csr_matrix:
        """The reference-normalised sparse part of ``S`` (zero dangling cols)."""
        return self._sparse

    @property
    def dangling_mask(self) -> np.ndarray:
        """Boolean mask of dangling (reference-free) papers."""
        return self._dangling

    @cached_property
    def n_dangling(self) -> int:
        """Number of dangling papers."""
        return int(self._dangling.sum())

    def apply(self, vector: FloatVector) -> FloatVector:
        """Compute ``S @ vector`` exactly, including dangling columns.

        The dangling correction redistributes the probability mass sitting
        on dangling papers uniformly: ``(1/n) * sum(vector[dangling])``.
        """
        v = np.asarray(vector, dtype=np.float64)
        if v.shape != (self._n,):
            raise GraphError(
                f"vector has shape {v.shape}, expected ({self._n},)"
            )
        result = self._sparse @ v
        if self.n_dangling:
            result += v[self._dangling].sum() / self._n
        return result

    def dense(self) -> np.ndarray:
        """Materialise ``S`` as a dense array (tests / tiny networks only)."""
        full = self._sparse.toarray()
        if self.n_dangling:
            full[:, self._dangling] = 1.0 / self._n
        return full


def shared_operator(network: CitationNetwork) -> StochasticOperator:
    """The memoised unweighted :class:`StochasticOperator` of ``network``.

    Building ``S`` is the dominant fixed cost of every PageRank-style
    solve (CSR assembly + column normalisation, O(nnz)).  All call sites
    that need the *unweighted* operator — AttRank, PageRank, CiteRank,
    FutureRank, WSDM — go through this accessor, so one grid search
    builds ``S`` once instead of once per grid point.  Weighted variants
    (per-edge retention weights) are not cached here; their weights
    depend on method hyper-parameters and are memoised at their own call
    sites.
    """
    return memoize_on(
        network, ("stochastic_operator",), lambda: StochasticOperator(network)
    )
