"""Fault plans and the process-wide injector.

A :class:`FaultPlan` decides *what* fails: which registered fault
point fires, on which invocation, with which fault class.  Plans are
either pinned (:meth:`FaultPlan.single` — the sweep pins the point and
seeds the rest) or fully seeded (:meth:`FaultPlan.seeded` — one
``random.Random(seed)`` draw over the catalog), and they round-trip
through JSON so a failing CI run is reproducible from the printed
payload alone.

A :class:`FaultInjector` arms a plan process-wide for the duration of
a ``with`` block.  Call sites visit their point via
:func:`repro.chaos.points.chaos_point`; the injector counts
invocations per point (thread-safely — gateway points fire from
executor threads) and manifests the planned fault exactly once.

Crash fidelity
--------------
:class:`InjectedCrash` derives from ``BaseException``, not
``Exception``: a simulated ``kill -9`` must not be swallowed by the
gateway's 500 handler, the coalescer's executor-failure net, or any
other broad ``except Exception`` between the point and the harness.
The save paths' crash-time cleanup was likewise rewritten from
``finally`` to ``except Exception`` so an injected crash leaves the
same on-disk debris a real kill would — which is exactly what the
orphan-cleanup invariant then has to survive.
"""

from __future__ import annotations

import json
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.chaos import points as _points
from repro.chaos.points import FAULT_POINTS, FaultPoint, fault_point
from repro.errors import ChaosError

__all__ = [
    "InjectedCrash",
    "InjectedDisconnect",
    "FaultSpec",
    "FaultPlan",
    "FiredFault",
    "FaultInjector",
]


class InjectedCrash(BaseException):
    """A simulated process kill at a fault point.

    Deliberately a ``BaseException``: no ``except Exception`` handler
    between the fault point and the harness may absorb it, mirroring
    how a real ``SIGKILL`` ends the process no matter what the code
    around it intended to handle.
    """

    def __init__(self, point: str, invocation: int) -> None:
        super().__init__(
            f"injected crash at {point} (invocation {invocation})"
        )
        self.point = point
        self.invocation = invocation


class InjectedDisconnect(ConnectionResetError):
    """A simulated peer reset at a gateway socket fault point.

    Subclasses ``ConnectionResetError`` so the gateway's existing
    connection-error handling treats it exactly like a real client
    drop — no chaos-aware branches in production code.
    """

    def __init__(self, point: str, invocation: int) -> None:
        super().__init__(
            f"injected disconnect at {point} (invocation {invocation})"
        )
        self.point = point
        self.invocation = invocation


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault: fire ``kind`` at ``point``'s ``invocation``."""

    point: str
    kind: str
    invocation: int
    delay_seconds: float = 0.05

    def __post_init__(self) -> None:
        declared = fault_point(self.point)  # raises on unknown points
        if self.kind not in declared.kinds:
            raise ChaosError(
                f"fault point {self.point!r} does not support kind "
                f"{self.kind!r} (declared: {list(declared.kinds)})"
            )
        if self.invocation < 0:
            raise ChaosError(
                f"invocation must be >= 0, got {self.invocation}"
            )
        if self.delay_seconds < 0:
            raise ChaosError(
                f"delay_seconds must be >= 0, got {self.delay_seconds}"
            )

    def to_payload(self) -> dict[str, Any]:
        return {
            "point": self.point,
            "kind": self.kind,
            "invocation": self.invocation,
            "delay_seconds": self.delay_seconds,
        }


@dataclass(frozen=True)
class FiredFault:
    """A fault the injector actually manifested."""

    point: str
    kind: str
    invocation: int


@dataclass(frozen=True)
class FaultPlan:
    """The full failure schedule of one harness run.

    Attributes
    ----------
    specs:
        The planned faults (each fires at most once).  The sweep uses
        single-spec plans — one failure per run keeps every invariant
        attributable to one fault.
    seed:
        The seed that produced the plan (``None`` for pinned plans);
        carried in reports so a failing run names its reproduction.
    """

    specs: tuple[FaultSpec, ...]
    seed: int | None = None

    @classmethod
    def single(
        cls,
        point: str,
        *,
        kind: str | None = None,
        invocation: int = 0,
        delay_seconds: float = 0.05,
        seed: int | None = None,
    ) -> "FaultPlan":
        """A plan firing one fault at ``point``.

        ``kind`` defaults to the point's first declared kind.
        """
        declared = fault_point(point)
        chosen = declared.kinds[0] if kind is None else kind
        return cls(
            specs=(
                FaultSpec(
                    point=point,
                    kind=chosen,
                    invocation=invocation,
                    delay_seconds=delay_seconds,
                ),
            ),
            seed=seed,
        )

    @classmethod
    def seeded(
        cls,
        seed: int,
        *,
        point: str | None = None,
        catalog: Sequence[FaultPoint] = FAULT_POINTS,
    ) -> "FaultPlan":
        """One seeded draw over the catalog.

        With ``point`` pinned (the sweep pins it to cover every point)
        the seed still chooses the fault kind and the firing
        invocation — bounded by the point's ``max_invocation`` so no
        seed draws an invocation the scenario never reaches.
        """
        rng = random.Random(seed)
        if point is None:
            declared = catalog[rng.randrange(len(catalog))]
        else:
            declared = fault_point(point)
        kind = declared.kinds[rng.randrange(len(declared.kinds))]
        invocation = rng.randrange(declared.max_invocation + 1)
        return cls(
            specs=(
                FaultSpec(
                    point=declared.name,
                    kind=kind,
                    invocation=invocation,
                ),
            ),
            seed=seed,
        )

    def to_payload(self) -> dict[str, Any]:
        """The JSON object ``repro chaos plan`` prints."""
        return {
            "format": "repro-chaos-plan",
            "seed": self.seed,
            "specs": [spec.to_payload() for spec in self.specs],
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_payload` output."""
        if payload.get("format") != "repro-chaos-plan":
            raise ChaosError(
                "not a chaos plan payload (missing format marker)"
            )
        try:
            raw_specs = payload["specs"]
            specs = tuple(
                FaultSpec(
                    point=str(raw["point"]),
                    kind=str(raw["kind"]),
                    invocation=int(raw["invocation"]),
                    delay_seconds=float(raw.get("delay_seconds", 0.05)),
                )
                for raw in raw_specs
            )
            raw_seed = payload.get("seed")
            seed = None if raw_seed is None else int(raw_seed)
        except (KeyError, TypeError, ValueError) as error:
            raise ChaosError(
                f"malformed chaos plan payload ({error!r})"
            ) from None
        return cls(specs=specs, seed=seed)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return json.dumps(self.to_payload())


@dataclass
class FaultInjector:
    """Arm a :class:`FaultPlan` process-wide for a ``with`` block.

    The injector is the only mutable piece of the chaos plane: it
    counts invocations per fault point (under a lock — gateway points
    are visited from executor threads and the event-loop thread
    concurrently) and manifests each planned fault exactly once,
    recording it in :attr:`fired`.

    Only one injector may be armed at a time; nesting is refused with
    :class:`~repro.errors.ChaosError` rather than silently merging two
    failure schedules.
    """

    plan: FaultPlan
    fired: list[FiredFault] = field(default_factory=list)
    invocations: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._lock = threading.Lock()
        self._remaining = list(self.plan.specs)

    # ------------------------------------------------------------------
    # Arming
    # ------------------------------------------------------------------
    def __enter__(self) -> "FaultInjector":
        if _points._ARMED is not None:
            raise ChaosError(
                "a FaultInjector is already armed in this process; "
                "chaos plans do not nest"
            )
        _points._ARMED = self
        return self

    def __exit__(self, *exc_info: Any) -> None:
        _points._ARMED = None

    # ------------------------------------------------------------------
    # The visit path (called from chaos_point)
    # ------------------------------------------------------------------
    def _visit(self, name: str) -> FaultSpec | None:
        with self._lock:
            invocation = self.invocations.get(name, 0)
            self.invocations[name] = invocation + 1
            matched: FaultSpec | None = None
            for spec in self._remaining:
                if spec.point == name and spec.invocation == invocation:
                    matched = spec
                    break
            if matched is None:
                return None
            self._remaining.remove(matched)
            self.fired.append(
                FiredFault(
                    point=name,
                    kind=matched.kind,
                    invocation=invocation,
                )
            )
        if matched.kind == "crash":
            raise InjectedCrash(name, invocation)
        if matched.kind == "disconnect":
            raise InjectedDisconnect(name, invocation)
        if matched.kind == "delay":
            time.sleep(matched.delay_seconds)
            return None
        return matched  # "torn": the call site manifests it
