"""The fault-point catalog and the hot-path trampoline.

A *fault point* is a named location in a real code path where the
chaos harness may inject a failure: the checkpoint commit protocol's
tmp-write/fsync/``os.replace`` boundaries, the micro-batch apply and
snapshot-swap sites, the ``.npz`` read/write paths, and the gateway's
socket read/write.  Each site calls :func:`chaos_point` with its
registered name; when no :class:`~repro.chaos.FaultInjector` is armed
this is a single module-global ``None`` check — the production hot
path pays one comparison, nothing else (the ``obs_overhead`` bench
scenario holds the serving stack to that).

The catalog below is *static* and *closed*: a seeded
:class:`~repro.chaos.FaultPlan` enumerates it to choose which point
fires, and the CI sweep iterates it so every registered point is
exercised on every run.  Adding a fault point means adding it here
*and* threading the one-line call into the code path — the
``test_chaos_points`` suite cross-checks that every catalog entry is
reachable by its scenario.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import for annotations only
    from repro.chaos.faults import FaultInjector, FaultSpec

__all__ = ["FaultPoint", "FAULT_POINTS", "fault_point", "chaos_point"]

#: Fault kinds a point may declare:
#:
#: ``crash``
#:     Simulated process kill at the point — raises
#:     :class:`~repro.chaos.InjectedCrash` (a ``BaseException``, so no
#:     ``except Exception`` handler on the way out can swallow it, and
#:     ``finally``-style cleanup the real ``kill -9`` would skip is
#:     kept out of the crash path on purpose).
#: ``disconnect``
#:     Simulated peer reset — raises
#:     :class:`~repro.chaos.InjectedDisconnect` (a
#:     ``ConnectionResetError``), which the gateway's connection
#:     handlers treat exactly like a real client drop.
#: ``torn``
#:     Returned to the call site, which writes a deliberately partial
#:     response before dropping the connection (only the gateway
#:     response writer declares it).
#: ``delay``
#:     Sleeps ``FaultSpec.delay_seconds`` at the point, then continues
#:     normally — for holding a batch in flight while a drain starts.
KINDS = ("crash", "disconnect", "torn", "delay")


@dataclass(frozen=True)
class FaultPoint:
    """One registered injection site.

    Attributes
    ----------
    name:
        Dotted identifier, unique in the catalog (``"checkpoint.commit"``).
    module:
        The module whose code path hosts the call.
    description:
        What failing *here* simulates.
    kinds:
        Fault kinds meaningful at this site (subset of :data:`KINDS`).
    scenario:
        Which harness scenario exercises the point: ``"checkpoint"``
        (replay/crash/resume) or ``"gateway"`` (load + drain).
    max_invocation:
        Upper bound (inclusive) a seeded plan may choose for the
        firing invocation — points the scenario only reaches a few
        times keep this small so no seed produces a vacuous run.
    """

    name: str
    module: str
    description: str
    kinds: tuple[str, ...]
    scenario: str
    max_invocation: int = 2

    def __post_init__(self) -> None:
        unknown = set(self.kinds) - set(KINDS)
        if unknown:
            raise ValueError(
                f"fault point {self.name!r} declares unknown kinds "
                f"{sorted(unknown)}"
            )


#: Every injection site threaded into the codebase, in path order.
FAULT_POINTS: tuple[FaultPoint, ...] = (
    # --- serve/score_index.py: the .npz write path -------------------
    FaultPoint(
        name="index.save.write",
        module="repro.serve.score_index",
        description=(
            "crash after the temp .npz is written but before fsync — "
            "page cache holds bytes the disk may not"
        ),
        kinds=("crash",),
        scenario="checkpoint",
    ),
    FaultPoint(
        name="index.save.fsync",
        module="repro.serve.score_index",
        description=(
            "crash after fsync but before os.replace — a durable temp "
            "file that was never committed"
        ),
        kinds=("crash",),
        scenario="checkpoint",
    ),
    FaultPoint(
        name="index.save.replace",
        module="repro.serve.score_index",
        description=(
            "crash immediately after os.replace — the index file is "
            "committed but nothing after it ran"
        ),
        kinds=("crash",),
        scenario="checkpoint",
    ),
    FaultPoint(
        name="index.load",
        module="repro.serve.score_index",
        description=(
            "crash at .npz read time — a restart that dies while "
            "reloading its serving state must leave the files reusable"
        ),
        kinds=("crash",),
        scenario="checkpoint",
        max_invocation=1,
    ),
    FaultPoint(
        name="index.refresh.swap",
        module="repro.serve.score_index",
        description=(
            "crash after every method re-solved but before the index "
            "swaps network/entries/version — the old version must keep "
            "serving"
        ),
        kinds=("crash",),
        scenario="checkpoint",
    ),
    # --- stream/checkpoint.py: the commit protocol -------------------
    FaultPoint(
        name="checkpoint.index_written",
        module="repro.stream.checkpoint",
        description=(
            "crash after the version-suffixed index file landed but "
            "before the manifest — the previous checkpoint must still "
            "load"
        ),
        kinds=("crash",),
        scenario="checkpoint",
    ),
    FaultPoint(
        name="checkpoint.manifest_tmp",
        module="repro.stream.checkpoint",
        description=(
            "crash after the manifest temp file is written but before "
            "os.replace — the orphaned *.tmp must be cleaned up by the "
            "next commit"
        ),
        kinds=("crash",),
        scenario="checkpoint",
    ),
    FaultPoint(
        name="checkpoint.commit",
        module="repro.stream.checkpoint",
        description=(
            "crash after the manifest rename (the commit point) but "
            "before superseded index files are pruned"
        ),
        kinds=("crash",),
        scenario="checkpoint",
    ),
    # --- stream/ingest.py: the micro-batch apply ---------------------
    FaultPoint(
        name="stream.step.apply",
        module="repro.stream.ingest",
        description=(
            "crash after the batch is cut but before any serving "
            "state mutates — a resume must consume the same events"
        ),
        kinds=("crash",),
        scenario="checkpoint",
    ),
    FaultPoint(
        name="stream.step.advance",
        module="repro.stream.ingest",
        description=(
            "crash after the batch applied but before the offset and "
            "prefix hash advance — the classic half-applied update"
        ),
        kinds=("crash",),
        scenario="checkpoint",
    ),
    # --- serve/shard.py: the store generation swap -------------------
    FaultPoint(
        name="shard.sync.swap",
        module="repro.serve.shard",
        description=(
            "crash after the new shard generation is assembled but "
            "before the StoreSnapshot swap — index and store versions "
            "diverge until the next read recovers"
        ),
        kinds=("crash",),
        scenario="checkpoint",
    ),
    # --- gateway: sockets and the live write path --------------------
    FaultPoint(
        name="gateway.request.read",
        module="repro.gateway.server",
        description=(
            "client connection reset while its request is being read"
        ),
        kinds=("disconnect",),
        scenario="gateway",
        max_invocation=8,
    ),
    FaultPoint(
        name="gateway.response.write",
        module="repro.gateway.server",
        description=(
            "connection lost mid-response: dropped before any bytes "
            "(disconnect) or after half the body (torn) — a client "
            "must never parse a partial body as a complete answer"
        ),
        kinds=("disconnect", "torn"),
        scenario="gateway",
        max_invocation=8,
    ),
    FaultPoint(
        name="gateway.update.step",
        module="repro.gateway.updates",
        description=(
            "updater killed mid-micro-batch while holding the "
            "coalescer lock — reads must keep serving one untorn "
            "version"
        ),
        kinds=("crash",),
        scenario="gateway",
        max_invocation=2,
    ),
    FaultPoint(
        name="gateway.batch.execute",
        module="repro.gateway.coalesce",
        description=(
            "a coalesced engine batch held in flight while a drain "
            "may be starting — admitted work must still complete"
        ),
        kinds=("delay",),
        scenario="gateway",
        max_invocation=4,
    ),
    # --- gateway/workers.py: the pre-fork worker fleet ---------------
    FaultPoint(
        name="gateway.worker",
        module="repro.gateway.workers",
        description=(
            "a worker process killed mid-serve (the armed plan forks "
            "into the child and fires in its heartbeat loop) — the "
            "supervisor must restart it, siblings must keep answering "
            "on the shared port, and no shared-memory segment may leak"
        ),
        kinds=("crash",),
        scenario="worker",
        max_invocation=8,
    ),
)

_BY_NAME = {point.name: point for point in FAULT_POINTS}


def fault_point(name: str) -> FaultPoint:
    """Look up a catalog entry; unknown names are a harness bug."""
    from repro.errors import ChaosError

    try:
        return _BY_NAME[name]
    except KeyError:
        known = ", ".join(sorted(_BY_NAME))
        raise ChaosError(
            f"unknown fault point {name!r} (registered: {known})"
        ) from None


#: The armed injector, or ``None`` — the disarmed fast path is this
#: one global read.  Arming is process-wide on purpose: faults must
#: fire inside executor threads and the asyncio loop alike.
_ARMED: Optional["FaultInjector"] = None


def chaos_point(name: str) -> Optional["FaultSpec"]:
    """Visit a fault point; no-op (one ``None`` check) when disarmed.

    When an injector is armed and its plan fires here, the effect
    depends on the fault kind: ``crash`` and ``disconnect`` raise from
    inside this call; ``delay`` sleeps and returns ``None``; ``torn``
    returns the matched :class:`~repro.chaos.FaultSpec` so the call
    site can write its deliberately partial response.  All other
    visits return ``None``.
    """
    if _ARMED is None:
        return None
    return _ARMED._visit(name)
