"""Scenario drivers: run the full stack under a fault plan.

Three scenarios cover the catalog:

``checkpoint``
    Replay a synthetic citation stream through
    :class:`~repro.stream.StreamIngestor`, checkpointing after every
    micro-batch, with the planned fault armed.  Every
    :class:`~repro.chaos.InjectedCrash` simulates a process kill: the
    in-memory ingestor is discarded and a "new process" resumes from
    the on-disk checkpoint (or from scratch when none committed yet).
    Invariants: the on-disk checkpoint is *never torn* (absent or
    fully loadable, at every crash), the finalized scores are
    **bit-identical** to an unfaulted :func:`~repro.stream.ingest.batch_compute`
    over the same log, and a post-run commit leaves no orphaned
    ``*.tmp`` debris.  An unconditional mid-replay *restart drill*
    (drop the ingestor, probe and resume the checkpoint) keeps the
    load-path fault points reachable in every run, crash or not.

``gateway``
    Serve the stream's bootstrap through a real
    :class:`~repro.gateway.GatewayServer` over real sockets while a
    live updater applies the rest, with reconnect-tolerant clients
    issuing mixed traffic under the armed plan, then drain.
    Invariants: no 5xx is ever emitted, every completed response
    parses as a complete document (a torn body must surface as a
    short read, never as a parseable answer), every 200 response is
    bit-identical to a direct service call at its reported version
    (deterministic-replica verification, as in
    :mod:`repro.gateway.loadgen`), an injected updater crash is
    contained by the drain, and a drained port refuses new
    connections.

``worker``
    Serve the same workload through a pre-forked
    :class:`~repro.gateway.MultiWorkerGateway` fleet (two
    ``SO_REUSEPORT`` workers over one shared-memory store) with the
    plan armed *before* the fork, so the ``gateway.worker`` crash
    fires inside the children and kills real processes mid-serve.
    Invariants: the supervisor restarts every crashed worker, every
    planned request is eventually answered (clients reconnect through
    the zero-listener window), every response parses cleanly and is
    bit-identical at its reported version, and after the drain no
    ``repro_shm_*`` segment remains in ``/dev/shm``.

The scenarios are deterministic given ``(plan, seed)``; the sweep
pins the fault point and lets the seed choose fault kind, firing
invocation, and workload, so ``repro chaos sweep --seeds 5`` exercises
every registered point under five independent schedules.
"""

from __future__ import annotations

import asyncio
import json
import os
import shutil
import tempfile
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Any, Sequence

import numpy as np

from repro.chaos.faults import FaultInjector, FaultPlan, InjectedCrash
from repro.chaos.points import FAULT_POINTS, FaultPoint, fault_point
from repro.errors import ChaosError, DataFormatError, ReproError
from repro.gateway.loadgen import (
    _client_plans,
    _read_response,
    _ReplicaAtVersion,
    _target_of,
    _verify_records,
)
from repro.gateway.server import GatewayConfig, GatewayServer
from repro.serve.score_index import ScoreIndex
from repro.stream.checkpoint import CHECKPOINT_FILE, Checkpoint
from repro.stream.events import EventLog
from repro.stream.ingest import StreamIngestor, batch_compute
from repro.synth.profiles import generate_dataset

__all__ = [
    "ScenarioReport",
    "run_plan",
    "run_checkpoint_scenario",
    "run_gateway_scenario",
    "run_worker_scenario",
    "sweep",
]

#: Report schema version of the sweep JSON document.
REPORT_FORMAT = "repro-chaos-report"

#: The chaos workload: small enough that a full sweep stays in CI
#: budget, large enough that replays cut several micro-batches and
#: the gateway's updater publishes several versions.
CHAOS_METHODS = ("AR", "CC")
CHAOS_PAPERS = 90
CHAOS_BATCH = 16

#: Restart budget — a plan fires once, so anything past a handful of
#: restarts is a harness bug, not a legitimate schedule.
_MAX_RESTARTS = 25


@lru_cache(maxsize=16)
def _seed_fixtures(seed: int) -> tuple[EventLog, ScoreIndex]:
    """The workload of one seed: its event log and unfaulted reference.

    Cached so a sweep prices the reference solve once per seed, not
    once per (seed, point) run.  Both objects are treated as
    read-only by every scenario.
    """
    network = generate_dataset(
        "hep-th", n_papers=CHAOS_PAPERS, seed=10_000 + seed
    )
    log = EventLog.from_network(network)
    return log, batch_compute(log, CHAOS_METHODS)


@dataclass
class ScenarioReport:
    """The outcome of one harness run under one plan.

    ``invariants`` maps invariant name to pass/fail; a run is
    :attr:`ok` when every invariant held.  ``details`` carries the
    evidence (crash counts, resume sources, verification tallies) a
    failing CI artifact needs to be diagnosed without a rerun.
    """

    scenario: str
    point: str
    kind: str
    invocation: int
    seed: int | None
    fired: bool
    invariants: dict[str, bool] = field(default_factory=dict)
    details: dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.fired and all(self.invariants.values())

    def to_payload(self) -> dict[str, Any]:
        return {
            "scenario": self.scenario,
            "point": self.point,
            "kind": self.kind,
            "invocation": self.invocation,
            "seed": self.seed,
            "fired": self.fired,
            "ok": self.ok,
            "invariants": dict(self.invariants),
            "details": dict(self.details),
        }


def _single_spec(plan: FaultPlan):
    if len(plan.specs) != 1:
        raise ChaosError(
            "scenario runs take single-fault plans (one failure per "
            f"run keeps invariants attributable); got {len(plan.specs)}"
        )
    return plan.specs[0]


# ----------------------------------------------------------------------
# The checkpoint scenario
# ----------------------------------------------------------------------
def run_checkpoint_scenario(
    plan: FaultPlan, *, seed: int = 0, workdir: str | None = None
) -> ScenarioReport:
    """Replay + crash + resume; see the module docstring."""
    spec = _single_spec(plan)
    log, reference = _seed_fixtures(seed)
    owns_workdir = workdir is None
    if workdir is None:
        workdir = tempfile.mkdtemp(prefix="repro-chaos-")
    ckpt_dir = os.path.join(workdir, f"ckpt-{spec.point}-s{seed}")
    shutil.rmtree(ckpt_dir, ignore_errors=True)

    report = ScenarioReport(
        scenario="checkpoint",
        point=spec.point,
        kind=spec.kind,
        invocation=spec.invocation,
        seed=plan.seed if plan.seed is not None else seed,
        fired=False,
    )
    crashes = 0
    resumed: list[str] = []
    checkpoint_torn = False

    def fresh() -> StreamIngestor:
        return StreamIngestor(log, CHAOS_METHODS, batch_size=CHAOS_BATCH)

    def probe() -> None:
        """The torn-checkpoint check: absent is fine, torn is not."""
        if not os.path.exists(os.path.join(ckpt_dir, CHECKPOINT_FILE)):
            return
        state = Checkpoint.load(ckpt_dir)
        state.verify_against(log)
        state.load_index(ckpt_dir)

    def restart() -> StreamIngestor:
        """A simulated process restart: disk is all that survives."""
        try:
            ingestor = StreamIngestor.resume(ckpt_dir, log)
            resumed.append("checkpoint")
            return ingestor
        except DataFormatError:
            # No committed checkpoint yet — boot from scratch.
            resumed.append("scratch")
            return fresh()

    try:
        with FaultInjector(plan) as injector:
            ingestor = fresh()
            drilled = False
            done = False
            while not done:
                try:
                    while not ingestor.exhausted:
                        ingestor.step()
                        ingestor.checkpoint(ckpt_dir)
                        if not drilled and ingestor.batches_applied >= 2:
                            # Restart drill: exercises the manifest and
                            # index *load* path in every run, so the
                            # load-side fault points are reachable even
                            # on schedules that never crash elsewhere.
                            drilled = True
                            probe()
                            ingestor = restart()
                    ingestor.finalize()
                    # Post-run commit: this is the "next commit attempt"
                    # that must sweep any tmp debris a crash left.
                    ingestor.checkpoint(ckpt_dir)
                    done = True
                except InjectedCrash:
                    crashes += 1
                    if crashes > _MAX_RESTARTS:
                        raise ChaosError(
                            "checkpoint scenario exceeded its restart "
                            "budget — the plan fired more than once?"
                        ) from None
                    try:
                        probe()
                    except ReproError as error:
                        checkpoint_torn = True
                        report.details["torn_checkpoint"] = str(error)
                    ingestor = restart()
            report.fired = len(injector.fired) == 1

        final = ingestor.index
        identical = all(
            np.array_equal(reference.scores(m), final.scores(m))
            for m in CHAOS_METHODS
        )
        leftovers = sorted(
            name for name in os.listdir(ckpt_dir) if ".tmp" in name
        )
        report.invariants = {
            "checkpoint_never_torn": not checkpoint_torn,
            "bit_identical_scores": identical,
            "no_orphaned_tmp_files": not leftovers,
        }
        report.details.update(
            {
                "crashes": crashes,
                "resumed": resumed,
                "batches_applied": ingestor.batches_applied,
                "tmp_leftovers": leftovers,
            }
        )
    finally:
        if owns_workdir:
            shutil.rmtree(workdir, ignore_errors=True)
    return report


# ----------------------------------------------------------------------
# The gateway scenario
# ----------------------------------------------------------------------
async def _chaos_client(
    host: str,
    port: int,
    requests: Sequence[dict[str, Any]],
    records: list[dict[str, Any]],
    drops: list[str],
    parse_failures: list[str],
    *,
    attempts: int = 6,
    retry_delay: float = 0.0,
) -> None:
    """A reconnect-tolerant keep-alive client.

    A real client retries through connection loss; what it must never
    do is accept a torn body as an answer.  Short reads and resets
    reconnect and retry the same request; a body that reads complete
    but fails to parse is recorded as a violation, not retried.

    The worker scenario passes a nonzero ``retry_delay`` (and a larger
    ``attempts`` budget): when every worker of a fleet crashes at once
    there is a window with *zero* listeners, and an instant-retry
    client would burn its whole budget inside it.
    """
    reader = writer = None
    try:
        for request in requests:
            for _attempt in range(attempts):
                try:
                    if writer is None:
                        reader, writer = await asyncio.open_connection(
                            host, port
                        )
                    target = _target_of(request)
                    writer.write(
                        (
                            f"GET {target} HTTP/1.1\r\n"
                            f"Host: {host}\r\n"
                            "Connection: keep-alive\r\n\r\n"
                        ).encode("latin-1")
                    )
                    await writer.drain()
                    assert reader is not None
                    status, _headers, document = await _read_response(
                        reader
                    )
                except (
                    ConnectionResetError,
                    BrokenPipeError,
                    ConnectionRefusedError,
                    asyncio.IncompleteReadError,
                ) as error:
                    drops.append(type(error).__name__)
                    if writer is not None:
                        writer.close()
                    reader = writer = None
                    if retry_delay:
                        await asyncio.sleep(retry_delay)
                    continue
                except ValueError as error:
                    # Complete by content-length but not parseable:
                    # the torn-response invariant just failed.
                    parse_failures.append(str(error))
                    if writer is not None:
                        writer.close()
                    reader = writer = None
                    break
                records.append(
                    {
                        "request": dict(request),
                        "status": status,
                        "version": document.get("version"),
                        "result": document.get("result"),
                        "error": document.get("error"),
                    }
                )
                break
    finally:
        if writer is not None:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass


def run_gateway_scenario(
    plan: FaultPlan, *, seed: int = 0
) -> ScenarioReport:
    """Load + live updates + drain under a plan; see the module docstring."""
    spec = _single_spec(plan)
    log, _ = _seed_fixtures(seed)
    bootstrap = max(1, len(log) // 2)

    def make_ingestor() -> StreamIngestor:
        return StreamIngestor(
            log,
            CHAOS_METHODS,
            batch_size=24,
            bootstrap_size=bootstrap,
        )

    ingestor = make_ingestor()
    ingestor.step()  # bootstrap: version 0
    service = ingestor.service
    network = service.index.network
    times = network.publication_times
    year_span = (float(times.min()), float(times.max()))
    # Bootstrap-era papers only: present at every observable version.
    sample = list(network.paper_ids[:: max(1, network.n_papers // 32)])
    client_plans = _client_plans(
        CHAOS_METHODS,
        sample,
        year_span,
        clients=3,
        requests_per_client=12,
        seed=seed,
    )
    server = GatewayServer(
        service,
        config=GatewayConfig(
            port=0, update_interval=0.0, drain_seconds=10.0
        ),
        ingestor=ingestor,
    )

    report = ScenarioReport(
        scenario="gateway",
        point=spec.point,
        kind=spec.kind,
        invocation=spec.invocation,
        seed=plan.seed if plan.seed is not None else seed,
        fired=False,
    )
    records: list[dict[str, Any]] = []
    drops: list[str] = []
    parse_failures: list[str] = []

    async def drive() -> bool:
        await server.start()
        assert server.port is not None
        host = server.config.host
        await asyncio.gather(
            *(
                _chaos_client(
                    host, server.port, plan_, records, drops,
                    parse_failures,
                )
                for plan_ in client_plans
            )
        )
        await server.stop()
        # A drained gateway must refuse, not hang or half-answer.
        try:
            _, probe_writer = await asyncio.open_connection(
                host, server.port
            )
        except (ConnectionRefusedError, OSError):
            return True
        probe_writer.close()
        return False

    with FaultInjector(plan) as injector:
        refused_after_drain = asyncio.run(drive())
        report.fired = len(injector.fired) == 1

    status_counts = dict(server.metrics.responses_by_status)
    server_5xx = sum(
        count for status, count in status_counts.items() if status >= 500
    )
    client_5xx = sum(1 for r in records if r["status"] >= 500)
    verified, mismatches = _verify_records(
        records, _ReplicaAtVersion(make_ingestor())
    )
    report.invariants = {
        "no_5xx_emitted": server_5xx == 0 and client_5xx == 0,
        "responses_parse_cleanly": not parse_failures,
        "responses_bit_identical": mismatches == 0 and verified > 0,
        "all_requests_answered": len(records)
        == sum(len(p) for p in client_plans),
        "drained_port_refuses": refused_after_drain,
    }
    if spec.point == "gateway.update.step":
        # The injected kill lands inside the coalescer lock; the drain
        # must contain it rather than re-raise it into stop().
        report.invariants["updater_crash_contained"] = isinstance(
            server.updater_error, InjectedCrash
        )
    report.details.update(
        {
            "responses": len(records),
            "drops": drops,
            "status_counts": {
                str(k): v for k, v in sorted(status_counts.items())
            },
            "verified_responses": verified,
            "mismatched_responses": mismatches,
            "updates_applied": server.metrics.updates_applied,
            "updater_error": (
                type(server.updater_error).__name__
                if server.updater_error is not None
                else None
            ),
        }
    )
    return report


# ----------------------------------------------------------------------
# The worker-fleet scenario
# ----------------------------------------------------------------------
def run_worker_scenario(
    plan: FaultPlan, *, seed: int = 0
) -> ScenarioReport:
    """Kill pre-forked gateway workers under load; see the docstring.

    The armed plan forks into every worker (the fleet uses the fork
    start method), so the ``gateway.worker`` crash fires inside the
    children — the parent's injector never sees it, and "the fault
    fired" is read back as *the supervisor counted restarts*.  Both
    initial workers inherit the same schedule and die near-together;
    replacements are forked disarmed, so the fault fires exactly once
    per original worker instead of looping forever.
    """
    spec = _single_spec(plan)
    from repro.gateway.workers import MultiWorkerGateway
    from repro.serve.shm import iter_repro_segments

    log, _ = _seed_fixtures(seed)
    bootstrap = max(1, len(log) // 2)

    def make_ingestor() -> StreamIngestor:
        return StreamIngestor(
            log,
            CHAOS_METHODS,
            batch_size=24,
            bootstrap_size=bootstrap,
        )

    ingestor = make_ingestor()
    ingestor.step()  # bootstrap: version 0
    service = ingestor.service
    network = service.index.network
    times = network.publication_times
    year_span = (float(times.min()), float(times.max()))
    sample = list(network.paper_ids[:: max(1, network.n_papers // 32)])
    client_plans = _client_plans(
        CHAOS_METHODS,
        sample,
        year_span,
        clients=3,
        requests_per_client=12,
        seed=seed,
    )
    segments_before = list(iter_repro_segments())
    gateway = MultiWorkerGateway(
        service,
        workers=2,
        # Profiling on at a brisk rate: the worker-kill scenario is
        # also the proof that the fleet profile survives a restart
        # (the replacement's samples merge under the same keys).
        config=GatewayConfig(
            port=0,
            update_interval=0.0,
            drain_seconds=10.0,
            profile=True,
            profile_hz=199.0,
        ),
        ingestor=ingestor,
    )

    report = ScenarioReport(
        scenario="worker",
        point=spec.point,
        kind=spec.kind,
        invocation=spec.invocation,
        seed=plan.seed if plan.seed is not None else seed,
        fired=False,
    )
    records: list[dict[str, Any]] = []
    drops: list[str] = []
    parse_failures: list[str] = []

    with FaultInjector(plan):
        gateway.start()  # workers fork with the plan armed
        try:
            gateway.start_supervision_thread(interval=0.005)
            assert gateway.port is not None

            async def drive() -> None:
                await asyncio.gather(
                    *(
                        _chaos_client(
                            gateway.config.host, gateway.port, plan_,
                            records, drops, parse_failures,
                            attempts=60, retry_delay=0.05,
                        )
                        for plan_ in client_plans
                    )
                )

            asyncio.run(drive())
            # Before stop(): the fleet profile must aggregate cleanly
            # with a replacement worker in the fleet — merged stack
            # counts from the survivor plus the restarted process.
            fleet_profile = gateway.aggregate_profile()
        finally:
            fleet = gateway.stop()
    report.fired = gateway.restarts >= 1

    segments_after = [
        name
        for name in iter_repro_segments()
        if name not in segments_before
    ]
    verified, mismatches = _verify_records(
        records, _ReplicaAtVersion(make_ingestor())
    )
    report.invariants = {
        "supervisor_restarted": gateway.restarts >= 1,
        "all_requests_answered": len(records)
        == sum(len(p) for p in client_plans),
        "responses_parse_cleanly": not parse_failures,
        "responses_bit_identical": mismatches == 0 and verified > 0,
        "no_shm_leak": not segments_after,
        "profiler_survives_restart": (
            fleet_profile["enabled"]
            and fleet_profile["profile"] is not None
            and fleet_profile["profile"]["samples_total"] > 0
            and all(
                w["scraped"] for w in fleet_profile["workers"]
            )
        ),
    }
    report.details.update(
        {
            "responses": len(records),
            "drops": drops,
            "worker_restarts": gateway.restarts,
            "verified_responses": verified,
            "mismatched_responses": mismatches,
            "updates_applied": gateway.updates_applied,
            "shm_leftovers": segments_after,
            "profile_samples": (
                fleet_profile["profile"]["samples_total"]
                if fleet_profile["profile"]
                else 0
            ),
            "profile_workers": fleet_profile["workers"],
            "fleet_5xx": (
                fleet["responses"]["errors_5xx"]
                if fleet is not None
                else None
            ),
        }
    )
    return report


# ----------------------------------------------------------------------
# Dispatch and the sweep
# ----------------------------------------------------------------------
def run_plan(
    plan: FaultPlan, *, seed: int = 0, workdir: str | None = None
) -> ScenarioReport:
    """Run the scenario that owns the plan's fault point."""
    spec = _single_spec(plan)
    declared = fault_point(spec.point)
    if declared.scenario == "checkpoint":
        return run_checkpoint_scenario(plan, seed=seed, workdir=workdir)
    if declared.scenario == "worker":
        return run_worker_scenario(plan, seed=seed)
    assert declared.scenario == "gateway"
    return run_gateway_scenario(plan, seed=seed)


def sweep(
    seeds: Sequence[int],
    *,
    points: Sequence[str] | None = None,
    workdir: str | None = None,
) -> dict[str, Any]:
    """Every fault point × every seed; the CI chaos gate.

    For each (point, seed) pair a :meth:`FaultPlan.seeded` draw picks
    the fault kind and firing invocation, so five seeds exercise five
    independent failure schedules per point.  Returns the JSON-ready
    invariant report; ``ok`` is the gate.
    """
    if not seeds:
        raise ChaosError("sweep needs at least one seed")
    catalog: Sequence[FaultPoint]
    if points is None:
        catalog = FAULT_POINTS
    else:
        catalog = tuple(fault_point(name) for name in points)
    runs: list[ScenarioReport] = []
    for seed in seeds:
        for declared in catalog:
            plan = FaultPlan.seeded(seed, point=declared.name)
            runs.append(run_plan(plan, seed=seed, workdir=workdir))
    failed = [r for r in runs if not r.ok]
    return {
        "format": REPORT_FORMAT,
        "report_version": 1,
        "seeds": [int(s) for s in seeds],
        "points": [p.name for p in catalog],
        "runs": [r.to_payload() for r in runs],
        "failed": [
            {"point": r.point, "seed": r.seed, "kind": r.kind}
            for r in failed
        ],
        "ok": not failed,
    }


def render_summary(document: dict[str, Any]) -> str:
    """A one-screen text summary of a sweep report."""
    lines = [
        f"chaos sweep: {len(document['runs'])} runs "
        f"({len(document['points'])} fault points x "
        f"{len(document['seeds'])} seeds)"
    ]
    by_point: dict[str, list[dict[str, Any]]] = {}
    for run in document["runs"]:
        by_point.setdefault(run["point"], []).append(run)
    for point, point_runs in by_point.items():
        bad = [r for r in point_runs if not r["ok"]]
        verdict = "ok" if not bad else f"FAILED ({len(bad)}/{len(point_runs)})"
        lines.append(f"  {point:<28} {verdict}")
    for entry in document["failed"]:
        lines.append(
            f"  reproduce: repro chaos run --point {entry['point']} "
            f"--seed {entry['seed']}"
        )
    lines.append(f"result: {'ok' if document['ok'] else 'FAILED'}")
    return "\n".join(lines)


def save_report(document: dict[str, Any], path: str) -> None:
    """Write a sweep report to ``path`` as indented JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
