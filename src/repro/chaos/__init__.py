"""Deterministic fault injection for the serving stack.

The chaos plane proves the recovery machinery the stream, serve, and
gateway layers claim: checkpoint/resume is bit-identical through a
crash at *any* commit boundary, snapshot swaps are atomic under
concurrent reads, and a draining gateway never emits a 5xx or a torn
response.  Three pieces:

:mod:`repro.chaos.points`
    The static catalog of named fault points threaded into the real
    code paths, and the :func:`~repro.chaos.points.chaos_point`
    trampoline each site calls — one module-global ``None`` check
    when disarmed.
:mod:`repro.chaos.faults`
    :class:`FaultPlan` (seeded or pinned choice of point, fault kind,
    and firing invocation, JSON round-trippable) and
    :class:`FaultInjector` (arms a plan process-wide, counts
    invocations, manifests each fault exactly once).
:mod:`repro.chaos.harness`
    Scenario drivers that run the full stack under a plan and check
    the per-fault-point invariants; ``repro chaos plan|run|sweep`` is
    the CLI over them.  (Imported explicitly — not re-exported here —
    so that production modules importing the trampoline never pull
    the harness, loadgen, or the gateway in.)
"""

from repro.chaos.faults import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    FiredFault,
    InjectedCrash,
    InjectedDisconnect,
)
from repro.chaos.points import FAULT_POINTS, FaultPoint, chaos_point, fault_point

__all__ = [
    "FAULT_POINTS",
    "FaultPoint",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "FiredFault",
    "InjectedCrash",
    "InjectedDisconnect",
    "chaos_point",
    "fault_point",
]
