"""Shared type aliases used across the :mod:`repro` package."""

from __future__ import annotations

from typing import Union

import numpy as np
import numpy.typing as npt

#: A dense vector of float64 scores, one entry per paper.
FloatVector = npt.NDArray[np.float64]

#: A dense vector of integer indices or counts.
IntVector = npt.NDArray[np.int64]

#: Anything accepted where a paper identifier is expected.
PaperId = Union[str, int]
