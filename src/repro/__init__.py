"""repro — AttRank and the short-term-impact ranking test bench.

A full reproduction of *"Ranking Papers by their Short-Term Scientific
Impact"* (Kanellos et al., ICDE 2021): the AttRank method, the five
competitor baselines it is evaluated against, the temporal evaluation
methodology, synthetic stand-ins for the four citation corpora, and the
analyses behind every table and figure of the paper.

Quickstart
----------
>>> from repro import AttRank, generate_dataset, split_by_ratio, spearman_rho
>>> network = generate_dataset("hep-th", size="tiny", seed=1)
>>> split = split_by_ratio(network, test_ratio=1.6)
>>> method = AttRank(alpha=0.2, beta=0.5, gamma=0.3, attention_window=2)
>>> scores = method.scores(split.current)
>>> rho = spearman_rho(scores, split.sti)   # correlation with ground truth
"""

from repro.baselines import (
    CitationCount,
    CiteRank,
    EffectiveContagion,
    FutureRank,
    METHOD_REGISTRY,
    PageRank,
    RetainedAdjacency,
    WSDMRanker,
    make_method,
)
from repro.core import (
    AttRank,
    AttentionOnly,
    NoAttention,
    attention_vector,
    fit_decay_rate,
    recency_vector,
)
from repro.errors import (
    ConfigurationError,
    ConvergenceError,
    DataFormatError,
    EvaluationError,
    GatewayError,
    GraphError,
    IndexIntegrityError,
    ReproError,
    StreamError,
)
from repro.eval import (
    NDCG,
    SpearmanRho,
    TemporalSplit,
    compare_over_k,
    compare_over_ratios,
    ndcg_at_k,
    spearman_rho,
    split_by_ratio,
    tune_method,
)
from repro.graph import CitationNetwork, NetworkBuilder, shared_operator
from repro.io import load_network, save_network
from repro.ranking import RankingMethod, ranking_from_scores, top_k_indices
from repro.serve import (
    CompareQuery,
    DeltaUpdater,
    NetworkDelta,
    PaperQuery,
    QueryEngine,
    RankingService,
    ScoreIndex,
    ShardedScoreIndex,
    TopKQuery,
    delta_between,
)
from repro.synth import (
    DATASET_NAMES,
    GrowthConfig,
    generate_dataset,
    generate_network,
    toy_network,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # methods
    "AttRank",
    "AttentionOnly",
    "NoAttention",
    "CitationCount",
    "CiteRank",
    "EffectiveContagion",
    "FutureRank",
    "PageRank",
    "RetainedAdjacency",
    "WSDMRanker",
    "METHOD_REGISTRY",
    "make_method",
    "RankingMethod",
    # core vectors
    "attention_vector",
    "recency_vector",
    "fit_decay_rate",
    # graph
    "CitationNetwork",
    "NetworkBuilder",
    "shared_operator",
    # parallel experiments + benchmarks
    "ExperimentEngine",
    "SplitSnapshot",
    "run_scenario",
    # evaluation
    "NDCG",
    "SpearmanRho",
    "TemporalSplit",
    "compare_over_k",
    "compare_over_ratios",
    "ndcg_at_k",
    "spearman_rho",
    "split_by_ratio",
    "tune_method",
    "ranking_from_scores",
    "top_k_indices",
    # data
    "DATASET_NAMES",
    "GrowthConfig",
    "generate_dataset",
    "generate_network",
    "toy_network",
    "load_network",
    "save_network",
    # serving
    "CompareQuery",
    "DeltaUpdater",
    "NetworkDelta",
    "PaperQuery",
    "QueryEngine",
    "RankingService",
    "ScoreIndex",
    "ShardedScoreIndex",
    "TopKQuery",
    "delta_between",
    # streaming
    "EventLog",
    "StreamIngestor",
    "batch_compute",
    # gateway
    "GatewayServer",
    "GatewayThread",
    # errors
    "ReproError",
    "GraphError",
    "DataFormatError",
    "ConfigurationError",
    "ConvergenceError",
    "EvaluationError",
    "IndexIntegrityError",
    "StreamError",
    "GatewayError",
]

#: Deliberately lazy exports (PEP 562): the experiment engine, the
#: bench harness and the stream-replay layer sit on top of everything
#: else, and eager imports here would make every ``import repro`` (each
#: CLI invocation included) pay for machinery only the
#: compare/bench/stream paths use.
_LAZY_EXPORTS = {
    "ExperimentEngine": ("repro.parallel", "ExperimentEngine"),
    "SplitSnapshot": ("repro.parallel", "SplitSnapshot"),
    "run_scenario": ("repro.bench", "run_scenario"),
    "EventLog": ("repro.stream", "EventLog"),
    "StreamIngestor": ("repro.stream", "StreamIngestor"),
    "batch_compute": ("repro.stream", "batch_compute"),
    "GatewayServer": ("repro.gateway", "GatewayServer"),
    "GatewayThread": ("repro.gateway", "GatewayThread"),
}


def __getattr__(name: str):
    try:
        module_name, attribute = _LAZY_EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module 'repro' has no attribute {name!r}"
        ) from None
    import importlib

    value = getattr(importlib.import_module(module_name), attribute)
    globals()[name] = value
    return value
