"""Exception hierarchy for the :mod:`repro` package.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch a single base class at API
boundaries while still being able to distinguish failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class GraphError(ReproError):
    """A citation network is structurally invalid or used inconsistently."""


class DataFormatError(ReproError):
    """An input file does not conform to the expected dataset format."""


class IndexIntegrityError(DataFormatError):
    """A persisted score index is internally inconsistent.

    Raised when an index (or shard) file parses as the right format but
    its pieces disagree: method metadata naming unknown or duplicate
    labels, score vectors missing or undeclared, version numbers that
    contradict each other across shard files.  Subclasses
    :class:`DataFormatError`, so callers catching format problems
    broadly keep working.
    """


class ConfigurationError(ReproError):
    """A method or experiment was configured with invalid parameters."""


class ConvergenceError(ReproError):
    """An iterative solver failed to converge within its iteration budget.

    Attributes
    ----------
    iterations:
        Number of iterations performed before giving up.
    residual:
        The last observed convergence residual (L1 change of the score
        vector between successive iterations).
    """

    def __init__(self, message: str, *, iterations: int, residual: float) -> None:
        super().__init__(message)
        self.iterations = iterations
        self.residual = residual


class EvaluationError(ReproError):
    """An evaluation request is inconsistent with the data it is given."""


class GatewayError(ReproError):
    """The HTTP serving gateway cannot accept or complete a request.

    Raised for gateway-level failures: submitting to a coalescer that
    is shutting down, malformed HTTP requests beyond the parser's
    limits, or a server asked to start twice.  Load shedding is *not*
    an error — the admission layer answers 429/503 responses without
    raising — but a request caught mid-drain surfaces as this type so
    callers can distinguish "the gateway refused" from "the query was
    invalid".
    """


class SharedStoreError(ReproError):
    """The shared-memory score store protocol was violated.

    Raised when a generation segment or board is missing, malformed,
    or from an incompatible layout version; when a reader asks for a
    generation before anything was published; or when the generation
    board runs out of slots because readers pin too many superseded
    generations.  Crashed *workers* never surface as this type — the
    supervisor handles those — only protocol misuse does.
    """


class ChaosError(ReproError):
    """The fault-injection harness was misused or misconfigured.

    Raised for chaos-plane mistakes — naming an unregistered fault
    point, planning a fault kind a point does not declare, arming two
    injectors at once — never for the *injected* faults themselves:
    those surface as :class:`repro.chaos.InjectedCrash` (a
    ``BaseException``, so nothing can accidentally handle a simulated
    kill) or :class:`repro.chaos.InjectedDisconnect` (a
    ``ConnectionResetError``, so the gateway treats it like a real
    peer reset).
    """


class StreamError(ReproError):
    """An event log or stream replay violates the streaming contract.

    Raised when an event log is not replayable (events out of time
    order, citation events detached from their citing paper's event),
    when a checkpoint does not match the log it is resumed against, or
    when a replay is driven past the end of its log.
    """
