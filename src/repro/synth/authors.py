"""Synthetic author and venue assignment.

FutureRank needs an author-paper bipartite graph and the WSDM baseline
additionally needs venues.  Real metadata is unavailable offline, so we
assign authors with a preferential (rich-get-richer) productivity process
— reproducing the Lotka-law productivity skew of real corpora — and
venues with a Zipf popularity distribution.  Only the bipartite structure
matters to the baselines, and both processes preserve it (DESIGN.md §4).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["AuthorConfig", "VenueConfig", "assign_authors", "assign_venues"]


@dataclass(frozen=True)
class AuthorConfig:
    """Parameters of the synthetic authorship process.

    Attributes
    ----------
    mean_team_size:
        Mean number of authors per paper (team size is
        ``1 + Poisson(mean_team_size - 1)``).
    new_author_probability:
        Probability that an author slot is filled by a brand-new author
        rather than a returning one; controls the corpus' author/paper
        ratio.
    """

    mean_team_size: float = 2.8
    new_author_probability: float = 0.35

    def __post_init__(self) -> None:
        if self.mean_team_size < 1:
            raise ConfigurationError("mean_team_size must be >= 1")
        if not 0 < self.new_author_probability <= 1:
            raise ConfigurationError(
                "new_author_probability must be in (0, 1]"
            )


@dataclass(frozen=True)
class VenueConfig:
    """Parameters of the synthetic venue process.

    Attributes
    ----------
    n_venues:
        Size of the venue pool.
    zipf_exponent:
        Exponent of the Zipf popularity distribution over venues.
    unknown_fraction:
        Fraction of papers with no venue information (index ``-1``),
        mirroring the incompleteness of real metadata.
    """

    n_venues: int = 120
    zipf_exponent: float = 1.1
    unknown_fraction: float = 0.05

    def __post_init__(self) -> None:
        if self.n_venues < 1:
            raise ConfigurationError("n_venues must be >= 1")
        if self.zipf_exponent <= 0:
            raise ConfigurationError("zipf_exponent must be positive")
        if not 0 <= self.unknown_fraction < 1:
            raise ConfigurationError("unknown_fraction must be in [0, 1)")


def assign_authors(
    n_papers: int,
    config: AuthorConfig,
    rng: np.random.Generator,
) -> list[tuple[int, ...]]:
    """Assign author-index tuples to ``n_papers`` papers.

    Returning authors are chosen preferentially by current productivity
    (papers authored so far + 1), producing the heavy-tailed author
    productivity distribution observed in real corpora.
    """
    team_sizes = 1 + rng.poisson(config.mean_team_size - 1.0, size=n_papers)
    paper_authors: list[tuple[int, ...]] = []
    n_authors = 0
    # Urn of author tokens: author a appears (1 + papers authored) times,
    # so a uniform draw from the urn is a preferential draw over authors.
    urn: list[int] = []

    for paper in range(n_papers):
        team: list[int] = []
        for _ in range(int(team_sizes[paper])):
            fresh = not urn or rng.random() < config.new_author_probability
            if fresh:
                author = n_authors
                n_authors += 1
                urn.append(author)
            else:
                author = urn[int(rng.integers(len(urn)))]
            if author not in team:
                team.append(author)
        urn.extend(team)
        paper_authors.append(tuple(team))
    return paper_authors


def assign_venues(
    n_papers: int,
    config: VenueConfig,
    rng: np.random.Generator,
) -> np.ndarray:
    """Assign a venue index (or ``-1`` for unknown) to each paper."""
    ranks = np.arange(1, config.n_venues + 1, dtype=np.float64)
    weights = ranks ** (-config.zipf_exponent)
    weights /= weights.sum()
    venues = rng.choice(config.n_venues, size=n_papers, p=weights)
    unknown = rng.random(n_papers) < config.unknown_fraction
    venues = venues.astype(np.int64)
    venues[unknown] = -1
    return venues
