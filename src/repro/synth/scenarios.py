"""Hand-crafted scenario networks used by examples, tests and Figure 1b.

The paper motivates short-term impact with the two BLAST papers
(Altschul et al. 1990 and 1997): by 1998 the older paper has the larger
citation count, but the newer one is collecting citations faster.  Since
the COCI citation data behind that figure is unavailable offline, this
module synthesises the same *shape*: an incumbent paper whose yearly
citations decay, and a challenger whose yearly citations overtake the
incumbent's within a couple of years of publication (DESIGN.md §4,
substitution 4).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.graph.builder import NetworkBuilder
from repro.graph.citation_network import CitationNetwork
from repro.synth.rng import make_rng

__all__ = ["OvertakingScenario", "two_paper_overtaking", "toy_network"]


@dataclass(frozen=True)
class OvertakingScenario:
    """An incumbent-vs-challenger citation scenario (Figure 1b shape).

    Attributes
    ----------
    network:
        The generated network: two focal papers plus background papers
        that cite them (and each other sparsely).
    incumbent_id, challenger_id:
        External ids of the two focal papers.
    crossover_year:
        First calendar year in which the challenger's yearly citation
        count strictly exceeds the incumbent's (or ``None`` if never —
        which the default parameters make impossible).
    """

    network: CitationNetwork
    incumbent_id: str
    challenger_id: str
    crossover_year: int | None


def two_paper_overtaking(
    *,
    incumbent_year: int = 1990,
    challenger_year: int = 1997,
    last_year: int = 2001,
    incumbent_peak: int = 60,
    challenger_peak: int = 110,
    incumbent_decay: float = 0.12,
    challenger_ramp: float = 1.6,
    seed: int | None = 7,
) -> OvertakingScenario:
    """Build the two-paper overtaking scenario.

    The incumbent receives ``incumbent_peak * exp(-decay * age)`` citations
    per year (rounded, with Poisson noise); the challenger ramps up as
    ``challenger_peak * (1 - exp(-ramp * age))``.  Background papers are
    created as needed to carry the citations; each also cites a few other
    background papers so that the network is not a pure star.
    """
    if challenger_year <= incumbent_year:
        raise ConfigurationError("challenger must be newer than incumbent")
    if last_year <= challenger_year:
        raise ConfigurationError("last_year must exceed challenger_year")
    rng = make_rng(seed)

    builder = NetworkBuilder()
    incumbent, challenger = "BLAST-1990", "BLAST-1997"
    builder.add_paper(incumbent, float(incumbent_year))
    builder.add_paper(challenger, float(challenger_year))

    old_background: list[str] = []  # papers from strictly earlier years
    this_year: list[str] = []
    serial = 0
    inc_counts: dict[int, int] = {}
    chal_counts: dict[int, int] = {}

    for year in range(incumbent_year + 1, last_year + 1):
        old_background.extend(this_year)
        this_year = []
        inc_rate = incumbent_peak * np.exp(
            -incumbent_decay * (year - incumbent_year)
        )
        n_inc = int(rng.poisson(inc_rate))
        if year > challenger_year:
            age = year - challenger_year
            chal_rate = challenger_peak * (1.0 - np.exp(-challenger_ramp * age))
            n_chal = int(rng.poisson(chal_rate))
        else:
            n_chal = 0
        inc_counts[year] = n_inc
        chal_counts[year] = n_chal

        cites_incumbent = [True] * n_inc + [False] * n_chal
        rng.shuffle(cites_incumbent)
        for hits_incumbent in cites_incumbent:
            serial += 1
            pid = f"BG{serial:05d}"
            refs = [incumbent if hits_incumbent else challenger]
            if old_background:
                extra = rng.integers(0, min(3, len(old_background)) + 1)
                if extra:
                    picks = rng.choice(
                        len(old_background), size=extra, replace=False
                    )
                    refs.extend(old_background[p] for p in picks)
            builder.add_paper(
                pid, year + float(rng.random()) * 0.9, references=refs
            )
            this_year.append(pid)

    network = builder.build()
    crossover = None
    for year in range(challenger_year + 1, last_year + 1):
        if chal_counts.get(year, 0) > inc_counts.get(year, 0):
            crossover = year
            break
    return OvertakingScenario(
        network=network,
        incumbent_id=incumbent,
        challenger_id=challenger,
        crossover_year=crossover,
    )


def toy_network() -> CitationNetwork:
    """A fixed 8-paper network with hand-checkable structure.

    Used across the unit tests: two "old classics" (A, B), a mid-life
    paper (C) bridging them, and recent papers (D..H) among which F and G
    concentrate the recent citations.  All edges respect time order.
    """
    builder = NetworkBuilder()
    builder.add_paper("A", 1990.0, authors=["ada"], venue="J1")
    builder.add_paper("B", 1991.0, references=["A"], authors=["bob"], venue="J1")
    builder.add_paper(
        "C", 1995.0, references=["A", "B"], authors=["ada", "bob"], venue="J2"
    )
    builder.add_paper("D", 1999.0, references=["C"], authors=["cyd"], venue="J2")
    builder.add_paper(
        "E", 2000.0, references=["C", "D"], authors=["cyd", "ada"], venue="J3"
    )
    builder.add_paper(
        "F", 2001.0, references=["D", "E", "A"], authors=["eve"], venue="J3"
    )
    builder.add_paper(
        "G", 2002.0, references=["F", "E"], authors=["eve", "bob"], venue="J1"
    )
    builder.add_paper(
        "H", 2003.0, references=["F", "G"], authors=["hal"], venue="J2"
    )
    return builder.build()
