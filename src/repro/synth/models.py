"""Growing citation-network model with aging, fitness and attention.

This is the library's substitute for the paper's four real datasets (see
DESIGN.md §4).  The generative process is the standard *relevance model*
of citation-network growth — preferential attachment modulated by paper
fitness and an exponentially decaying age factor — which is precisely the
family of mechanisms the paper itself appeals to ("a time-restricted
version of preferential attachment", Section 1).

Papers arrive in discrete batches (e.g. monthly).  A new paper selects
its references through two mechanisms:

* **kernel sampling** — an existing paper ``i`` is chosen with
  probability proportional to the attachment kernel

      (recent_citations_i + total_weight * citations_i + k0)
          * fitness_i * exp(aging_rate * age_i)

  where ``recent_citations_i`` counts citations received within the last
  ``attention_window`` years;
* **reference copying** — with probability ``copy_probability`` per
  remaining slot, the paper copies a random entry from the reference
  list of a paper it already cites (the classic copying model): authors
  discover literature by following the reference lists of the papers
  they read.  This is what makes the PageRank-style flow component of
  ranking methods informative.

Together the mechanisms produce the phenomena the paper's evaluation
depends on: citation lag and age bias (Figure 1a), heavy-tailed citation
counts, persistence of recent attention (Table 1), and citation flow
along reference chains.  Optionally, paper fitness is boosted by the
past productivity of the paper's authors, giving author-aware baselines
(FutureRank, WSDM) genuine signal.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.graph.citation_network import CitationNetwork
from repro.synth.authors import AuthorConfig, VenueConfig, assign_authors, assign_venues
from repro.synth.rng import spawn_rngs

__all__ = ["GrowthConfig", "generate_network"]


@dataclass(frozen=True)
class GrowthConfig:
    """Parameters of the synthetic citation-network growth model.

    Attributes
    ----------
    n_papers:
        Total number of papers to generate.
    first_year, last_year:
        Calendar span of the corpus.  Papers are published at batch
        midpoints inside this interval.
    batches_per_year:
        Temporal resolution of the growth process (12 = monthly).
    growth_rate:
        Exponential growth rate of the publication volume per year
        (0 = constant volume).  Real corpora grow at roughly 3-5 %/year.
    mean_references:
        Mean reference-list length; actual list lengths are drawn from a
        lognormal and clipped to the available pool.
    reference_sigma:
        Lognormal sigma of the reference-list length distribution.
    aging_rate:
        The (negative) exponential aging rate of the attachment kernel,
        in 1/years.  Matches the paper's fitted ``w`` per dataset
        (hep-th: -0.48, APS: -0.12, PMC/DBLP: -0.16).
    maturation_exponent:
        Exponent ``m`` of the rising factor ``age^m`` in the kernel's
        age response ``age^m * exp(aging_rate * age)``.  Models *citation
        lag* (Figure 1a): a paper's citation rate peaks
        ``-m / aging_rate`` years after publication instead of at birth.
        0 disables maturation.
    fitness_sigma:
        Sigma of the lognormal paper-fitness distribution (0 = all papers
        equally fit; larger = heavier-tailed citation counts).
    attention_window:
        Length in years of the "recent citations" window of the kernel.
    initial_attractiveness:
        The additive constant ``k0`` — how attractive an uncited paper is.
    total_citation_weight:
        Weight of *lifetime* citations in the kernel relative to recent
        ones; > 0 keeps long-lived classics citable beyond the attention
        window.
    copy_probability:
        Per-slot probability of choosing a reference by copying from an
        already-selected paper's reference list instead of sampling the
        kernel.
    author_fitness_boost:
        Multiplies each paper's fitness by
        ``1 + boost * log1p(mean prior productivity of its authors)``;
        0 disables the coupling.  Requires ``authors``.
    authors:
        Optional author-assignment configuration (None = no author data).
    venues:
        Optional venue-assignment configuration (None = no venue data).
    """

    n_papers: int
    first_year: float = 1990.0
    last_year: float = 2010.0
    batches_per_year: int = 12
    growth_rate: float = 0.04
    mean_references: float = 12.0
    reference_sigma: float = 0.6
    aging_rate: float = -0.2
    maturation_exponent: float = 0.4
    fitness_sigma: float = 1.1
    attention_window: float = 3.0
    initial_attractiveness: float = 1.0
    total_citation_weight: float = 0.25
    copy_probability: float = 0.25
    author_fitness_boost: float = 0.1
    authors: AuthorConfig | None = field(default_factory=lambda: AuthorConfig())
    venues: VenueConfig | None = field(default_factory=lambda: VenueConfig())

    def __post_init__(self) -> None:
        if self.n_papers < 2:
            raise ConfigurationError("n_papers must be at least 2")
        if self.last_year <= self.first_year:
            raise ConfigurationError("last_year must exceed first_year")
        if self.batches_per_year < 1:
            raise ConfigurationError("batches_per_year must be >= 1")
        if self.mean_references <= 0:
            raise ConfigurationError("mean_references must be positive")
        if self.aging_rate >= 0:
            raise ConfigurationError("aging_rate must be negative (papers age)")
        if self.maturation_exponent < 0:
            raise ConfigurationError("maturation_exponent must be >= 0")
        if self.fitness_sigma < 0:
            raise ConfigurationError("fitness_sigma must be non-negative")
        if self.attention_window <= 0:
            raise ConfigurationError("attention_window must be positive")
        if self.initial_attractiveness <= 0:
            raise ConfigurationError("initial_attractiveness must be positive")
        if self.total_citation_weight < 0:
            raise ConfigurationError("total_citation_weight must be >= 0")
        if not 0 <= self.copy_probability < 1:
            raise ConfigurationError("copy_probability must be in [0, 1)")
        if self.author_fitness_boost < 0:
            raise ConfigurationError("author_fitness_boost must be >= 0")
        if self.author_fitness_boost > 0 and self.authors is None:
            raise ConfigurationError(
                "author_fitness_boost requires an authors configuration"
            )


def _batch_sizes(config: GrowthConfig, rng: np.random.Generator) -> np.ndarray:
    """Split ``n_papers`` into per-batch publication counts.

    Batch volumes follow the exponential growth curve with multiplicative
    lognormal noise, then are scaled to sum exactly to ``n_papers``.
    """
    n_batches = int(
        round((config.last_year - config.first_year) * config.batches_per_year)
    )
    n_batches = max(n_batches, 2)
    t = np.arange(n_batches) / config.batches_per_year
    volume = np.exp(config.growth_rate * t)
    volume *= rng.lognormal(mean=0.0, sigma=0.08, size=n_batches)
    raw = volume / volume.sum() * config.n_papers
    sizes = np.floor(raw).astype(np.int64)
    # Distribute the rounding remainder to the largest fractional parts.
    deficit = config.n_papers - int(sizes.sum())
    if deficit > 0:
        order = np.argsort(-(raw - sizes))
        sizes[order[:deficit]] += 1
    # Guarantee a seed batch so the very first papers have something to cite.
    if sizes[0] == 0:
        donor = int(np.argmax(sizes))
        sizes[0] += 1
        sizes[donor] -= 1
    return sizes


def _reference_counts(
    config: GrowthConfig, n: int, rng: np.random.Generator
) -> np.ndarray:
    """Draw reference-list lengths (>= 0) with the configured mean."""
    mu = np.log(config.mean_references) - config.reference_sigma**2 / 2.0
    lengths = rng.lognormal(mean=mu, sigma=config.reference_sigma, size=n)
    return np.maximum(np.round(lengths).astype(np.int64), 0)


def _author_fitness_factor(
    paper_authors: list[tuple[int, ...]], boost: float
) -> np.ndarray:
    """Fitness multipliers from the authors' productivity *before* each
    paper (papers are in chronological order, so the prior is causal)."""
    n = len(paper_authors)
    factor = np.ones(n, dtype=np.float64)
    productivity: dict[int, int] = {}
    for paper, team in enumerate(paper_authors):
        if team:
            prior = sum(productivity.get(a, 0) for a in team) / len(team)
            factor[paper] = 1.0 + boost * np.log1p(prior)
        for author in team:
            productivity[author] = productivity.get(author, 0) + 1
    return factor


class _RollingAttention:
    """Per-paper citation counts over a sliding window of recent batches."""

    def __init__(self, capacity: int, window_batches: int) -> None:
        self._counts = np.zeros(capacity, dtype=np.float64)
        self._window = max(window_batches, 1)
        self._deltas: list[tuple[np.ndarray, np.ndarray]] = []

    @property
    def counts(self) -> np.ndarray:
        return self._counts

    def push_batch(self, cited: np.ndarray) -> None:
        """Record the citations of one batch and expire the oldest batch."""
        targets, increments = np.unique(cited, return_counts=True)
        np.add.at(self._counts, targets, increments.astype(np.float64))
        self._deltas.append((targets, increments))
        if len(self._deltas) > self._window:
            old_targets, old_counts = self._deltas.pop(0)
            np.subtract.at(
                self._counts, old_targets, old_counts.astype(np.float64)
            )


def generate_network(
    config: GrowthConfig, *, seed: int | None = 0
) -> CitationNetwork:
    """Generate a citation network according to ``config``.

    The process is batched: all papers of a batch observe the same
    attachment weights (computed once per batch) and cannot cite papers
    of their own or later batches, which guarantees time-consistency of
    every edge.

    Returns
    -------
    CitationNetwork
        With paper ids ``P0000001, ...`` in chronological order, and
        author/venue metadata if configured.
    """
    structure_rng, ref_rng, author_rng, venue_rng = spawn_rngs(seed, 4)

    sizes = _batch_sizes(config, structure_rng)
    n_batches = sizes.size
    batch_times = config.first_year + (np.arange(n_batches) + 0.5) / (
        config.batches_per_year
    )

    n = config.n_papers
    pub_time = np.zeros(n, dtype=np.float64)
    fitness = np.exp(
        structure_rng.normal(0.0, config.fitness_sigma, size=n)
        - config.fitness_sigma**2 / 2.0
    )
    ref_counts = _reference_counts(config, n, ref_rng)

    paper_authors = (
        assign_authors(n, config.authors, author_rng)
        if config.authors is not None
        else None
    )
    if paper_authors is not None and config.author_fitness_boost > 0:
        fitness *= _author_fitness_factor(
            paper_authors, config.author_fitness_boost
        )

    window_batches = int(
        round(config.attention_window * config.batches_per_year)
    )
    attention = _RollingAttention(n, window_batches)
    total_counts = np.zeros(n, dtype=np.float64)
    references: list[np.ndarray] = [np.zeros(0, dtype=np.int64)] * n

    citing_chunks: list[np.ndarray] = []
    cited_chunks: list[np.ndarray] = []

    next_paper = 0
    for batch, batch_size in enumerate(sizes):
        if batch_size == 0:
            continue
        t = batch_times[batch]
        start, stop = next_paper, next_paper + int(batch_size)
        pub_time[start:stop] = t
        next_paper = stop

        pool = start  # papers published strictly before this batch
        if pool == 0:
            continue  # the seed batch has nothing to cite

        ages = t - pub_time[:pool]
        age_response = np.exp(config.aging_rate * ages)
        if config.maturation_exponent > 0:
            # Citation lag: response rises as age^m before the decay wins.
            floored = np.maximum(ages, 1.0 / config.batches_per_year)
            age_response *= floored**config.maturation_exponent
        weights = (
            (
                attention.counts[:pool]
                + config.total_citation_weight * total_counts[:pool]
                + config.initial_attractiveness
            )
            * fitness[:pool]
            * age_response
        )
        total = weights.sum()
        if total <= 0:  # pragma: no cover - kernel is strictly positive
            continue
        cumulative = np.cumsum(weights / total)
        cumulative[-1] = 1.0

        batch_cited: list[np.ndarray] = []
        batch_citing: list[np.ndarray] = []
        for paper in range(start, stop):
            k = min(int(ref_counts[paper]), pool)
            if k == 0:
                continue
            n_copy = (
                int(ref_rng.binomial(k - 1, config.copy_probability))
                if k > 1 and config.copy_probability > 0
                else 0
            )
            n_kernel = k - n_copy
            draws = np.searchsorted(
                cumulative, ref_rng.random(n_kernel + 4), side="left"
            )
            chosen = list(np.unique(draws)[:n_kernel])
            for _ in range(n_copy):
                anchor = chosen[int(ref_rng.integers(len(chosen)))]
                anchor_refs = references[anchor]
                if anchor_refs.size:
                    pick = int(
                        anchor_refs[int(ref_rng.integers(anchor_refs.size))]
                    )
                else:  # anchor cites nothing: fall back to the kernel
                    pick = int(
                        np.searchsorted(
                            cumulative, ref_rng.random(), side="left"
                        )
                    )
                chosen.append(min(pick, pool - 1))
            targets = np.unique(np.asarray(chosen, dtype=np.int64))[:k]
            references[paper] = targets
            batch_cited.append(targets)
            batch_citing.append(np.full(targets.size, paper, dtype=np.int64))

        if batch_cited:
            cited_now = np.concatenate(batch_cited)
            citing_now = np.concatenate(batch_citing)
            citing_chunks.append(citing_now)
            cited_chunks.append(cited_now)
            attention.push_batch(cited_now)
            np.add.at(total_counts, cited_now, 1.0)
        else:
            attention.push_batch(np.zeros(0, dtype=np.int64))

    citing = (
        np.concatenate(citing_chunks) if citing_chunks else np.zeros(0, np.int64)
    )
    cited = (
        np.concatenate(cited_chunks) if cited_chunks else np.zeros(0, np.int64)
    )

    paper_ids = [f"P{i + 1:07d}" for i in range(n)]
    paper_venues = (
        assign_venues(n, config.venues, venue_rng)
        if config.venues is not None
        else None
    )

    network = CitationNetwork(
        paper_ids=paper_ids,
        publication_times=pub_time,
        citing=citing,
        cited=cited,
        paper_authors=paper_authors,
        paper_venues=paper_venues,
        validate=True,
    )
    network.validate(require_time_order=True)
    return network
