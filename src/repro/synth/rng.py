"""Deterministic random-number utilities for the synthetic generators.

All generators in :mod:`repro.synth` take an integer seed and derive
independent :class:`numpy.random.Generator` streams from it, so that a
given (profile, seed) pair always produces the identical network across
processes and platforms.
"""

from __future__ import annotations

import numpy as np

__all__ = ["make_rng", "spawn_rngs"]


def make_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Accepts an existing generator (returned unchanged), an integer seed,
    or ``None`` for OS entropy.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: int | None, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent generator streams from one seed.

    Uses :class:`numpy.random.SeedSequence` spawning, so streams do not
    overlap regardless of how many draws each consumes.
    """
    sequence = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in sequence.spawn(n)]
