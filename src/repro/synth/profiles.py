"""Per-dataset synthetic profiles mirroring the paper's four corpora.

The paper evaluates on hep-th (arXiv/KDD-Cup 2003), APS, PMC and DBLP
(AMiner).  The profiles below encode what the paper reports about each —
calendar span, relative scale, citation-aging rate (the ``w`` values the
authors fit in Section 4.2: hep-th -0.48, APS -0.12, PMC -0.16,
DBLP -0.16) and reference density — scaled to sizes that run on a laptop.
``generate_dataset("dblp")`` is therefore the library's drop-in stand-in
for loading the real DBLP dump (which :mod:`repro.io` can also do, given
the files).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Mapping

from repro.errors import ConfigurationError
from repro.graph.citation_network import CitationNetwork
from repro.synth.authors import AuthorConfig, VenueConfig
from repro.synth.models import GrowthConfig, generate_network

__all__ = [
    "DatasetProfile",
    "DATASET_PROFILES",
    "DATASET_NAMES",
    "SIZE_FACTORS",
    "profile_for",
    "generate_dataset",
]


@dataclass(frozen=True)
class DatasetProfile:
    """A named synthetic stand-in for one of the paper's datasets.

    Attributes
    ----------
    name:
        Canonical dataset key (``"hep-th"``, ``"aps"``, ``"pmc"``,
        ``"dblp"``).
    description:
        One-line provenance of the real dataset being imitated.
    config:
        The :class:`~repro.synth.models.GrowthConfig` at the default
        ("small") scale.
    paper_w:
        The recency-decay rate the paper fits for this dataset (§4.2).
        The generator's ``aging_rate`` is a *kernel* parameter calibrated
        so that the **realized** citation-age distribution of the
        generated corpus decays at roughly this rate (preferential
        attachment partially offsets kernel aging, so the kernel rate is
        steeper than the realized one).
    paper_n_papers:
        Size of the real corpus (for documentation and reports).
    """

    name: str
    description: str
    config: GrowthConfig
    paper_w: float
    paper_n_papers: int


#: Scale multipliers for :func:`generate_dataset`'s ``size`` argument.
SIZE_FACTORS: Mapping[str, float] = {
    "tiny": 0.25,
    "small": 1.0,
    "medium": 2.5,
    "large": 6.0,
}

DATASET_PROFILES: Mapping[str, DatasetProfile] = {
    "hep-th": DatasetProfile(
        name="hep-th",
        description="arXiv high-energy physics theory (KDD Cup 2003)",
        paper_w=-0.48,
        paper_n_papers=27_000,
        config=GrowthConfig(
            n_papers=3_000,
            first_year=1992.0,
            last_year=2003.0,
            growth_rate=0.06,
            mean_references=12.0,
            aging_rate=-1.2,
            maturation_exponent=0.48,
            fitness_sigma=1.15,
            attention_window=2.0,
            authors=AuthorConfig(mean_team_size=2.2, new_author_probability=0.30),
            venues=VenueConfig(n_venues=40),
        ),
    ),
    "aps": DatasetProfile(
        name="aps",
        description="American Physical Society journals",
        paper_w=-0.12,
        paper_n_papers=500_000,
        config=GrowthConfig(
            n_papers=6_000,
            first_year=1975.0,
            last_year=2014.0,
            growth_rate=0.05,
            mean_references=11.0,
            aging_rate=-0.38,
            maturation_exponent=0.35,
            fitness_sigma=1.05,
            attention_window=4.0,
            authors=AuthorConfig(mean_team_size=3.0, new_author_probability=0.35),
            venues=VenueConfig(n_venues=15),
        ),
    ),
    "pmc": DatasetProfile(
        name="pmc",
        description="PubMed Central open-access subset",
        paper_w=-0.16,
        paper_n_papers=1_000_000,
        config=GrowthConfig(
            n_papers=5_000,
            first_year=1990.0,
            last_year=2016.0,
            growth_rate=0.09,
            mean_references=6.0,
            aging_rate=-0.42,
            maturation_exponent=0.38,
            fitness_sigma=1.0,
            attention_window=3.0,
            authors=AuthorConfig(mean_team_size=4.5, new_author_probability=0.45),
            venues=VenueConfig(n_venues=200),
        ),
    ),
    "dblp": DatasetProfile(
        name="dblp",
        description="DBLP computer-science corpus (AMiner citation dump)",
        paper_w=-0.16,
        paper_n_papers=3_000_000,
        config=GrowthConfig(
            n_papers=8_000,
            first_year=1980.0,
            last_year=2018.0,
            growth_rate=0.07,
            mean_references=9.0,
            aging_rate=-0.45,
            maturation_exponent=0.40,
            fitness_sigma=1.1,
            attention_window=3.0,
            authors=AuthorConfig(mean_team_size=2.8, new_author_probability=0.35),
            venues=VenueConfig(n_venues=300),
        ),
    ),
}

#: Canonical dataset order used throughout reports (matches the paper).
DATASET_NAMES: tuple[str, ...] = ("hep-th", "aps", "pmc", "dblp")


def profile_for(name: str) -> DatasetProfile:
    """Look up a dataset profile by name (case-insensitive).

    Raises
    ------
    ConfigurationError
        For unknown dataset names, listing the valid ones.
    """
    key = name.lower().replace("_", "-")
    if key == "hepth":
        key = "hep-th"
    try:
        return DATASET_PROFILES[key]
    except KeyError:
        known = ", ".join(sorted(DATASET_PROFILES))
        raise ConfigurationError(
            f"unknown dataset {name!r}; expected one of: {known}"
        ) from None


def generate_dataset(
    name: str,
    *,
    size: str = "small",
    seed: int | None = None,
    n_papers: int | None = None,
) -> CitationNetwork:
    """Generate the synthetic stand-in for one of the paper's datasets.

    Parameters
    ----------
    name:
        Dataset key: ``"hep-th"``, ``"aps"``, ``"pmc"`` or ``"dblp"``.
    size:
        One of ``"tiny"``, ``"small"``, ``"medium"``, ``"large"``
        (multiplies the profile's default paper count).
    seed:
        RNG seed; each dataset name has a distinct default so the four
        corpora are independent even with default seeds.
    n_papers:
        Exact paper count, overriding ``size``.
    """
    profile = profile_for(name)
    if size not in SIZE_FACTORS:
        known = ", ".join(SIZE_FACTORS)
        raise ConfigurationError(
            f"unknown size {size!r}; expected one of: {known}"
        )
    count = (
        int(n_papers)
        if n_papers is not None
        else int(round(profile.config.n_papers * SIZE_FACTORS[size]))
    )
    config = replace(profile.config, n_papers=count)
    if seed is None:
        # Stable per-dataset default seeds.
        seed = 1000 + list(DATASET_PROFILES).index(profile.name)
    return generate_network(config, seed=seed)
