"""Synthetic citation-network generation (the offline dataset substitute).

* :func:`generate_network` / :class:`GrowthConfig` — the growth model
  (preferential attachment x fitness x exponential aging).
* :func:`generate_dataset` / :data:`DATASET_PROFILES` — named stand-ins
  for the paper's four corpora (hep-th, APS, PMC, DBLP).
* :func:`two_paper_overtaking`, :func:`toy_network` — scenario networks.
"""

from repro.synth.authors import AuthorConfig, VenueConfig, assign_authors, assign_venues
from repro.synth.models import GrowthConfig, generate_network
from repro.synth.profiles import (
    DATASET_NAMES,
    DATASET_PROFILES,
    SIZE_FACTORS,
    DatasetProfile,
    generate_dataset,
    profile_for,
)
from repro.synth.rng import make_rng, spawn_rngs
from repro.synth.scenarios import (
    OvertakingScenario,
    toy_network,
    two_paper_overtaking,
)

__all__ = [
    "AuthorConfig",
    "VenueConfig",
    "assign_authors",
    "assign_venues",
    "GrowthConfig",
    "generate_network",
    "DATASET_NAMES",
    "DATASET_PROFILES",
    "SIZE_FACTORS",
    "DatasetProfile",
    "generate_dataset",
    "profile_for",
    "make_rng",
    "spawn_rngs",
    "OvertakingScenario",
    "toy_network",
    "two_paper_overtaking",
]
