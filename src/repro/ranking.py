"""The common interface every paper-ranking method implements.

A *ranking method* maps a :class:`~repro.graph.CitationNetwork` (the
current state ``C(tN)``) to one non-negative score per paper; papers are
then ranked in decreasing score order as a proxy for their unknown
short-term impact (Problem 1 of the paper).  AttRank and all baselines
subclass :class:`RankingMethod`, which gives the evaluation framework a
single uniform handle for running, tuning and comparing them.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Mapping

import numpy as np

from repro._typing import FloatVector, IntVector
from repro.errors import ConfigurationError
from repro.graph.citation_network import CitationNetwork

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.fused import FusedColumn

__all__ = [
    "RankingMethod",
    "ConvergenceInfo",
    "ranking_from_scores",
    "top_k_indices",
]


@dataclass(frozen=True)
class ConvergenceInfo:
    """Diagnostics of an iterative solve.

    Attributes
    ----------
    iterations:
        Number of iterations performed.
    residual:
        Final L1 change between successive iterates.
    converged:
        Whether the residual dropped below the requested tolerance within
        the iteration budget.
    residual_history:
        Residual after each iteration (length = ``iterations``).
    """

    iterations: int
    residual: float
    converged: bool
    residual_history: tuple[float, ...]


class RankingMethod(ABC):
    """Abstract base class of all ranking methods.

    Subclasses set the class attribute :attr:`name` (the short label used
    in the paper's plots: ``"AR"``, ``"CR"``, ``"FR"``, ...), implement
    :meth:`scores`, and report their configuration from :meth:`params`.
    Iterative methods additionally expose a :attr:`last_convergence`
    attribute after :meth:`scores` has run.
    """

    #: Short label for reports (matches the paper's legends).
    name: str = "?"

    #: Whether ``scores()`` honours :attr:`start_vector` — true for the
    #: fixed-point methods whose solution is start-independent (paper
    #: Theorem 1), so a previous solution can warm-start the solve.
    supports_warm_start: bool = False

    #: Optional start vector for the next ``scores()`` call.  Methods
    #: with :attr:`supports_warm_start` seed their power iteration from
    #: it (the incremental-update path of :mod:`repro.serve` sets this to
    #: the previous snapshot's solution); others ignore it.  The fixed
    #: point is unaffected — only the iteration count changes.
    start_vector: FloatVector | None = None

    #: Populated by iterative subclasses after ``scores()``.
    last_convergence: ConvergenceInfo | None = None

    @abstractmethod
    def scores(self, network: CitationNetwork) -> FloatVector:
        """Compute one non-negative score per paper of ``network``."""

    def fused_column(
        self, network: CitationNetwork
    ) -> "FusedColumn | None":
        """The method's column spec for the fused multi-method solver.

        Iterative methods whose update is an affine map over a sparse
        operator return a :class:`~repro.core.fused.FusedColumn` so
        :func:`~repro.core.fused.solve_methods` can stack them into one
        SpMV pass per iteration.  The default ``None`` means "not
        fusable" — closed forms (citation count, RAM, ATT-ONLY) and
        structurally different iterations (WSDM) fall back to
        :meth:`scores`.  A returned column must reproduce ``scores()``
        **bit-for-bit** in float64; the golden fixtures and hypothesis
        properties enforce this.
        """
        return None

    def params(self) -> Mapping[str, Any]:
        """The method's configuration, for experiment reports."""
        return {}

    def rank(self, network: CitationNetwork) -> IntVector:
        """Paper indices in decreasing score order (ties by index)."""
        return ranking_from_scores(self.scores(network))

    def describe(self) -> str:
        """Human-readable one-liner, e.g. ``AR(alpha=0.2, beta=0.5)``."""
        inner = ", ".join(f"{k}={v}" for k, v in self.params().items())
        return f"{self.name}({inner})"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()


def ranking_from_scores(scores: FloatVector) -> IntVector:
    """Indices sorted by decreasing score, ties broken by ascending index.

    The deterministic tie-break makes every evaluation reproducible even
    when a method assigns identical scores (e.g. citation count).
    """
    array = np.asarray(scores, dtype=np.float64)
    if array.ndim != 1:
        raise ConfigurationError(
            f"scores must be a vector, got shape {array.shape}"
        )
    if not np.all(np.isfinite(array)):
        raise ConfigurationError("scores contain non-finite values")
    return np.lexsort((np.arange(array.size), -array)).astype(np.int64)


def top_k_indices(scores: FloatVector, k: int) -> IntVector:
    """The ``k`` highest-scoring paper indices, deterministic on ties."""
    if k < 0:
        raise ConfigurationError(f"k must be non-negative, got {k}")
    return ranking_from_scores(scores)[:k]
