"""Lightweight request tracing: span trees in a ring buffer.

A *trace* is one tree of :class:`Span` objects — the gateway starts one
per request (``gateway.request``) and one per applied stream
micro-batch (``stream.update``); the layers below add children with
the :func:`span` context manager (``gateway.coalesce`` →
``engine.batch`` → ``engine.execute`` → ``engine.shard`` →
``solver.solve``).  Finished traces land in a bounded ring buffer
(:class:`TraceCollector`) that ``/v1/trace`` serves as JSON and
``repro trace`` converts to Chrome trace-event format
(``chrome://tracing`` / Perfetto loads the dump directly).

Cost model: tracing is off until :func:`enable_tracing` installs a
collector, and even then a context without an active trace pays one
contextvar read per :func:`span` call — the serving layers keep their
instrumentation inline and the no-op path stays out of every profile.
Propagation across threads is explicit: the coalescer and the query
engine copy the submitting context into their executors, which is what
keeps a span (and the request id riding the same context) attached to
the request that caused the work.
"""

from __future__ import annotations

import random
import threading
import time
from collections import deque
from typing import Any, Iterable, Mapping
from contextvars import ContextVar

__all__ = [
    "Span",
    "TraceCollector",
    "chrome_trace",
    "disable_tracing",
    "enable_tracing",
    "get_collector",
    "span",
    "start_trace",
    "tracing_enabled",
]

_active_span: ContextVar["Span | None"] = ContextVar(
    "repro_active_span", default=None
)

_collector: "TraceCollector | None" = None


class Span:
    """One timed operation; children are operations it contained.

    The span is its own context manager (one allocation per span on
    the hot path): entering stamps the start and installs the span as
    the context's active one, exiting computes the duration and
    appends the span to its parent.
    """

    __slots__ = (
        "name", "attrs", "start_perf", "duration_seconds", "children",
        "_parent", "_token",
    )

    def __init__(self, name: str, attrs: dict[str, Any]) -> None:
        self.name = name
        self.attrs = attrs
        self.duration_seconds = 0.0
        self.children: list[Span] = []

    def set(self, **attrs: Any) -> None:
        """Attach attributes discovered while the span is open."""
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        self._parent = _active_span.get()
        self._token = _active_span.set(self)
        self.start_perf = time.perf_counter()
        return self

    def __exit__(self, *exc_info: Any) -> bool:
        self.duration_seconds = time.perf_counter() - self.start_perf
        _active_span.reset(self._token)
        parent = self._parent
        if parent is not None:
            # list.append is atomic under the GIL, so shard workers
            # appending to a shared parent from several threads is safe.
            parent.children.append(self)
        return False

    def to_dict(self, trace_start_perf: float) -> dict[str, Any]:
        """JSON form; times are milliseconds relative to the trace start."""
        return {
            "name": self.name,
            "start_ms": (self.start_perf - trace_start_perf) * 1e3,
            "duration_ms": self.duration_seconds * 1e3,
            "attrs": dict(self.attrs),
            "spans": [
                child.to_dict(trace_start_perf) for child in self.children
            ],
        }


class _Noop:
    """The shared do-nothing context manager for disabled paths."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: Any) -> bool:
        return False


_NOOP = _Noop()


def span(name: str, **attrs: Any):
    """A child span of the active trace; a shared no-op outside one.

    Use as ``with span("engine.execute", queries=3) as sp:``; inside,
    ``sp`` is the :class:`Span` (``sp.set(...)`` adds attributes) or
    ``None`` when no trace is active in the calling context.
    """
    if _active_span.get() is None:
        return _NOOP
    return Span(name, attrs)


class _TraceContext:
    __slots__ = ("_name", "_attrs", "_request_id", "_root", "_token", "_wall")

    def __init__(
        self, name: str, request_id: str | None, attrs: dict[str, Any]
    ) -> None:
        self._name = name
        self._request_id = request_id
        self._attrs = attrs

    def __enter__(self) -> Span:
        self._wall = time.time()
        root = Span(self._name, self._attrs)
        self._root = root
        self._token = _active_span.set(root)
        root.start_perf = time.perf_counter()
        return root

    def __exit__(self, *exc_info: Any) -> bool:
        root = self._root
        root.duration_seconds = time.perf_counter() - root.start_perf
        _active_span.reset(self._token)
        collector = _collector
        if collector is not None:
            # The finished Span tree is buffered as-is; conversion to
            # JSON happens at scrape time (/v1/trace), keeping the
            # request path free of the dict-tree build.
            collector.record(
                _FinishedTrace(root, self._request_id, self._wall)
            )
        return False


class _FinishedTrace:
    """One completed span tree awaiting scrape-time serialisation."""

    __slots__ = ("root", "request_id", "start_unix", "trace_id")

    def __init__(
        self, root: Span, request_id: str | None, start_unix: float
    ) -> None:
        self.root = root
        self.request_id = request_id
        self.start_unix = start_unix
        self.trace_id: str | None = None

    def to_document(self) -> dict[str, Any]:
        if self.trace_id is None:
            self.trace_id = f"{random.getrandbits(64):016x}"
        document = self.root.to_dict(self.root.start_perf)
        document["trace_id"] = self.trace_id
        document["request_id"] = self.request_id
        document["start_unix"] = self.start_unix
        return document


def start_trace(name: str, *, request_id: str | None = None, **attrs: Any):
    """Open a root span and record the finished tree on exit.

    A shared no-op while tracing is disabled, which is what keeps the
    per-request cost at one global read when the operator has not
    asked for traces.  With a collector sampling below 1.0, the
    decision is made here — head sampling — so an unsampled request
    pays one ``random()`` call and every :func:`span` below it stays
    on the no-op path.
    """
    collector = _collector
    if collector is None:
        return _NOOP
    sample = collector.sample
    if sample < 1.0 and random.random() >= sample:
        return _NOOP
    return _TraceContext(name, request_id, attrs)


class TraceCollector:
    """A bounded ring buffer of finished traces (newest kept).

    ``sample`` is the fraction of :func:`start_trace` calls that
    produce a trace (head sampling, decided per root).  1.0 — the
    default — records everything; production deployments chasing
    high request rates run sampled (see ``docs/OBSERVABILITY.md``).
    """

    def __init__(self, capacity: int = 256, *, sample: float = 1.0) -> None:
        if capacity < 1:
            from repro.errors import ConfigurationError

            raise ConfigurationError(
                f"trace capacity must be >= 1, got {capacity}"
            )
        if not 0.0 <= sample <= 1.0:
            from repro.errors import ConfigurationError

            raise ConfigurationError(
                f"trace sample must be within [0, 1], got {sample}"
            )
        self.sample = float(sample)
        self.capacity = int(capacity)
        self._buffer: deque[_FinishedTrace] = deque(maxlen=self.capacity)
        self._lock = threading.Lock()
        self.recorded_total = 0

    def record(self, trace: _FinishedTrace) -> None:
        """Append one finished trace (evicting the oldest at capacity)."""
        with self._lock:
            self._buffer.append(trace)
            self.recorded_total += 1

    def recent(self, limit: int | None = None) -> list[dict[str, Any]]:
        """The most recent traces as JSON documents, newest first."""
        with self._lock:
            buffered = list(self._buffer)
        buffered.reverse()
        if limit is not None:
            buffered = buffered[: max(0, int(limit))]
        # Serialisation happens here, outside the lock, so a slow
        # scrape never stalls the request path.
        return [trace.to_document() for trace in buffered]

    def clear(self) -> None:
        """Drop every buffered trace (the total count survives)."""
        with self._lock:
            self._buffer.clear()


def enable_tracing(
    capacity: int = 256, *, sample: float = 1.0
) -> TraceCollector:
    """Install (or replace) the process-global collector."""
    global _collector
    _collector = TraceCollector(capacity, sample=sample)
    return _collector


def disable_tracing() -> None:
    """Remove the collector; :func:`span` returns to the no-op path."""
    global _collector
    _collector = None


def tracing_enabled() -> bool:
    """Whether a collector is installed."""
    return _collector is not None


def get_collector() -> TraceCollector | None:
    """The installed collector, if any."""
    return _collector


def chrome_trace(traces: Iterable[Mapping[str, Any]]) -> dict[str, Any]:
    """Convert ``/v1/trace`` span trees to Chrome trace-event JSON.

    Each trace becomes one ``tid`` of complete (``"ph": "X"``) events;
    timestamps are microseconds anchored at each trace's wall-clock
    start, so concurrent requests line up on the shared timeline.
    """
    events: list[dict[str, Any]] = []

    def walk(
        node: Mapping[str, Any], base_us: float, tid: int
    ) -> None:
        events.append(
            {
                "name": str(node.get("name", "span")),
                "ph": "X",
                "ts": base_us + float(node.get("start_ms", 0.0)) * 1e3,
                "dur": float(node.get("duration_ms", 0.0)) * 1e3,
                "pid": 0,
                "tid": tid,
                "args": dict(node.get("attrs", {})),
            }
        )
        for child in node.get("spans", ()):
            walk(child, base_us, tid)

    for tid, trace in enumerate(traces):
        base_us = float(trace.get("start_unix", 0.0)) * 1e6
        root_index = len(events)
        walk(trace, base_us, tid)
        for key in ("trace_id", "request_id"):
            if trace.get(key):
                events[root_index]["args"][key] = trace[key]
    return {"traceEvents": events, "displayTimeUnit": "ms"}
