"""Cross-cutting observability: logs, traces, metrics — and depth.

``repro.obs`` is the one subsystem every serving layer writes into and
no serving layer depends on for correctness:

* :mod:`repro.obs.logging` — JSON-lines structured logging with a
  ``contextvars``-based request id that follows a request across the
  event loop, executor threads, and the coalescer's batch handoff;
  fleet processes stamp a ``worker`` identity on every line;
* :mod:`repro.obs.trace` — lightweight span trees per request (and per
  stream update), kept in a ring buffer, served at ``/v1/trace`` and
  exportable as Chrome trace-event JSON (``repro trace``);
* :mod:`repro.obs.registry` — named counters/gauges/histograms with a
  Prometheus text-exposition renderer, backing
  ``/v1/metrics?format=prometheus``, plus the raw-state merge helpers
  the multi-worker fleet aggregates per-process registries with;
* :mod:`repro.obs.profile` — a sampling wall/CPU profiler over
  ``sys._current_frames()`` with endpoint/request attribution and
  ``tracemalloc`` memory snapshots, behind ``/v1/profile`` and
  ``repro profile``;
* :mod:`repro.obs.slo` — declarative availability/latency objectives
  with multi-window multi-burn-rate alerting, behind ``/v1/slo`` and
  ``repro slo status``;
* :mod:`repro.obs.tsdb` — a fixed-capacity ring-buffer time-series
  store self-scraping the exported families, behind
  ``/v1/metrics/history``.

Everything is stdlib-only and cheap when disabled: an unconfigured
logger drops records on the level check, ``span()`` is a shared no-op
until a trace is active in the calling context, metric updates are a
dict lookup and an increment under a lock, and the profiler costs
nothing until started.
"""

from repro.obs.logging import (
    JsonLinesFormatter,
    bind_request_id,
    clear_worker_identity,
    configure_logging,
    current_request_id,
    get_logger,
    get_worker_identity,
    new_request_id,
    request_id_var,
    reset_logging,
    sanitize_request_id,
    set_worker_identity,
)
from repro.obs.profile import (
    MemoryProfiler,
    SamplingProfiler,
    collapsed_stacks,
    merge_profile_states,
    profile_phase,
    render_profile,
    speedscope_document,
)
from repro.obs.registry import (
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    Sample,
    counter_family,
    cumulative_buckets,
    families_state,
    gauge_family,
    geometric_bounds,
    get_registry,
    histogram_samples,
    label_families,
    merge_family_states,
    quantile_from_buckets,
    render_families,
    state_families,
)
from repro.obs.slo import (
    DEFAULT_BURN_RULES,
    DEFAULT_SLOS,
    SLO,
    BurnRule,
    SLOEngine,
    parse_slo,
)
from repro.obs.trace import (
    Span,
    TraceCollector,
    chrome_trace,
    disable_tracing,
    enable_tracing,
    get_collector,
    span,
    start_trace,
    tracing_enabled,
)
from repro.obs.tsdb import (
    TimeSeriesStore,
    counter_delta,
    parse_series_key,
    series_key,
)

__all__ = [
    # logging
    "JsonLinesFormatter",
    "bind_request_id",
    "clear_worker_identity",
    "configure_logging",
    "current_request_id",
    "get_logger",
    "get_worker_identity",
    "new_request_id",
    "request_id_var",
    "reset_logging",
    "sanitize_request_id",
    "set_worker_identity",
    # registry
    "REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "Sample",
    "counter_family",
    "cumulative_buckets",
    "families_state",
    "gauge_family",
    "geometric_bounds",
    "get_registry",
    "histogram_samples",
    "label_families",
    "merge_family_states",
    "quantile_from_buckets",
    "render_families",
    "state_families",
    # profile
    "MemoryProfiler",
    "SamplingProfiler",
    "collapsed_stacks",
    "merge_profile_states",
    "profile_phase",
    "render_profile",
    "speedscope_document",
    # slo
    "BurnRule",
    "DEFAULT_BURN_RULES",
    "DEFAULT_SLOS",
    "SLO",
    "SLOEngine",
    "parse_slo",
    # tsdb
    "TimeSeriesStore",
    "counter_delta",
    "parse_series_key",
    "series_key",
    # trace
    "Span",
    "TraceCollector",
    "chrome_trace",
    "disable_tracing",
    "enable_tracing",
    "get_collector",
    "span",
    "start_trace",
    "tracing_enabled",
]
