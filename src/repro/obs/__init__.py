"""Cross-cutting observability: logs, traces, metrics.

``repro.obs`` is the one subsystem every serving layer writes into and
no serving layer depends on for correctness:

* :mod:`repro.obs.logging` — JSON-lines structured logging with a
  ``contextvars``-based request id that follows a request across the
  event loop, executor threads, and the coalescer's batch handoff;
* :mod:`repro.obs.trace` — lightweight span trees per request (and per
  stream update), kept in a ring buffer, served at ``/v1/trace`` and
  exportable as Chrome trace-event JSON (``repro trace``);
* :mod:`repro.obs.registry` — named counters/gauges/histograms with a
  Prometheus text-exposition renderer, backing
  ``/v1/metrics?format=prometheus``.

Everything is stdlib-only and cheap when disabled: an unconfigured
logger drops records on the level check, ``span()`` is a shared no-op
until a trace is active in the calling context, and metric updates are
a dict lookup and an increment under a lock.
"""

from repro.obs.logging import (
    JsonLinesFormatter,
    bind_request_id,
    configure_logging,
    current_request_id,
    get_logger,
    new_request_id,
    request_id_var,
    reset_logging,
)
from repro.obs.registry import (
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    Sample,
    counter_family,
    cumulative_buckets,
    gauge_family,
    geometric_bounds,
    get_registry,
    histogram_samples,
    quantile_from_buckets,
    render_families,
)
from repro.obs.trace import (
    Span,
    TraceCollector,
    chrome_trace,
    disable_tracing,
    enable_tracing,
    get_collector,
    span,
    start_trace,
    tracing_enabled,
)

__all__ = [
    # logging
    "JsonLinesFormatter",
    "bind_request_id",
    "configure_logging",
    "current_request_id",
    "get_logger",
    "new_request_id",
    "request_id_var",
    "reset_logging",
    # registry
    "REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "Sample",
    "counter_family",
    "cumulative_buckets",
    "gauge_family",
    "geometric_bounds",
    "get_registry",
    "histogram_samples",
    "quantile_from_buckets",
    "render_families",
    # trace
    "Span",
    "TraceCollector",
    "chrome_trace",
    "disable_tracing",
    "enable_tracing",
    "get_collector",
    "span",
    "start_trace",
    "tracing_enabled",
]
