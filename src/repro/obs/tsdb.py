"""A fixed-capacity ring-buffer time-series store over the registry.

``/v1/metrics`` answers "what are the counters *now*"; diagnosing a
regression needs "what were they five minutes ago".  This module keeps
that history without a database: a background scraper samples a
family-collecting callable (by default everything the gateway exports)
on an interval and appends one point — ``(unix_ts, {family: {series:
value}})`` — to a bounded :class:`collections.deque`.  At the default
5s interval and 720-point capacity that is one hour of history in a
few MB, overwritten oldest-first, crash-safe by virtue of being
rebuildable from live traffic.

Series are keyed by their exposition form (``name_suffix{label="v"}``)
so the history endpoint's payload reads exactly like the Prometheus
text a scrape would have shown at that instant;
:func:`parse_series_key` recovers the structured labels when a
consumer (the SLO engine) needs them.

The fleet angle: a store is *driven by its collector*.  A single
process scrapes its own registry; the multi-worker supervisor passes a
collector that scrapes every worker's raw state and merges it
(exact counter/bucket sums), so the supervisor's store holds
fleet-truth history and ``/v1/metrics/history`` never shows one
worker's partial view.
"""

from __future__ import annotations

import re
import threading
import time
from collections import deque
from typing import Any, Callable, Iterable, Mapping

from repro.errors import ConfigurationError
from repro.obs.registry import MetricFamily, _render_labels

__all__ = [
    "TimeSeriesStore",
    "counter_delta",
    "parse_series_key",
    "series_key",
]

_LABEL_PAIR = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def series_key(
    name_with_suffix: str, labels: tuple[tuple[str, str], ...]
) -> str:
    """The exposition-format key of one series (``name{a="b"}``)."""
    return f"{name_with_suffix}{_render_labels(labels)}"


def parse_series_key(key: str) -> tuple[str, dict[str, str]]:
    """``(name_with_suffix, labels)`` back out of a series key."""
    name, brace, rest = key.partition("{")
    if not brace:
        return key, {}
    labels = {
        label: value.replace('\\"', '"').replace("\\\\", "\\")
        for label, value in _LABEL_PAIR.findall(rest[:-1])
    }
    return name, labels


class TimeSeriesStore:
    """Bounded in-memory history of every exported metric family.

    Parameters
    ----------
    collect:
        Zero-argument callable returning the
        :class:`~repro.obs.registry.MetricFamily` list to sample.
    capacity:
        Points retained (oldest evicted beyond it).
    interval:
        Seconds between scrapes when the background thread runs;
        ``<= 0`` disables the thread (scrapes happen only via
        :meth:`scrape_once`, which the SLO endpoint and tests drive
        directly).
    """

    def __init__(
        self,
        collect: Callable[[], Iterable[MetricFamily]],
        *,
        capacity: int = 720,
        interval: float = 5.0,
    ) -> None:
        if capacity < 1:
            raise ConfigurationError(
                f"tsdb capacity must be >= 1, got {capacity}"
            )
        self._collect = collect
        self.capacity = int(capacity)
        self.interval = float(interval)
        self._points: deque[tuple[float, dict[str, dict[str, float]]]]
        self._points = deque(maxlen=self.capacity)
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self.scrapes_total = 0

    # ------------------------------------------------------------------
    # Scraping
    # ------------------------------------------------------------------
    def scrape_once(self, now: float | None = None) -> float:
        """Sample the collector into one point; returns its timestamp.

        ``now`` is injectable so tests (and the property suite) can
        build deterministic histories.
        """
        timestamp = time.time() if now is None else float(now)
        families: dict[str, dict[str, float]] = {}
        for family in self._collect():
            series = families.setdefault(family.name, {})
            for sample in family.samples:
                key = series_key(
                    f"{family.name}{sample.suffix}", sample.labels
                )
                series[key] = float(sample.value)
        with self._lock:
            if self._points and timestamp < self._points[-1][0]:
                # A clock step backwards must not produce an unsorted
                # ring: clamp to the newest point's timestamp.
                timestamp = self._points[-1][0]
            self._points.append((timestamp, families))
            self.scrapes_total += 1
        return timestamp

    def start(self) -> "TimeSeriesStore":
        """Start the interval scraper (no-op when ``interval <= 0``)."""
        if self.interval <= 0 or (
            self._thread is not None and self._thread.is_alive()
        ):
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-tsdb", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the scraper thread (history stays queryable)."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.scrape_once()
            except Exception:  # pragma: no cover - collector bug
                # History must never kill the scraper: a collector that
                # raises once (mid-reconfiguration, say) costs one
                # point, not the whole store.
                continue

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _snapshot(
        self,
    ) -> list[tuple[float, dict[str, dict[str, float]]]]:
        with self._lock:
            return list(self._points)

    def families(self) -> list[str]:
        """Every family name with at least one stored sample."""
        names: set[str] = set()
        for _, families in self._snapshot():
            names.update(families)
        return sorted(names)

    def points(
        self,
        *,
        family: str | None = None,
        since: float | None = None,
        until: float | None = None,
    ) -> list[dict[str, Any]]:
        """Stored points (oldest first), optionally windowed/filtered.

        Each point is ``{"ts": unix, "series": {key: value}}``; with
        ``family`` the series map holds only that family's samples
        (points where the family was absent are skipped).
        """
        selected: list[dict[str, Any]] = []
        for timestamp, families in self._snapshot():
            if since is not None and timestamp < since:
                continue
            if until is not None and timestamp > until:
                continue
            if family is None:
                series: dict[str, float] = {}
                for family_series in families.values():
                    series.update(family_series)
            else:
                found = families.get(family)
                if found is None:
                    continue
                series = dict(found)
            selected.append({"ts": timestamp, "series": series})
        return selected

    def window(
        self, seconds: float, *, now: float | None = None
    ) -> tuple[dict[str, Any], dict[str, Any]] | None:
        """The ``(oldest-in-window, newest)`` point pair, or ``None``.

        The oldest point *at or after* ``now - seconds`` anchors the
        window; when retention is shorter than the ask, the window
        silently clamps to what history exists — burn rates over a
        3-day window on a 2-minute-old process are "since start", which
        is the honest answer.
        """
        snapshot = self.points()
        if len(snapshot) < 1:
            return None
        newest = snapshot[-1]
        anchor_ts = (
            newest["ts"] if now is None else float(now)
        ) - float(seconds)
        for point in snapshot:
            if point["ts"] >= anchor_ts:
                return point, newest
        return snapshot[-1], newest

    def history_payload(
        self,
        *,
        family: str | None = None,
        since: float | None = None,
        limit: int | None = None,
    ) -> dict[str, Any]:
        """The ``/v1/metrics/history`` JSON document."""
        points = self.points(family=family, since=since)
        total = len(points)
        if limit is not None and limit >= 0:
            points = points[-limit:]
        return {
            "family": family,
            "since": since,
            "interval_seconds": self.interval,
            "capacity": self.capacity,
            "scrapes_total": self.scrapes_total,
            "families": self.families(),
            "points_total": total,
            "points": points,
        }


def counter_delta(
    old: Mapping[str, Any],
    new: Mapping[str, Any],
    *,
    prefix: str,
    where: Callable[[dict[str, str]], bool] | None = None,
) -> float:
    """Summed increase of matching counter series between two points.

    ``prefix`` selects series whose key starts with it (e.g.
    ``repro_gateway_responses_total``); ``where`` further filters on
    the parsed labels.  Series absent from the old point count from
    zero (a worker that joined mid-window); decreases clamp to zero
    (a worker restart reset its counter — the fleet total must not go
    negative because one process was reborn).
    """
    total = 0.0
    old_series = old.get("series", {})
    for key, value in new.get("series", {}).items():
        if not key.startswith(prefix):
            continue
        if where is not None:
            _, labels = parse_series_key(key)
            if not where(labels):
                continue
        total += max(0.0, float(value) - float(old_series.get(key, 0.0)))
    return total
