"""Sampling wall/CPU profiler with request-phase attribution.

A serving stack that cannot answer "what was the process *doing* when
p99 regressed" is flying blind; a deterministic tracer answers it for
one request, a sampling profiler answers it for the fleet.  This module
is the stdlib-only version of the latter:

* a background thread wakes at a configurable Hz, walks
  ``sys._current_frames()``, and folds every thread's stack into a
  bounded ``(phase, stack) -> count`` table — a few hundred samples per
  second cost microseconds each, which is what keeps the default-rate
  posture inside the ``obs_overhead`` bench's <5% budget;
* each sample is **attributed**: :func:`profile_phase` marks the
  calling thread with the endpoint currently being served (and the
  request id bound in the caller's context at entry), so the profile
  answers "which endpoint burns the CPU", not just "which function";
* counts are **mergeable**: :meth:`SamplingProfiler.state_dict` is raw
  sums, and :func:`merge_profile_states` folds N workers' states into
  one fleet profile — the same raw-counts-then-merge discipline the
  gateway's latency histograms use;
* renderers produce the two formats profiler UIs eat directly:
  :func:`collapsed_stacks` (Brendan Gregg's folded format, one
  ``frame;frame;frame count`` line per stack, flamegraph.pl-ready) and
  :func:`speedscope_document` (https://www.speedscope.app JSON);
* :class:`MemoryProfiler` wraps :mod:`tracemalloc` for allocation
  snapshots and diffs, attributed to source lines.

Attribution is *sampled*, not exact: on an asyncio event loop several
requests interleave on one thread, and a sample is charged to the
phase most recently entered on the sampled thread.  Over thousands of
samples that converges on where the time actually goes, which is the
contract a sampling profiler makes.
"""

from __future__ import annotations

import sys
import threading
import time
from contextlib import contextmanager
from typing import Any, Iterator, Mapping, Sequence

from repro.errors import ConfigurationError
from repro.obs.logging import current_request_id

__all__ = [
    "MemoryProfiler",
    "SamplingProfiler",
    "collapsed_stacks",
    "merge_profile_states",
    "profile_phase",
    "render_profile",
    "speedscope_document",
]

#: Thread id -> stack of (phase label, request id at entry).  Written
#: by :func:`profile_phase` on the request path (list append/remove
#: under the GIL), read by the sampler thread, which charges samples
#: to the most recently entered open block.  A *stack* rather than a
#: saved-previous slot because on an asyncio event loop interleaved
#: requests exit in arbitrary order: each block removes its own entry
#: wherever it sits, so no exit order can strand a stale phase.
_THREAD_PHASE: dict[int, list[tuple[str, str | None]]] = {}

#: Phase charged to threads no :func:`profile_phase` block has marked.
IDLE_PHASE = "idle"

#: Hard cap on distinct ``(phase, stack)`` keys: a pathological
#: workload degrades to dropping *new* stacks, never to unbounded
#: memory.  Request-id attribution has its own (smaller) cap.
_MAX_STACKS = 4096
_MAX_REQUEST_IDS = 512


@contextmanager
def profile_phase(label: str) -> Iterator[None]:
    """Attribute this thread's samples to ``label`` for the block.

    The request id bound in the calling context at entry is captured
    alongside the label, so the profiler can also report "samples per
    request id" without ever touching another thread's contextvars.
    Nested blocks restore the enclosing attribution on exit.

    On an asyncio event loop several requests interleave on one
    thread, so blocks can exit in a different order than they entered;
    each exit removes its *own* entry from the per-thread stack (not
    whatever happens to be on top), leaving the survivors' attribution
    intact.  Mid-flight samples charge the most recently entered open
    block — approximate across awaits, as documented.
    """
    ident = threading.get_ident()
    entry = (label, current_request_id())
    stack = _THREAD_PHASE.setdefault(ident, [])
    stack.append(entry)
    try:
        yield
    finally:
        # Value-equal entries are interchangeable (same label, same
        # request id), so removing the first match is correct even
        # when identical blocks interleave.
        try:
            stack.remove(entry)
        except ValueError:  # pragma: no cover - double-exit guard
            pass
        if not stack:
            _THREAD_PHASE.pop(ident, None)


def _fold_frame(frame: Any) -> str:
    """One stack entry: ``function (module:line)``."""
    code = frame.f_code
    module = code.co_filename.rsplit("/", 1)[-1]
    return f"{code.co_name} ({module}:{frame.f_lineno})"


class SamplingProfiler:
    """A background statistical profiler over ``sys._current_frames()``.

    Parameters
    ----------
    hz:
        Target samples per second (the wall-clock sampling rate).  The
        default is deliberately off the 100 Hz beat most periodic work
        runs at, so the sampler does not alias against it.
    max_depth:
        Frames kept per stack (deepest-caller side truncated).
    trace_memory:
        Also start a :class:`MemoryProfiler` (tracemalloc) whose
        snapshot rides along in :meth:`render`.
    """

    def __init__(
        self,
        hz: float = 67.0,
        *,
        max_depth: int = 48,
        trace_memory: bool = False,
    ) -> None:
        if hz <= 0:
            raise ConfigurationError(
                f"profiler hz must be > 0, got {hz}"
            )
        self.hz = float(hz)
        self.max_depth = int(max_depth)
        self._counts: dict[tuple[str, tuple[str, ...]], int] = {}
        self._by_request: dict[str, int] = {}
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self.samples_total = 0
        self.dropped_stacks = 0
        self.started_unix: float | None = None
        self.memory: MemoryProfiler | None = (
            MemoryProfiler() if trace_memory else None
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def running(self) -> bool:
        """Whether the sampler thread is alive."""
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "SamplingProfiler":
        """Start the sampler thread (idempotent while running)."""
        if self.running:
            return self
        self._stop.clear()
        self.started_unix = time.time()
        if self.memory is not None:
            self.memory.start()
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop sampling (collected counts survive for rendering)."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        if self.memory is not None:
            self.memory.stop()

    def _run(self) -> None:
        period = 1.0 / self.hz
        own = threading.get_ident()
        while not self._stop.wait(period):
            self.sample_once(skip_thread=own)

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def sample_once(self, *, skip_thread: int | None = None) -> None:
        """Take one sample of every live thread (the loop body).

        Public so tests (and the docs) can drive the profiler
        deterministically without a second thread.
        """
        frames = sys._current_frames()
        now_counts: list[tuple[str, str | None, tuple[str, ...]]] = []
        for ident, frame in frames.items():
            if ident == skip_thread:
                continue
            phase, request_id = IDLE_PHASE, None
            open_blocks = _THREAD_PHASE.get(ident)
            if open_blocks:
                try:
                    phase, request_id = open_blocks[-1]
                except IndexError:  # pragma: no cover - exit race
                    pass  # the owning thread emptied it mid-read
            stack: list[str] = []
            depth = 0
            while frame is not None and depth < self.max_depth:
                stack.append(_fold_frame(frame))
                frame = frame.f_back
                depth += 1
            stack.reverse()  # root first, collapsed-stack order
            now_counts.append((phase, request_id, tuple(stack)))
        with self._lock:
            for phase, request_id, stack in now_counts:
                self.samples_total += 1
                key = (phase, stack)
                if key in self._counts:
                    self._counts[key] += 1
                elif len(self._counts) < _MAX_STACKS:
                    self._counts[key] = 1
                else:
                    self.dropped_stacks += 1
                if request_id is not None:
                    if request_id in self._by_request:
                        self._by_request[request_id] += 1
                    elif len(self._by_request) < _MAX_REQUEST_IDS:
                        self._by_request[request_id] = 1

    # ------------------------------------------------------------------
    # State (the mergeable wire form) and rendering
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, Any]:
        """Raw counts — the per-process, fleet-mergeable representation.

        ``stacks`` is a list (not a dict) because the key is a
        ``(phase, frames)`` pair; JSON round-trips it losslessly and
        :func:`merge_profile_states` re-keys on the pair.
        """
        with self._lock:
            stacks = [
                {
                    "phase": phase,
                    "frames": list(frames),
                    "count": count,
                }
                for (phase, frames), count in self._counts.items()
            ]
            by_request = dict(self._by_request)
        return {
            "running": self.running,
            "hz": self.hz,
            "samples_total": self.samples_total,
            "dropped_stacks": self.dropped_stacks,
            "started_unix": self.started_unix,
            "stacks": stacks,
            "samples_by_request": by_request,
        }

    def render(self, *, top: int = 50) -> dict[str, Any]:
        """The ``/v1/profile`` JSON document for this one process."""
        return render_profile(self.state_dict(), top=top)

    def reset(self) -> None:
        """Drop every collected sample (rate/limits keep their config)."""
        with self._lock:
            self._counts.clear()
            self._by_request.clear()
            self.samples_total = 0
            self.dropped_stacks = 0


def merge_profile_states(
    states: Sequence[Mapping[str, Any]]
) -> dict[str, Any]:
    """Fold N per-worker profiler states into one fleet state.

    Stack counts and per-request counts are exact sums keyed on the
    ``(phase, frames)`` pair — the profiler analogue of summing raw
    histogram buckets instead of averaging per-worker quantiles.
    """
    counts: dict[tuple[str, tuple[str, ...]], int] = {}
    by_request: dict[str, int] = {}
    samples_total = 0
    dropped = 0
    hz = 0.0
    started: float | None = None
    running = False
    for state in states:
        running = running or bool(state.get("running"))
        hz = max(hz, float(state.get("hz", 0.0)))
        samples_total += int(state.get("samples_total", 0))
        dropped += int(state.get("dropped_stacks", 0))
        state_started = state.get("started_unix")
        if state_started is not None:
            started = (
                float(state_started)
                if started is None
                else min(started, float(state_started))
            )
        for stack in state.get("stacks", ()):
            key = (str(stack["phase"]), tuple(stack["frames"]))
            counts[key] = counts.get(key, 0) + int(stack["count"])
        for request_id, count in state.get(
            "samples_by_request", {}
        ).items():
            by_request[request_id] = (
                by_request.get(request_id, 0) + int(count)
            )
    return {
        "running": running,
        "hz": hz,
        "samples_total": samples_total,
        "dropped_stacks": dropped,
        "started_unix": started,
        "stacks": [
            {"phase": phase, "frames": list(frames), "count": count}
            for (phase, frames), count in counts.items()
        ],
        "samples_by_request": by_request,
    }


def render_profile(
    state: Mapping[str, Any], *, top: int = 50
) -> dict[str, Any]:
    """A profile state as the ``/v1/profile`` JSON document.

    ``by_phase`` sums to ``samples_total - dropped_stacks`` — the
    schema validator enforces the identity; ``stacks`` keeps only the
    ``top`` hottest, reported as ``truncated`` when stacks were cut.
    """
    stacks = sorted(
        state.get("stacks", ()),
        key=lambda s: (-int(s["count"]), s["phase"], s["frames"]),
    )
    by_phase: dict[str, int] = {}
    for stack in stacks:
        phase = str(stack["phase"])
        by_phase[phase] = by_phase.get(phase, 0) + int(stack["count"])
    hot_requests = sorted(
        state.get("samples_by_request", {}).items(),
        key=lambda item: (-item[1], item[0]),
    )[:10]
    return {
        "enabled": True,
        "running": bool(state.get("running")),
        "hz": float(state.get("hz", 0.0)),
        "samples_total": int(state.get("samples_total", 0)),
        "dropped_stacks": int(state.get("dropped_stacks", 0)),
        "started_unix": state.get("started_unix"),
        "by_phase": dict(
            sorted(by_phase.items(), key=lambda kv: (-kv[1], kv[0]))
        ),
        "stacks": stacks[: max(0, top)],
        "truncated": len(stacks) > top,
        "hot_requests": [
            {"request_id": request_id, "samples": samples}
            for request_id, samples in hot_requests
        ],
    }


def collapsed_stacks(state: Mapping[str, Any]) -> str:
    """Brendan Gregg's folded-stack text: ``phase;f1;f2 count`` lines.

    Pipe straight into ``flamegraph.pl`` (or paste into speedscope,
    which auto-detects the format).  Frames are root-first, the phase
    is the synthetic root frame — so the flamegraph's first split is
    by endpoint.
    """
    lines = []
    for stack in sorted(
        state.get("stacks", ()),
        key=lambda s: (s["phase"], s["frames"]),
    ):
        frames = ";".join(
            str(frame).replace(";", ",") for frame in stack["frames"]
        )
        label = str(stack["phase"]).replace(";", ",")
        folded = f"{label};{frames}" if frames else label
        lines.append(f"{folded} {int(stack['count'])}")
    return "\n".join(lines) + ("\n" if lines else "")


def speedscope_document(
    state: Mapping[str, Any], *, name: str = "repro"
) -> dict[str, Any]:
    """The profile as a https://www.speedscope.app sampled document."""
    frame_index: dict[str, int] = {}
    frames: list[dict[str, str]] = []

    def intern(label: str) -> int:
        found = frame_index.get(label)
        if found is None:
            found = frame_index[label] = len(frames)
            frames.append({"name": label})
        return found

    samples: list[list[int]] = []
    weights: list[int] = []
    for stack in sorted(
        state.get("stacks", ()),
        key=lambda s: (s["phase"], s["frames"]),
    ):
        indexed = [intern(str(stack["phase"]))]
        indexed.extend(intern(str(f)) for f in stack["frames"])
        samples.append(indexed)
        weights.append(int(stack["count"]))
    total = sum(weights)
    return {
        "$schema": "https://www.speedscope.app/file-format-schema.json",
        "shared": {"frames": frames},
        "profiles": [
            {
                "type": "sampled",
                "name": name,
                "unit": "none",
                "startValue": 0,
                "endValue": total,
                "samples": samples,
                "weights": weights,
            }
        ],
        "exporter": "repro-profile",
        "name": name,
    }


class MemoryProfiler:
    """Allocation snapshots and diffs via :mod:`tracemalloc`.

    ``tracemalloc`` is the stdlib's allocation tracker: once started it
    records the Python source line behind every live allocation.  The
    cost is real (every allocation pays a bookkeeping hit), so it rides
    the same opt-in flag as the sampling profiler rather than being
    always-on.
    """

    def __init__(self, *, frames: int = 1) -> None:
        self.frames = int(frames)
        self._baseline: Any = None
        self._started_here = False

    def start(self) -> None:
        """Begin tracking (no-op if tracemalloc is already running)."""
        import tracemalloc

        if not tracemalloc.is_tracing():
            tracemalloc.start(self.frames)
            self._started_here = True
        self._baseline = tracemalloc.take_snapshot()

    def stop(self) -> None:
        """Stop tracking if this instance started it."""
        import tracemalloc

        if self._started_here and tracemalloc.is_tracing():
            tracemalloc.stop()
        self._started_here = False

    def snapshot(self, *, top: int = 10) -> dict[str, Any]:
        """Current usage and the ``top`` allocation sites.

        When :meth:`start` ran earlier, each site also carries its
        delta against that baseline (``size_diff_kb``) — the "what
        grew" view a leak hunt starts from.
        """
        import tracemalloc

        if not tracemalloc.is_tracing():
            return {"tracing": False, "top": []}
        current = tracemalloc.take_snapshot()
        traced, peak = tracemalloc.get_traced_memory()
        if self._baseline is not None:
            stats = current.compare_to(self._baseline, "lineno")
            sites = [
                {
                    "site": str(stat.traceback),
                    "size_kb": round(stat.size / 1024.0, 1),
                    "size_diff_kb": round(stat.size_diff / 1024.0, 1),
                    "count": stat.count,
                }
                for stat in stats[: max(0, top)]
            ]
        else:
            sites = [
                {
                    "site": str(stat.traceback),
                    "size_kb": round(stat.size / 1024.0, 1),
                    "count": stat.count,
                }
                for stat in current.statistics("lineno")[: max(0, top)]
            ]
        return {
            "tracing": True,
            "traced_kb": round(traced / 1024.0, 1),
            "peak_kb": round(peak / 1024.0, 1),
            "top": sites,
        }
