"""Declarative SLOs with multi-window multi-burn-rate alerting.

An SLO turns "the gateway feels slow" into arithmetic: an objective
("99.9% of requests succeed", "99% answer under 250ms"), an error
budget (one minus the objective), and a **burn rate** — the ratio of
the observed error rate to the budget.  Burn rate 1.0 spends the
budget exactly over the SLO period; 14.4 spends a 30-day budget in two
days.  The alerting strategy is the multi-window multi-burn-rate form
from Google's SRE workbook: an alert fires only when the burn rate
exceeds its threshold over *both* a long window (is it sustained?) and
a short window (is it still happening?), which kills both flappy
alerts and stale ones:

========  =====  ======  ==========================================
severity  burn   windows  meaning
========  =====  ======  ==========================================
page      14.4   5m/1h    2% of a 30-day budget gone in one hour
page      6.0    30m/6h   5% of the budget gone in six hours
ticket    1.0    6h/3d    burning at/above the sustainable rate
========  =====  ======  ==========================================

Everything is computed from data the stack already exports: the
availability SLO reads the ``repro_gateway_responses_total`` status
counters, the latency SLO reads the cumulative latency histogram
buckets (good = requests at or under the bucket covering the
threshold — thresholds snap to a bucket bound so "good" is exact, not
interpolated), and the windows come from the
:class:`~repro.obs.tsdb.TimeSeriesStore` history.  Feed the engine a
*fleet* store (the multi-worker supervisor's merged scrape) and every
number is fleet-truth.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Mapping

from repro.errors import ConfigurationError
from repro.obs.tsdb import TimeSeriesStore, counter_delta, parse_series_key

__all__ = [
    "BurnRule",
    "DEFAULT_BURN_RULES",
    "DEFAULT_SLOS",
    "SLO",
    "SLOEngine",
    "format_window",
    "parse_slo",
]


@dataclass(frozen=True)
class SLO:
    """One objective over the gateway's query traffic.

    ``kind`` is ``availability`` (good = non-5xx responses) or
    ``latency`` (good = requests at or under ``threshold`` seconds);
    ``objective`` is the target good-fraction (0 < objective < 1).
    """

    name: str
    kind: str
    objective: float
    threshold: float | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("availability", "latency"):
            raise ConfigurationError(
                f"SLO kind must be availability or latency, "
                f"got {self.kind!r}"
            )
        if not 0.0 < self.objective < 1.0:
            raise ConfigurationError(
                f"SLO objective must be within (0, 1), "
                f"got {self.objective}"
            )
        if self.kind == "latency" and (
            self.threshold is None or self.threshold <= 0
        ):
            raise ConfigurationError(
                "a latency SLO needs a positive threshold in seconds"
            )

    @property
    def budget(self) -> float:
        """The error budget: the tolerated bad-request fraction."""
        return 1.0 - self.objective


@dataclass(frozen=True)
class BurnRule:
    """One multi-window alert: fire when burn >= factor on both."""

    short_seconds: float
    long_seconds: float
    factor: float
    severity: str


DEFAULT_BURN_RULES: tuple[BurnRule, ...] = (
    BurnRule(300.0, 3600.0, 14.4, "page"),
    BurnRule(1800.0, 21600.0, 6.0, "page"),
    BurnRule(21600.0, 259200.0, 1.0, "ticket"),
)

DEFAULT_SLOS: tuple[SLO, ...] = (
    SLO(name="availability", kind="availability", objective=0.999),
    SLO(name="latency-p99-250ms", kind="latency", objective=0.99,
        threshold=0.25),
)

#: Endpoints whose traffic the SLOs cover: the query surface, not the
#: scrape/introspection endpoints (a Prometheus scrape failing its own
#: latency target must not page anyone).
QUERY_ENDPOINTS = frozenset(("top", "paper", "compare"))

_RESPONSES = "repro_gateway_responses_total"
_LATENCY = "repro_gateway_request_latency_seconds"


def parse_slo(spec: str) -> SLO:
    """An :class:`SLO` from a CLI spec string.

    Formats::

        availability:99.9             -> 99.9% non-5xx
        latency:99:0.25               -> 99% of requests <= 0.25s
        latency:99.5:250ms            -> thresholds accept an ms suffix

    The objective is given in percent (as operators quote SLOs), the
    threshold in seconds unless suffixed ``ms``.
    """
    parts = spec.split(":")
    kind = parts[0].strip().lower()
    if kind == "availability" and len(parts) == 2:
        objective = _percent(parts[1], spec)
        return SLO(
            name=f"availability-{parts[1].strip()}",
            kind="availability",
            objective=objective,
        )
    if kind == "latency" and len(parts) == 3:
        objective = _percent(parts[1], spec)
        raw = parts[2].strip().lower()
        try:
            threshold = (
                float(raw[:-2]) / 1000.0
                if raw.endswith("ms")
                else float(raw)
            )
        except ValueError:
            raise ConfigurationError(
                f"bad latency threshold in SLO spec {spec!r}"
            ) from None
        return SLO(
            name=f"latency-p{parts[1].strip()}-{raw}",
            kind="latency",
            objective=objective,
            threshold=threshold,
        )
    raise ConfigurationError(
        f"bad SLO spec {spec!r} (want availability:PCT or "
        "latency:PCT:SECONDS)"
    )


def _percent(raw: str, spec: str) -> float:
    try:
        value = float(raw)
    except ValueError:
        raise ConfigurationError(
            f"bad objective percentage in SLO spec {spec!r}"
        ) from None
    if not 0.0 < value < 100.0:
        raise ConfigurationError(
            f"SLO objective must be within (0, 100) percent, "
            f"got {value} in {spec!r}"
        )
    return value / 100.0


def format_window(seconds: float) -> str:
    """``300 -> "5m"``, ``21600 -> "6h"``, ``259200 -> "3d"``."""
    value = float(seconds)
    for unit_seconds, unit in ((86400.0, "d"), (3600.0, "h"),
                               (60.0, "m")):
        if value >= unit_seconds and value % unit_seconds == 0:
            return f"{int(value // unit_seconds)}{unit}"
    return f"{int(value)}s"


def _is_query_endpoint(labels: Mapping[str, str]) -> bool:
    endpoint = labels.get("endpoint")
    return endpoint is None or endpoint in QUERY_ENDPOINTS


class SLOEngine:
    """Evaluate objectives against a metrics history store.

    One engine per store; :meth:`evaluate` renders the full ``/v1/slo``
    document.  With ``scrape=True`` (how the endpoint calls it) the
    evaluation starts by appending a fresh point, so the short-window
    burn rates always include traffic up to "now".
    """

    def __init__(
        self,
        store: TimeSeriesStore,
        *,
        slos: tuple[SLO, ...] = DEFAULT_SLOS,
        rules: tuple[BurnRule, ...] = DEFAULT_BURN_RULES,
    ) -> None:
        if not slos:
            raise ConfigurationError("SLOEngine needs at least one SLO")
        self.store = store
        self.slos = tuple(slos)
        self.rules = tuple(rules)

    # ------------------------------------------------------------------
    # Good/total extraction from one stored point
    # ------------------------------------------------------------------
    @staticmethod
    def _availability_delta(
        old: Mapping[str, Any], new: Mapping[str, Any]
    ) -> tuple[float, float]:
        total = counter_delta(old, new, prefix=_RESPONSES)
        bad = counter_delta(
            old,
            new,
            prefix=_RESPONSES,
            where=lambda labels: labels.get("status", "").startswith(
                "5"
            ),
        )
        return total - bad, total

    @staticmethod
    def _latency_delta(
        old: Mapping[str, Any],
        new: Mapping[str, Any],
        threshold: float,
    ) -> tuple[float, float]:
        """Good/total from the cumulative ``le`` buckets.

        "Good" is the cumulative count of the smallest bucket bound at
        or above the threshold — with the registry's fixed geometric
        bounds that bound exists for any sane threshold, and the count
        is *exact* (cumulative buckets are <=-counts by construction).
        """

        def good_bound(point: Mapping[str, Any]) -> float | None:
            best: float | None = None
            for key in point.get("series", {}):
                if not key.startswith(_LATENCY + "_bucket"):
                    continue
                _, labels = parse_series_key(key)
                if not _is_query_endpoint(labels):
                    continue
                le = labels.get("le")
                if le is None or le == "+Inf":
                    continue
                bound = float(le)
                if bound >= threshold and (
                    best is None or bound < best
                ):
                    best = bound
            return best

        bound = good_bound(new)
        good = (
            0.0
            if bound is None
            else counter_delta(
                new=new,
                old=old,
                prefix=_LATENCY + "_bucket",
                where=lambda labels: (
                    _is_query_endpoint(labels)
                    and labels.get("le") not in (None, "+Inf")
                    and float(labels["le"]) == bound
                ),
            )
        )
        total = counter_delta(
            new=new,
            old=old,
            prefix=_LATENCY + "_count",
            where=_is_query_endpoint,
        )
        return min(good, total), total

    def _delta(
        self,
        slo: SLO,
        old: Mapping[str, Any],
        new: Mapping[str, Any],
    ) -> tuple[float, float]:
        if slo.kind == "availability":
            return self._availability_delta(old, new)
        assert slo.threshold is not None
        return self._latency_delta(old, new, slo.threshold)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(
        self, *, scrape: bool = False, now: float | None = None
    ) -> dict[str, Any]:
        """The ``/v1/slo`` JSON document.

        Per SLO: lifetime compliance (from the newest point's raw
        totals), the remaining budget fraction, one burn rate per
        distinct window, and the firing state of every rule.
        """
        if scrape:
            self.store.scrape_once(now)
        evaluated = time.time() if now is None else float(now)
        zero = {"series": {}}
        newest_points = self.store.points()
        newest = newest_points[-1] if newest_points else dict(zero)
        windows = sorted(
            {
                seconds
                for rule in self.rules
                for seconds in (rule.short_seconds, rule.long_seconds)
            }
        )
        objectives: list[dict[str, Any]] = []
        for slo in self.slos:
            good_total, total = self._delta(slo, zero, newest)
            compliance = good_total / total if total else 1.0
            burn_by_window: dict[str, float] = {}
            burn_raw: dict[float, float] = {}
            for seconds in windows:
                pair = self.store.window(seconds, now=now)
                if pair is None:
                    burn = 0.0
                else:
                    old, new = pair
                    good, window_total = self._delta(slo, old, new)
                    error_rate = (
                        (window_total - good) / window_total
                        if window_total
                        else 0.0
                    )
                    burn = error_rate / slo.budget
                burn_raw[seconds] = burn
                burn_by_window[format_window(seconds)] = burn
            alerts = [
                {
                    "severity": rule.severity,
                    "short_window": format_window(rule.short_seconds),
                    "long_window": format_window(rule.long_seconds),
                    "factor": rule.factor,
                    "short_burn": burn_raw[rule.short_seconds],
                    "long_burn": burn_raw[rule.long_seconds],
                    "firing": (
                        burn_raw[rule.short_seconds] >= rule.factor
                        and burn_raw[rule.long_seconds] >= rule.factor
                    ),
                }
                for rule in self.rules
            ]
            entry: dict[str, Any] = {
                "name": slo.name,
                "kind": slo.kind,
                "objective": slo.objective,
                "error_budget": slo.budget,
                "total": total,
                "good": good_total,
                "compliance": compliance,
                "budget_consumed": min(
                    1.0, (1.0 - compliance) / slo.budget
                ),
                "burn_rates": burn_by_window,
                "alerts": alerts,
                "firing": any(alert["firing"] for alert in alerts),
            }
            if slo.threshold is not None:
                entry["threshold_seconds"] = slo.threshold
            objectives.append(entry)
        return {
            "evaluated_unix": evaluated,
            "windows": [format_window(seconds) for seconds in windows],
            "objectives": objectives,
            "firing": any(o["firing"] for o in objectives),
        }
