"""Named metric instruments and the Prometheus text exposition.

The gateway's PR-5 metrics were bespoke: a facade of plain counters
rendered as one JSON document.  This module generalises that into the
three standard instrument kinds — :class:`Counter`, :class:`Gauge`,
:class:`Histogram` — registered by name (optionally with label
dimensions) in a :class:`MetricsRegistry`, plus a renderer for the
Prometheus text exposition format (version 0.0.4): ``# HELP`` /
``# TYPE`` comments, ``_bucket``/``_sum``/``_count`` histogram series
with cumulative ``le`` buckets ending at ``+Inf``.

The histogram bucket math lives here too, shared with the gateway's
:class:`~repro.gateway.LatencyHistogram`:

* :func:`geometric_bounds` — the fixed geometric bucket layout;
* :func:`quantile_from_buckets` — quantile recovery that interpolates
  *within* the bucket the quantile rank falls into (assuming a uniform
  distribution across the bucket), instead of reporting the bucket's
  upper bound.  On geometric buckets (~26% wide) the upper bound
  overstates mid-bucket quantiles by up to a full bucket width; linear
  interpolation cuts the typical error to a few percent;
* :func:`cumulative_buckets` — the ``le``-labelled cumulative counts a
  Prometheus histogram exposes.

A process-global :data:`REGISTRY` is the default sink for the serving
layers (solver, delta updater, stream ingestor, query engine); the
gateway renders it next to its own per-instance request metrics.
:meth:`MetricsRegistry.reset` zeroes values but keeps registrations,
so module-level instrument handles stay live across test isolation.
"""

from __future__ import annotations

import math
import re
import threading
from bisect import bisect_left
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.errors import ConfigurationError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "Sample",
    "REGISTRY",
    "get_registry",
    "geometric_bounds",
    "quantile_from_buckets",
    "cumulative_buckets",
    "counter_family",
    "gauge_family",
    "histogram_samples",
    "render_families",
    "label_families",
    "families_state",
    "state_families",
    "merge_family_states",
]

_METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


# ----------------------------------------------------------------------
# Bucket math (shared with the gateway's LatencyHistogram)
# ----------------------------------------------------------------------
def geometric_bounds(
    lo: float, hi: float, per_decade: int
) -> tuple[float, ...]:
    """Geometric bucket upper bounds from ``lo`` to ``hi``."""
    bounds = []
    factor = 10.0 ** (1.0 / per_decade)
    value = lo
    while value < hi:
        bounds.append(value)
        value *= factor
    bounds.append(hi)
    return tuple(bounds)


def quantile_from_buckets(
    bounds: Sequence[float],
    counts: Sequence[int],
    total: int,
    max_value: float,
    q: float,
) -> float:
    """The ``q``-quantile recovered from bucket counts (0 when empty).

    The quantile rank is located in its bucket, then linearly
    interpolated between the bucket's lower and upper bound by the
    rank's position among the bucket's observations — the uniform
    within-bucket assumption.  Observations beyond the last bound (the
    overflow bucket) report the observed maximum, and no estimate ever
    exceeds it: the slowest observation caps every quantile.
    """
    if total <= 0:
        return 0.0
    rank = q * total
    seen = 0
    for position, bucket in enumerate(counts):
        if not bucket:
            continue
        below = seen
        seen += bucket
        if seen >= rank:
            if position >= len(bounds):
                return max_value
            lower = bounds[position - 1] if position else 0.0
            upper = bounds[position]
            fraction = min(1.0, max(0.0, (rank - below) / bucket))
            return min(lower + fraction * (upper - lower), max_value)
    return max_value


def _le_label(bound: float) -> str:
    """A bucket bound as Prometheus renders ``le`` values."""
    if math.isinf(bound):
        return "+Inf"
    return format_value(bound)


def cumulative_buckets(
    bounds: Sequence[float], counts: Sequence[int]
) -> tuple[tuple[str, int], ...]:
    """``(le_label, cumulative_count)`` pairs, ending with ``+Inf``.

    ``counts`` must have one more entry than ``bounds`` (the overflow
    bucket), the layout both histogram classes use.
    """
    pairs: list[tuple[str, int]] = []
    running = 0
    for bound, count in zip(bounds, counts):
        running += count
        pairs.append((_le_label(bound), running))
    running += counts[len(bounds)]
    pairs.append(("+Inf", running))
    return tuple(pairs)


def format_value(value: float) -> str:
    """A sample value in exposition format (integers without ``.0``)."""
    number = float(value)
    if math.isinf(number):
        return "+Inf" if number > 0 else "-Inf"
    if number.is_integer() and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


# ----------------------------------------------------------------------
# Families and rendering
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Sample:
    """One exposition line: ``name<suffix>{labels} value``."""

    suffix: str
    labels: tuple[tuple[str, str], ...]
    value: float


@dataclass(frozen=True)
class MetricFamily:
    """All samples of one metric name, with its kind and help text."""

    name: str
    kind: str
    help: str
    samples: tuple[Sample, ...]


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(text: str) -> str:
    return (
        text.replace("\\", "\\\\")
        .replace("\n", "\\n")
        .replace('"', '\\"')
    )


def _render_labels(labels: tuple[tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label_value(str(value))}"'
        for name, value in labels
    )
    return "{" + inner + "}"


def render_families(families: Iterable[MetricFamily]) -> str:
    """Render families as Prometheus text exposition (sorted by name)."""
    lines: list[str] = []
    for family in sorted(families, key=lambda f: f.name):
        lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for sample in family.samples:
            lines.append(
                f"{family.name}{sample.suffix}"
                f"{_render_labels(sample.labels)} "
                f"{format_value(sample.value)}"
            )
    return "\n".join(lines) + "\n" if lines else ""


def counter_family(
    name: str,
    help: str,
    values: Mapping[tuple[tuple[str, str], ...], float],
) -> MetricFamily:
    """A counter family from pre-aggregated ``labels -> value`` data."""
    return MetricFamily(
        name=name,
        kind="counter",
        help=help,
        samples=tuple(
            Sample(suffix="", labels=labels, value=value)
            for labels, value in values.items()
        ),
    )


def gauge_family(name: str, help: str, value: float) -> MetricFamily:
    """A single-sample unlabelled gauge family."""
    return MetricFamily(
        name=name,
        kind="gauge",
        help=help,
        samples=(Sample(suffix="", labels=(), value=float(value)),),
    )


def histogram_samples(
    labels: tuple[tuple[str, str], ...],
    bucket_pairs: Sequence[tuple[str, int]],
    total_sum: float,
    total_count: int,
) -> tuple[Sample, ...]:
    """The ``_bucket``/``_sum``/``_count`` samples of one series."""
    samples = [
        Sample(
            suffix="_bucket",
            labels=labels + (("le", le),),
            value=float(cumulative),
        )
        for le, cumulative in bucket_pairs
    ]
    samples.append(Sample(suffix="_sum", labels=labels, value=total_sum))
    samples.append(
        Sample(suffix="_count", labels=labels, value=float(total_count))
    )
    return tuple(samples)


# ----------------------------------------------------------------------
# Instruments
# ----------------------------------------------------------------------
class _Instrument:
    """Shared naming/label plumbing of the three instrument kinds."""

    kind = "untyped"

    def __init__(
        self, name: str, help: str, labelnames: Sequence[str] = ()
    ) -> None:
        if not _METRIC_NAME.match(name):
            raise ConfigurationError(f"invalid metric name: {name!r}")
        for label in labelnames:
            if not _LABEL_NAME.match(label) or label == "le":
                raise ConfigurationError(
                    f"invalid label name {label!r} for metric {name!r}"
                )
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()

    def _key(self, labels: Mapping[str, Any]) -> tuple[str, ...]:
        if tuple(sorted(labels)) != tuple(sorted(self.labelnames)):
            raise ConfigurationError(
                f"metric {self.name!r} takes labels "
                f"{list(self.labelnames)}, got {sorted(labels)}"
            )
        return tuple(str(labels[name]) for name in self.labelnames)

    def _labels_of(self, key: tuple[str, ...]) -> tuple[tuple[str, str], ...]:
        return tuple(zip(self.labelnames, key))

    def describe(self) -> dict[str, Any]:
        """Kind/labels metadata (the JSON rendering's header)."""
        return {
            "kind": self.kind,
            "help": self.help,
            "labels": list(self.labelnames),
        }


class Counter(_Instrument):
    """A monotonically increasing count (optionally per labelset)."""

    kind = "counter"

    def __init__(
        self, name: str, help: str, labelnames: Sequence[str] = ()
    ) -> None:
        super().__init__(name, help, labelnames)
        self._values: dict[tuple[str, ...], float] = {}

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        """Add ``amount`` (>= 0) to the labelled series."""
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name!r} cannot decrease (got {amount})"
            )
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        """Current value of the labelled series (0 if never touched)."""
        return self._values.get(self._key(labels), 0.0)

    def _zero(self) -> None:
        with self._lock:
            self._values.clear()

    def collect(self) -> MetricFamily:
        with self._lock:
            items = sorted(self._values.items())
        if not items and not self.labelnames:
            items = [((), 0.0)]
        return MetricFamily(
            name=self.name,
            kind=self.kind,
            help=self.help,
            samples=tuple(
                Sample(suffix="", labels=self._labels_of(key), value=value)
                for key, value in items
            ),
        )


class Gauge(_Instrument):
    """A value that can go up and down (optionally per labelset)."""

    kind = "gauge"

    def __init__(
        self, name: str, help: str, labelnames: Sequence[str] = ()
    ) -> None:
        super().__init__(name, help, labelnames)
        self._values: dict[tuple[str, ...], float] = {}

    def set(self, value: float, **labels: Any) -> None:
        """Set the labelled series to ``value``."""
        key = self._key(labels)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        """Add ``amount`` (may be negative) to the labelled series."""
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        """Current value of the labelled series (0 if never set)."""
        return self._values.get(self._key(labels), 0.0)

    def _zero(self) -> None:
        with self._lock:
            self._values.clear()

    def collect(self) -> MetricFamily:
        with self._lock:
            items = sorted(self._values.items())
        if not items and not self.labelnames:
            items = [((), 0.0)]
        return MetricFamily(
            name=self.name,
            kind=self.kind,
            help=self.help,
            samples=tuple(
                Sample(suffix="", labels=self._labels_of(key), value=value)
                for key, value in items
            ),
        )


class _HistogramSeries:
    """Bucket counts / sum / count / max of one labelled series."""

    __slots__ = ("counts", "count", "sum", "max_value")

    def __init__(self, n_bounds: int) -> None:
        self.counts = [0] * (n_bounds + 1)
        self.count = 0
        self.sum = 0.0
        self.max_value = 0.0


class Histogram(_Instrument):
    """Fixed-bucket histogram with interpolated quantile recovery.

    Default buckets are geometric from 50 microseconds to 30 seconds
    (ten per decade) — the latency layout the gateway uses — with a
    ``+Inf`` overflow bucket; pass ``bounds`` for other units.
    """

    kind = "histogram"

    DEFAULT_BOUNDS = geometric_bounds(50e-6, 30.0, per_decade=10)

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        *,
        bounds: Sequence[float] | None = None,
    ) -> None:
        super().__init__(name, help, labelnames)
        chosen = tuple(bounds) if bounds is not None else self.DEFAULT_BOUNDS
        if not chosen or list(chosen) != sorted(set(chosen)):
            raise ConfigurationError(
                f"histogram {name!r} bounds must be strictly increasing"
            )
        self.bounds = chosen
        self._series: dict[tuple[str, ...], _HistogramSeries] = {}

    def _series_for(self, key: tuple[str, ...]) -> _HistogramSeries:
        series = self._series.get(key)
        if series is None:
            series = self._series.setdefault(
                key, _HistogramSeries(len(self.bounds))
            )
        return series

    def observe(self, value: float, **labels: Any) -> None:
        """Record one observation into the labelled series."""
        key = self._key(labels)
        series = self._series_for(key)
        position = bisect_left(self.bounds, value)
        with self._lock:
            series.counts[position] += 1
            series.count += 1
            series.sum += value
            if value > series.max_value:
                series.max_value = value

    def quantile(self, q: float, **labels: Any) -> float:
        """Interpolated ``q``-quantile of the labelled series."""
        series = self._series.get(self._key(labels))
        if series is None:
            return 0.0
        return quantile_from_buckets(
            self.bounds, series.counts, series.count,
            series.max_value, q,
        )

    def snapshot(self, **labels: Any) -> dict[str, float]:
        """Count/sum/quantiles of the labelled series, JSON-ready."""
        series = self._series.get(self._key(labels))
        if series is None or series.count == 0:
            return {
                "count": 0, "sum": 0.0, "mean": 0.0,
                "p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0,
            }
        return {
            "count": series.count,
            "sum": series.sum,
            "mean": series.sum / series.count,
            "p50": self.quantile(0.50, **labels),
            "p95": self.quantile(0.95, **labels),
            "p99": self.quantile(0.99, **labels),
            "max": series.max_value,
        }

    def _zero(self) -> None:
        with self._lock:
            self._series.clear()

    def collect(self) -> MetricFamily:
        samples: list[Sample] = []
        with self._lock:
            snapshot = [
                (key, list(series.counts), series.sum, series.count)
                for key, series in sorted(self._series.items())
            ]
        for key, counts, total_sum, total_count in snapshot:
            samples.extend(
                histogram_samples(
                    self._labels_of(key),
                    cumulative_buckets(self.bounds, counts),
                    total_sum,
                    total_count,
                )
            )
        return MetricFamily(
            name=self.name,
            kind=self.kind,
            help=self.help,
            samples=tuple(samples),
        )


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class MetricsRegistry:
    """Get-or-create instrument store plus extra collector callbacks.

    Instruments are addressed by name; asking twice with the same name
    returns the same object, asking with a conflicting kind or label
    set raises :class:`~repro.errors.ConfigurationError` — two call
    sites silently sharing a name but disagreeing on its shape is a
    bug, not a merge.
    """

    def __init__(self) -> None:
        self._instruments: dict[str, _Instrument] = {}
        self._collectors: list[Callable[[], Iterable[MetricFamily]]] = []
        self._lock = threading.Lock()

    def _get_or_create(
        self, cls: type, name: str, help: str,
        labelnames: Sequence[str], **kwargs: Any,
    ) -> Any:
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, cls) or (
                    existing.labelnames != tuple(labelnames)
                ):
                    raise ConfigurationError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind} with labels "
                        f"{list(existing.labelnames)}"
                    )
                return existing
            instrument = cls(name, help, labelnames, **kwargs)
            self._instruments[name] = instrument
            return instrument

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Counter:
        """Get or create a :class:`Counter`."""
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Gauge:
        """Get or create a :class:`Gauge`."""
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        *,
        bounds: Sequence[float] | None = None,
    ) -> Histogram:
        """Get or create a :class:`Histogram`."""
        return self._get_or_create(
            Histogram, name, help, labelnames, bounds=bounds
        )

    def register_collector(
        self, collector: Callable[[], Iterable[MetricFamily]]
    ) -> None:
        """Add a callback that contributes families at scrape time."""
        with self._lock:
            self._collectors.append(collector)

    def collect(self) -> list[MetricFamily]:
        """All families: registered instruments plus collectors."""
        with self._lock:
            instruments = list(self._instruments.values())
            collectors = list(self._collectors)
        families = [instrument.collect() for instrument in instruments]
        for collector in collectors:
            families.extend(collector())
        return families

    def render_prometheus(
        self, extra_families: Iterable[MetricFamily] = ()
    ) -> str:
        """The text exposition of everything this registry knows."""
        return render_families([*self.collect(), *extra_families])

    def render_json(self) -> dict[str, Any]:
        """A JSON document of every instrument's current samples."""
        document: dict[str, Any] = {}
        for family in self.collect():
            entry = document.setdefault(
                family.name,
                {"kind": family.kind, "help": family.help, "samples": []},
            )
            for sample in family.samples:
                entry["samples"].append(
                    {
                        "suffix": sample.suffix,
                        "labels": dict(sample.labels),
                        "value": sample.value,
                    }
                )
        return document

    def reset(self) -> None:
        """Zero every instrument, keeping registrations and handles.

        Module-level instrument handles (the serving layers hold them)
        stay valid: the same objects keep recording into this registry
        after the reset — which is why reset zeroes values instead of
        discarding instruments.
        """
        with self._lock:
            instruments = list(self._instruments.values())
        for instrument in instruments:
            instrument._zero()  # type: ignore[attr-defined]


#: The process-global default registry the serving layers record into.
REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-global :data:`REGISTRY`."""
    return REGISTRY


# ----------------------------------------------------------------------
# Cross-process family plumbing (the multi-worker fleet)
# ----------------------------------------------------------------------
def label_families(
    families: Iterable[MetricFamily],
    extra_labels: tuple[tuple[str, str], ...],
) -> list[MetricFamily]:
    """Every sample re-labelled with ``extra_labels`` appended.

    The multi-worker gateway stamps ``worker="N"`` onto each worker's
    exposition this way, so a Prometheus scrape that happened to land
    on worker 3 says so on every series.
    """
    if not extra_labels:
        return list(families)
    return [
        MetricFamily(
            name=family.name,
            kind=family.kind,
            help=family.help,
            samples=tuple(
                Sample(
                    suffix=sample.suffix,
                    labels=sample.labels + extra_labels,
                    value=sample.value,
                )
                for sample in family.samples
            ),
        )
        for family in families
    ]


def families_state(
    families: Iterable[MetricFamily],
) -> list[dict[str, Any]]:
    """Families as a JSON-safe state list (the scrape wire form).

    The inverse of :func:`state_families`; a worker serves this under
    ``/v1/metrics?format=state`` so the supervisor can merge the raw
    per-process registries instead of trying to parse text exposition.
    """
    return [
        {
            "name": family.name,
            "kind": family.kind,
            "help": family.help,
            "samples": [
                {
                    "suffix": sample.suffix,
                    "labels": [list(pair) for pair in sample.labels],
                    "value": sample.value,
                }
                for sample in family.samples
            ],
        }
        for family in families
    ]


def state_families(
    state: Iterable[Mapping[str, Any]],
) -> list[MetricFamily]:
    """Families back out of a :func:`families_state` document."""
    return [
        MetricFamily(
            name=str(entry["name"]),
            kind=str(entry["kind"]),
            help=str(entry.get("help", "")),
            samples=tuple(
                Sample(
                    suffix=str(sample["suffix"]),
                    labels=tuple(
                        (str(name), str(value))
                        for name, value in sample["labels"]
                    ),
                    value=float(sample["value"]),
                )
                for sample in entry["samples"]
            ),
        )
        for entry in state
    ]


def merge_family_states(
    states: Sequence[Iterable[Mapping[str, Any]]],
) -> list[MetricFamily]:
    """N workers' :func:`families_state` documents merged into one.

    Samples are summed per ``(name, suffix, labels)`` — exact for
    counters and histogram ``_bucket``/``_sum``/``_count`` series
    (every process uses the same fixed bounds), and the fleet-total
    reading for gauges (in-flight requests across workers add, they
    do not average).  Help text and kind come from the first state
    that declares the family.
    """
    order: list[str] = []
    meta: dict[str, tuple[str, str]] = {}
    merged: dict[
        str, dict[tuple[str, tuple[tuple[str, str], ...]], float]
    ] = {}
    for state in states:
        for entry in state:
            name = str(entry["name"])
            if name not in meta:
                meta[name] = (
                    str(entry["kind"]),
                    str(entry.get("help", "")),
                )
                order.append(name)
                merged[name] = {}
            samples = merged[name]
            for sample in entry["samples"]:
                key = (
                    str(sample["suffix"]),
                    tuple(
                        (str(label), str(value))
                        for label, value in sample["labels"]
                    ),
                )
                samples[key] = samples.get(key, 0.0) + float(
                    sample["value"]
                )
    return [
        MetricFamily(
            name=name,
            kind=meta[name][0],
            help=meta[name][1],
            samples=tuple(
                Sample(suffix=suffix, labels=labels, value=value)
                for (suffix, labels), value in merged[name].items()
            ),
        )
        for name in order
    ]
