"""Structured JSON-lines logging with request-id propagation.

One log line is one JSON object on stderr — machine-parseable under
load, greppable by request id.  The request id itself lives in a
:data:`contextvars.ContextVar`: the gateway binds one per request, the
coalescer carries each submitter's context across the executor handoff,
and a :class:`logging.Filter` stamps the current id onto every record
at call time — so a log line emitted three layers below the gateway
still correlates with the ``X-Request-Id`` header the client saw.

Nothing here runs unless :func:`configure_logging` is called (the CLI
does for ``serve-http``; ``REPRO_LOG_LEVEL`` / ``REPRO_LOG_FORMAT``
drive the defaults): an unconfigured ``repro.*`` logger propagates to
the root logger, whose default WARNING threshold drops the serving
layers' INFO/DEBUG telemetry on the cheap ``isEnabledFor`` check.
"""

from __future__ import annotations

import json as _json
import logging
import os
import sys
import uuid
from contextlib import contextmanager
from contextvars import ContextVar
from datetime import datetime, timezone
from typing import Any, Iterator, TextIO

__all__ = [
    "JsonLinesFormatter",
    "bind_request_id",
    "clear_worker_identity",
    "configure_logging",
    "current_request_id",
    "get_logger",
    "get_worker_identity",
    "new_request_id",
    "request_id_var",
    "reset_logging",
    "sanitize_request_id",
    "set_worker_identity",
]

_ROOT_NAME = "repro"
_ENV_LEVEL = "REPRO_LOG_LEVEL"
_ENV_FORMAT = "REPRO_LOG_FORMAT"

#: The per-request correlation id; ``None`` outside any request.
request_id_var: ContextVar[str | None] = ContextVar(
    "repro_request_id", default=None
)


def new_request_id() -> str:
    """A fresh 16-hex-digit request id."""
    return uuid.uuid4().hex[:16]


def current_request_id() -> str | None:
    """The request id bound in the calling context, if any."""
    return request_id_var.get()


#: Longest client-supplied request id adopted verbatim; anything
#: longer is truncated to this many bytes (headers are latin-1, so
#: characters are bytes here).
MAX_REQUEST_ID_BYTES = 128


def sanitize_request_id(raw: str | None) -> str | None:
    """A client ``X-Request-Id`` made safe to adopt, or ``None``.

    The id lands verbatim in every JSON log line, trace tree, and
    profiler attribution key this request touches, so a hostile header
    must not be able to smuggle structure into them: ids containing
    control characters (including CR/LF — header-injection classics —
    and DEL) are rejected outright, and the caller falls back to its
    generated id.  Oversized ids are truncated to
    :data:`MAX_REQUEST_ID_BYTES` rather than rejected — length is a
    resource concern, not an injection one.
    """
    if not raw:
        return None
    cleaned = raw.strip()[:MAX_REQUEST_ID_BYTES]
    if not cleaned:
        return None
    for char in cleaned:
        code = ord(char)
        if code < 0x20 or code == 0x7F:
            return None
    return cleaned


#: ``(label, pid)`` of this process within a worker fleet, or ``None``
#: outside ``--workers N`` mode.  Process-global on purpose: identity
#: is a property of the process, not of a request context.
_WORKER_IDENTITY: tuple[str, int] | None = None


def set_worker_identity(label: str, pid: int | None = None) -> None:
    """Mark this process as fleet member ``label``.

    Every JSON log line gains ``worker``/``worker_pid`` fields and the
    gateway stamps a ``worker`` label onto its exported metrics.  The
    supervisor sets ``"supervisor"``; each forked worker overwrites
    the inherited value with its own index at startup.
    """
    global _WORKER_IDENTITY
    _WORKER_IDENTITY = (str(label), os.getpid() if pid is None else pid)


def clear_worker_identity() -> None:
    """Back to single-process logging (tests and re-used processes)."""
    global _WORKER_IDENTITY
    _WORKER_IDENTITY = None


def get_worker_identity() -> tuple[str, int] | None:
    """The ``(label, pid)`` set by :func:`set_worker_identity`."""
    return _WORKER_IDENTITY


@contextmanager
def bind_request_id(request_id: str) -> Iterator[str]:
    """Bind ``request_id`` in this context for the duration of the block."""
    token = request_id_var.set(request_id)
    try:
        yield request_id
    finally:
        request_id_var.reset(token)


class _RequestIdFilter(logging.Filter):
    """Stamp the contextvar request id onto every record at call time.

    A *filter* rather than formatter logic: the record is stamped in
    the context that emitted it, so a handler formatting records later
    (or on another thread) still sees the right id.
    """

    def filter(self, record: logging.LogRecord) -> bool:
        if not hasattr(record, "request_id"):
            record.request_id = request_id_var.get()
        return True


#: LogRecord's own attributes; anything else on a record is an
#: ``extra=`` field the formatter should surface as a JSON key.
_RESERVED = frozenset(
    vars(logging.makeLogRecord({})).keys()
) | {"request_id", "taskName", "message", "asctime"}

#: One shared encoder: skips ``json.dumps``'s per-call argument
#: processing and encoder construction on the hot path.
_ENCODER = _json.JSONEncoder(separators=(",", ":"), default=str)


def _record_extras(record: logging.LogRecord) -> dict[str, Any]:
    return {
        key: value
        for key, value in vars(record).items()
        if key not in _RESERVED
    }


class JsonLinesFormatter(logging.Formatter):
    """One JSON object per line: ts, level, logger, message, extras.

    Schema (documented in ``docs/OBSERVABILITY.md``)::

        {"ts": "2026-08-07T12:00:00.123456+00:00", "level": "INFO",
         "logger": "repro.gateway", "message": "request",
         "request_id": "9f2c...-3", ...extra fields..., "exc": "..."}

    ``request_id`` appears whenever one is bound in the emitting
    context; ``exc`` carries the formatted traceback when the record
    has exception info.  Extra fields that are not JSON-serialisable
    are stringified rather than dropped — a log line must never raise.
    """

    def __init__(self) -> None:
        super().__init__()
        # The to-the-second prefix repeats across consecutive records,
        # so it is cached; a cross-thread race merely recomputes it.
        self._ts_second = -1
        self._ts_prefix = ""

    def _timestamp(self, created: float) -> str:
        second = int(created)
        if second != self._ts_second:
            self._ts_prefix = datetime.fromtimestamp(
                second, tz=timezone.utc
            ).strftime("%Y-%m-%dT%H:%M:%S")
            self._ts_second = second
        return f"{self._ts_prefix}.{int((created - second) * 1e6):06d}+00:00"

    def format(self, record: logging.LogRecord) -> str:
        entry: dict[str, Any] = {
            "ts": self._timestamp(record.created),
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
        }
        request_id = getattr(record, "request_id", None)
        if request_id is None:
            request_id = request_id_var.get()
        if request_id is not None:
            entry["request_id"] = request_id
        entry.update(_record_extras(record))
        identity = _WORKER_IDENTITY
        if identity is not None:
            # After the extras on purpose: ``worker`` is the identity
            # of the *emitting* process and must win over any extra
            # that happens to share the key (a supervisor line about
            # worker 3 still carries worker: "supervisor").
            entry["worker"], entry["worker_pid"] = identity
        if record.exc_info:
            entry["exc"] = self.formatException(record.exc_info)
        return _ENCODER.encode(entry)


class _HumanFormatter(logging.Formatter):
    """The text fallback: timestamped line plus rendered extras."""

    def format(self, record: logging.LogRecord) -> str:
        head = (
            f"{datetime.fromtimestamp(record.created).isoformat()} "
            f"{record.levelname:<7} {record.name}: {record.getMessage()}"
        )
        parts = []
        request_id = getattr(record, "request_id", None)
        if request_id:
            parts.append(f"request_id={request_id}")
        identity = _WORKER_IDENTITY
        if identity is not None:
            parts.append(f"worker={identity[0]}")
        parts.extend(
            f"{key}={value}"
            for key, value in sorted(_record_extras(record).items())
        )
        if parts:
            head = f"{head} [{' '.join(parts)}]"
        if record.exc_info:
            head = f"{head}\n{self.formatException(record.exc_info)}"
        return head


def _resolve_level(level: str | int | None) -> int:
    if level is None:
        level = os.environ.get(_ENV_LEVEL, "INFO")
    if isinstance(level, int):
        return level
    resolved = logging.getLevelName(str(level).upper())
    if not isinstance(resolved, int):
        from repro.errors import ConfigurationError

        raise ConfigurationError(f"unknown log level: {level!r}")
    return resolved


def configure_logging(
    level: str | int | None = None,
    *,
    json: bool | None = None,
    stream: TextIO | None = None,
) -> logging.Logger:
    """Install the ``repro`` handler; returns the configured logger.

    Parameters
    ----------
    level:
        Threshold name or number; default from ``REPRO_LOG_LEVEL``
        (falling back to ``INFO``).
    json:
        JSON-lines output (default) vs human-readable text; default
        from ``REPRO_LOG_FORMAT`` (``json``/``text``).
    stream:
        Destination (default ``sys.stderr`` — stdout stays free for
        command output).

    Reconfiguring replaces the previously installed handler, so tests
    and the overhead bench can flip the sink without stacking handlers.

    Configuring also applies the stdlib logging "Optimization" knobs
    (caller/thread/process capture off): the JSON schema never emits
    those fields, so collecting them per record is pure overhead on
    the request path.  :func:`reset_logging` restores the defaults.
    """
    if json is None:
        json = os.environ.get(_ENV_FORMAT, "json").lower() != "text"
    _set_capture_flags(enabled=False)
    logger = logging.getLogger(_ROOT_NAME)
    _remove_obs_handlers(logger)
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.addFilter(_RequestIdFilter())
    handler.setFormatter(
        JsonLinesFormatter() if json else _HumanFormatter()
    )
    handler._repro_obs_handler = True  # type: ignore[attr-defined]
    logger.addHandler(handler)
    logger.setLevel(_resolve_level(level))
    # Stop at our handler: the root logger must not double-print, and
    # pytest's capture handler would otherwise re-render every line.
    logger.propagate = False
    return logger


def reset_logging() -> None:
    """Remove the installed handler and restore the unconfigured state."""
    _set_capture_flags(enabled=True)
    logger = logging.getLogger(_ROOT_NAME)
    _remove_obs_handlers(logger)
    logger.setLevel(logging.NOTSET)
    logger.propagate = True


#: ``logging._srcfile`` as imported, so reset can restore caller capture.
_SRCFILE_DEFAULT = getattr(logging, "_srcfile", None)


def _set_capture_flags(*, enabled: bool) -> None:
    """Toggle the stdlib per-record capture work (docs: "Optimization").

    Disabling skips the stack walk behind ``%(pathname)s`` and the
    thread/process lookups on every record — none of which the JSON or
    text schema emits.
    """
    logging.logThreads = enabled
    logging.logProcesses = enabled
    logging.logMultiprocessing = enabled
    # Private but the documented lever for skipping findCaller().
    setattr(logging, "_srcfile", _SRCFILE_DEFAULT if enabled else None)


def _remove_obs_handlers(logger: logging.Logger) -> None:
    for handler in list(logger.handlers):
        if getattr(handler, "_repro_obs_handler", False):
            logger.removeHandler(handler)
            handler.close()


def get_logger(name: str) -> logging.Logger:
    """The ``repro.<name>`` logger (namespaced under the obs handler)."""
    return logging.getLogger(f"{_ROOT_NAME}.{name}")
