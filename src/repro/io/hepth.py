"""Loader for the arXiv hep-th collection (KDD Cup 2003 format).

The paper's first dataset.  The KDD Cup distribution consists of two
plain-text files:

* ``cit-HepTh.txt`` — one citation per line, ``<citing> <cited>``, with
  ``#``-prefixed comment lines;
* ``cit-HepTh-dates.txt`` — one line per paper, ``<paper> <YYYY-MM-DD>``,
  also with ``#`` comments.  Paper ids may carry the cross-listing
  prefix ``11`` (e.g. ``119901234`` for ``9901234``), which is stripped,
  matching the dataset's documented convention.

Papers appearing in the citation file without a date entry are dropped
(with their edges), as are citations whose endpoints are unknown.
"""

from __future__ import annotations

import os
from typing import Iterable

from repro.errors import DataFormatError
from repro.graph.builder import NetworkBuilder
from repro.graph.citation_network import CitationNetwork

__all__ = ["load_hepth", "parse_hepth_date"]


def parse_hepth_date(text: str) -> float:
    """Convert ``YYYY-MM-DD`` to a fractional year.

    >>> parse_hepth_date("1997-07-01")
    1997.5
    """
    parts = text.strip().split("-")
    if len(parts) != 3:
        raise DataFormatError(f"malformed date {text!r}, expected YYYY-MM-DD")
    try:
        year, month, day = (int(p) for p in parts)
    except ValueError:
        raise DataFormatError(f"non-numeric date components in {text!r}") from None
    if not 1 <= month <= 12 or not 1 <= day <= 31:
        raise DataFormatError(f"out-of-range date {text!r}")
    return year + (month - 1) / 12.0 + (day - 1) / 365.0


def _normalize_id(raw: str) -> str:
    """Strip the KDD-Cup cross-list prefix: 11-prefixed 9-digit ids."""
    token = raw.strip()
    if len(token) == 9 and token.startswith("11"):
        token = token[2:]
    return token.lstrip("0") or "0"


def _data_lines(path: str) -> Iterable[tuple[int, str]]:
    with open(path, "r", encoding="utf-8", errors="replace") as handle:
        for number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if stripped and not stripped.startswith("#"):
                yield number, stripped


def load_hepth(
    citations_path: str,
    dates_path: str,
) -> CitationNetwork:
    """Load the hep-th network from the two KDD-Cup files.

    Raises
    ------
    DataFormatError
        On malformed lines; missing papers are skipped silently (the
        public dump contains citations to withdrawn papers).
    """
    for path in (citations_path, dates_path):
        if not os.path.exists(path):
            raise DataFormatError(f"file not found: {path}")

    builder = NetworkBuilder(missing_references="skip")
    for number, line in _data_lines(dates_path):
        tokens = line.split()
        if len(tokens) != 2:
            raise DataFormatError(
                f"{dates_path}:{number}: expected '<paper> <date>', got "
                f"{line!r}"
            )
        paper_id = _normalize_id(tokens[0])
        if paper_id in builder:
            continue  # the dump contains a handful of duplicate date rows
        builder.add_paper(paper_id, parse_hepth_date(tokens[1]))

    for number, line in _data_lines(citations_path):
        tokens = line.split()
        if len(tokens) != 2:
            raise DataFormatError(
                f"{citations_path}:{number}: expected '<citing> <cited>', "
                f"got {line!r}"
            )
        citing = _normalize_id(tokens[0])
        cited = _normalize_id(tokens[1])
        if citing in builder:
            builder.add_reference(citing, cited)

    return builder.build()
