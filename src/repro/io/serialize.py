"""Binary save/load of citation networks (single ``.npz`` file).

Loaders and generators can be slow on large corpora; serialising the
parsed :class:`~repro.graph.CitationNetwork` lets experiments reload it
in milliseconds.  The format is a plain NumPy ``.npz`` archive:

* ``paper_ids``  — unicode array,
* ``pub_time``   — float64,
* ``citing`` / ``cited`` — int64 edge arrays,
* ``author_indptr`` / ``author_indices`` — CSR-encoded author lists
  (present only when the network has author data),
* ``venues``     — int64 (present only with venue data),
* ``format_version`` — for forward compatibility.

The payload helpers :func:`network_payload` / :func:`network_from_payload`
convert between a network and its array dictionary without touching the
filesystem; composite formats embedding a network (the score index of
:mod:`repro.serve`) build on them.
"""

from __future__ import annotations

import os
from typing import Mapping

import numpy as np

from repro.errors import DataFormatError
from repro.graph.citation_network import CitationNetwork

__all__ = [
    "save_network",
    "load_network",
    "network_payload",
    "network_from_payload",
    "FORMAT_VERSION",
]

FORMAT_VERSION = 1


def network_payload(network: CitationNetwork) -> dict[str, np.ndarray]:
    """The array dictionary encoding ``network`` in the ``.npz`` format."""
    payload: dict[str, np.ndarray] = {
        "format_version": np.asarray([FORMAT_VERSION], dtype=np.int64),
        "paper_ids": np.asarray(network.paper_ids, dtype=np.str_),
        "pub_time": network.publication_times,
        "citing": network.citing,
        "cited": network.cited,
    }
    if network.paper_authors is not None:
        lengths = [len(authors) for authors in network.paper_authors]
        indptr = np.concatenate(
            ([0], np.cumsum(np.asarray(lengths, dtype=np.int64)))
        )
        indices = np.asarray(
            [a for authors in network.paper_authors for a in authors],
            dtype=np.int64,
        )
        payload["author_indptr"] = indptr
        payload["author_indices"] = indices
    if network.paper_venues is not None:
        payload["venues"] = network.paper_venues
    return payload


def network_from_payload(
    arrays: Mapping[str, np.ndarray], *, source: str = "payload"
) -> CitationNetwork:
    """Rebuild a network from an array dictionary (or open archive).

    ``source`` names the origin in error messages.

    Raises
    ------
    DataFormatError
        If mandatory arrays are missing or the declared format version
        is unsupported.
    """
    members = set(arrays.keys()) if hasattr(arrays, "keys") else set(arrays)
    required = {"format_version", "paper_ids", "pub_time", "citing", "cited"}
    missing = required - members
    if missing:
        raise DataFormatError(
            f"{source}: not a repro network payload "
            f"(missing {sorted(missing)})"
        )
    version = int(arrays["format_version"][0])
    if version != FORMAT_VERSION:
        raise DataFormatError(
            f"{source}: unsupported format version {version} "
            f"(this build reads version {FORMAT_VERSION})"
        )
    paper_authors = None
    if "author_indptr" in members:
        indptr = arrays["author_indptr"]
        indices = arrays["author_indices"]
        paper_authors = [
            tuple(int(a) for a in indices[indptr[i]: indptr[i + 1]])
            for i in range(len(indptr) - 1)
        ]
    venues = arrays["venues"] if "venues" in members else None
    return CitationNetwork(
        paper_ids=[str(p) for p in arrays["paper_ids"]],
        publication_times=arrays["pub_time"],
        citing=arrays["citing"],
        cited=arrays["cited"],
        paper_authors=paper_authors,
        paper_venues=venues,
        validate=True,
    )


def save_network(network: CitationNetwork, path: str) -> None:
    """Write ``network`` to ``path`` (conventionally ``*.npz``)."""
    np.savez_compressed(path, **network_payload(network))


def load_network(path: str) -> CitationNetwork:
    """Read a network previously written by :func:`save_network`.

    Raises
    ------
    DataFormatError
        If the file is missing, lacks mandatory arrays, or declares an
        unsupported format version.
    """
    if not os.path.exists(path):
        raise DataFormatError(f"file not found: {path}")
    with np.load(path, allow_pickle=False) as archive:
        return network_from_payload(
            {name: archive[name] for name in archive.files}, source=path
        )
