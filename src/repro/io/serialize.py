"""Binary save/load of citation networks (single ``.npz`` file).

Loaders and generators can be slow on large corpora; serialising the
parsed :class:`~repro.graph.CitationNetwork` lets experiments reload it
in milliseconds.  The format is a plain NumPy ``.npz`` archive:

* ``paper_ids``  — unicode array,
* ``pub_time``   — float64,
* ``citing`` / ``cited`` — int64 edge arrays,
* ``author_indptr`` / ``author_indices`` — CSR-encoded author lists
  (present only when the network has author data),
* ``venues``     — int64 (present only with venue data),
* ``format_version`` — for forward compatibility.
"""

from __future__ import annotations

import os

import numpy as np

from repro.errors import DataFormatError
from repro.graph.citation_network import CitationNetwork

__all__ = ["save_network", "load_network", "FORMAT_VERSION"]

FORMAT_VERSION = 1


def save_network(network: CitationNetwork, path: str) -> None:
    """Write ``network`` to ``path`` (conventionally ``*.npz``)."""
    payload: dict[str, np.ndarray] = {
        "format_version": np.asarray([FORMAT_VERSION], dtype=np.int64),
        "paper_ids": np.asarray(network.paper_ids, dtype=np.str_),
        "pub_time": network.publication_times,
        "citing": network.citing,
        "cited": network.cited,
    }
    if network.paper_authors is not None:
        lengths = [len(authors) for authors in network.paper_authors]
        indptr = np.concatenate(
            ([0], np.cumsum(np.asarray(lengths, dtype=np.int64)))
        )
        indices = np.asarray(
            [a for authors in network.paper_authors for a in authors],
            dtype=np.int64,
        )
        payload["author_indptr"] = indptr
        payload["author_indices"] = indices
    if network.paper_venues is not None:
        payload["venues"] = network.paper_venues
    np.savez_compressed(path, **payload)


def load_network(path: str) -> CitationNetwork:
    """Read a network previously written by :func:`save_network`.

    Raises
    ------
    DataFormatError
        If the file is missing, lacks mandatory arrays, or declares an
        unsupported format version.
    """
    if not os.path.exists(path):
        raise DataFormatError(f"file not found: {path}")
    with np.load(path, allow_pickle=False) as archive:
        members = set(archive.files)
        required = {"format_version", "paper_ids", "pub_time", "citing", "cited"}
        missing = required - members
        if missing:
            raise DataFormatError(
                f"{path}: not a repro network file (missing {sorted(missing)})"
            )
        version = int(archive["format_version"][0])
        if version != FORMAT_VERSION:
            raise DataFormatError(
                f"{path}: unsupported format version {version} "
                f"(this build reads version {FORMAT_VERSION})"
            )
        paper_authors = None
        if "author_indptr" in members:
            indptr = archive["author_indptr"]
            indices = archive["author_indices"]
            paper_authors = [
                tuple(int(a) for a in indices[indptr[i]: indptr[i + 1]])
                for i in range(len(indptr) - 1)
            ]
        venues = archive["venues"] if "venues" in members else None
        return CitationNetwork(
            paper_ids=[str(p) for p in archive["paper_ids"]],
            publication_times=archive["pub_time"],
            citing=archive["citing"],
            cited=archive["cited"],
            paper_authors=paper_authors,
            paper_venues=venues,
            validate=True,
        )
