"""Loader for the AMiner/DBLP citation-network "V" text format.

The paper's DBLP dataset ships from https://aminer.org/citation in a
line-tagged format, one block per paper:

    #* title
    #@ author1, author2, ...
    #t year
    #c venue
    #index paper-id
    #% reference-id        (repeated, one per reference)

Blocks are separated by blank lines.  Papers without a year are dropped
(their references too); references to unknown ids are skipped.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.errors import DataFormatError
from repro.graph.builder import NetworkBuilder
from repro.graph.citation_network import CitationNetwork

__all__ = ["load_aminer"]


@dataclass
class _Record:
    index: str | None = None
    year: int | None = None
    authors: list[str] = field(default_factory=list)
    venue: str | None = None
    references: list[str] = field(default_factory=list)

    def complete(self) -> bool:
        return self.index is not None and self.year is not None


def _flush(record: _Record, builder: NetworkBuilder) -> None:
    if not record.complete() or record.index in builder:
        return
    builder.add_paper(
        record.index,  # type: ignore[arg-type]
        float(record.year),  # type: ignore[arg-type]
        references=record.references,
        authors=record.authors,
        venue=record.venue or None,
    )


def load_aminer(path: str) -> CitationNetwork:
    """Load an AMiner V-format citation dump.

    Raises
    ------
    DataFormatError
        If the file is missing or a ``#t`` year is not an integer.
    """
    if not os.path.exists(path):
        raise DataFormatError(f"file not found: {path}")

    builder = NetworkBuilder(missing_references="skip")
    record = _Record()
    with open(path, "r", encoding="utf-8", errors="replace") as handle:
        for number, raw in enumerate(handle, start=1):
            line = raw.rstrip("\n")
            if not line.strip():
                _flush(record, builder)
                record = _Record()
                continue
            if line.startswith("#index"):
                record.index = line[len("#index"):].strip()
            elif line.startswith("#t"):
                text = line[2:].strip()
                try:
                    record.year = int(text)
                except ValueError:
                    raise DataFormatError(
                        f"{path}:{number}: non-integer year {text!r}"
                    ) from None
            elif line.startswith("#@"):
                names = [n.strip() for n in line[2:].split(",")]
                record.authors = [n for n in names if n]
            elif line.startswith("#c"):
                record.venue = line[2:].strip() or None
            elif line.startswith("#%"):
                reference = line[2:].strip()
                if reference:
                    record.references.append(reference)
            elif line.startswith("#*") or line.startswith("#!"):
                pass  # title / abstract: not needed for ranking
    _flush(record, builder)
    return builder.build()
