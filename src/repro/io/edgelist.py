"""Generic delimited loaders: edge lists + metadata tables.

Covers the remaining corpora of the paper — APS ships as a citing/cited
CSV plus a per-article metadata table, and PMC-style exports reduce to
the same shape — as well as any user-supplied dataset in the common
"edges file + dates file" form.
"""

from __future__ import annotations

import csv
import os
from typing import Iterable

from repro.errors import DataFormatError
from repro.graph.builder import NetworkBuilder
from repro.graph.citation_network import CitationNetwork

__all__ = ["load_edge_list", "load_csv_dataset"]


def _rows(path: str, delimiter: str | None) -> Iterable[tuple[int, list[str]]]:
    with open(path, "r", encoding="utf-8", errors="replace", newline="") as handle:
        if delimiter is None:
            for number, line in enumerate(handle, start=1):
                stripped = line.strip()
                if stripped and not stripped.startswith("#"):
                    yield number, stripped.split()
        else:
            reader = csv.reader(handle, delimiter=delimiter)
            for number, row in enumerate(reader, start=1):
                if row and not row[0].lstrip().startswith("#"):
                    yield number, [cell.strip() for cell in row]


def load_edge_list(
    edges_path: str,
    times_path: str,
    *,
    delimiter: str | None = None,
) -> CitationNetwork:
    """Load a network from an edge file and a publication-time file.

    ``edges_path`` holds ``<citing> <cited>`` rows; ``times_path`` holds
    ``<paper> <time>`` rows with time in (fractional) years.  With the
    default ``delimiter=None`` fields are whitespace-separated;
    otherwise rows are parsed as delimited CSV.  ``#`` lines are
    comments.  Citations involving papers without a time entry are
    dropped.
    """
    for path in (edges_path, times_path):
        if not os.path.exists(path):
            raise DataFormatError(f"file not found: {path}")

    builder = NetworkBuilder(missing_references="skip")
    for number, row in _rows(times_path, delimiter):
        if len(row) != 2:
            raise DataFormatError(
                f"{times_path}:{number}: expected '<paper> <time>', got {row!r}"
            )
        paper, time_text = row
        if paper in builder:
            raise DataFormatError(
                f"{times_path}:{number}: duplicate paper id {paper!r}"
            )
        try:
            time = float(time_text)
        except ValueError:
            raise DataFormatError(
                f"{times_path}:{number}: non-numeric time {time_text!r}"
            ) from None
        builder.add_paper(paper, time)

    for number, row in _rows(edges_path, delimiter):
        if len(row) != 2:
            raise DataFormatError(
                f"{edges_path}:{number}: expected '<citing> <cited>', got {row!r}"
            )
        citing, cited = row
        if citing in builder:
            builder.add_reference(citing, cited)

    return builder.build()


def load_csv_dataset(
    metadata_path: str,
    citations_path: str,
    *,
    delimiter: str = ",",
    id_column: str = "id",
    year_column: str = "year",
    authors_column: str | None = "authors",
    venue_column: str | None = "venue",
    author_separator: str = ";",
) -> CitationNetwork:
    """Load an APS/PMC-style dataset: a metadata CSV plus a citation CSV.

    ``metadata_path`` must have a header row containing at least the id
    and year columns; the optional author column holds
    ``author_separator``-joined names.  ``citations_path`` has two
    columns, ``citing,cited`` (header optional — a first row whose second
    field is not an id present in the metadata is treated as a header
    only if it matches 'citing'/'cited' case-insensitively).
    """
    for path in (metadata_path, citations_path):
        if not os.path.exists(path):
            raise DataFormatError(f"file not found: {path}")

    builder = NetworkBuilder(missing_references="skip")
    with open(metadata_path, "r", encoding="utf-8", newline="") as handle:
        reader = csv.DictReader(handle, delimiter=delimiter)
        if reader.fieldnames is None:
            raise DataFormatError(f"{metadata_path}: empty metadata file")
        for column in (id_column, year_column):
            if column not in reader.fieldnames:
                raise DataFormatError(
                    f"{metadata_path}: missing required column {column!r} "
                    f"(found {reader.fieldnames})"
                )
        for number, row in enumerate(reader, start=2):
            paper = (row.get(id_column) or "").strip()
            year_text = (row.get(year_column) or "").strip()
            if not paper or not year_text:
                continue
            try:
                year = float(year_text)
            except ValueError:
                raise DataFormatError(
                    f"{metadata_path}:{number}: non-numeric year "
                    f"{year_text!r}"
                ) from None
            authors: list[str] = []
            if authors_column and row.get(authors_column):
                authors = [
                    name.strip()
                    for name in row[authors_column].split(author_separator)
                    if name.strip()
                ]
            venue = None
            if venue_column and row.get(venue_column):
                venue = row[venue_column].strip() or None
            if paper in builder:
                raise DataFormatError(
                    f"{metadata_path}:{number}: duplicate paper id {paper!r}"
                )
            builder.add_paper(paper, year, authors=authors, venue=venue)

    with open(citations_path, "r", encoding="utf-8", newline="") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        for number, row in enumerate(reader, start=1):
            if len(row) < 2:
                continue
            citing, cited = row[0].strip(), row[1].strip()
            if number == 1 and citing.lower() in ("citing", "source", "from"):
                continue
            if citing in builder:
                builder.add_reference(citing, cited)

    return builder.build()
