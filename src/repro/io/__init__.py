"""Dataset loaders and serialisation.

Real-data entry points (the formats of the paper's four corpora):

* :func:`load_hepth` — KDD Cup 2003 arXiv hep-th files.
* :func:`load_aminer` — AMiner/DBLP V-format citation dumps.
* :func:`load_csv_dataset` — APS/PMC-style metadata + citation CSVs.
* :func:`load_edge_list` — generic whitespace/CSV edge + dates files.
* :func:`save_network` / :func:`load_network` — fast ``.npz`` round-trip.
"""

from repro.io.aminer import load_aminer
from repro.io.edgelist import load_csv_dataset, load_edge_list
from repro.io.hepth import load_hepth, parse_hepth_date
from repro.io.serialize import (
    FORMAT_VERSION,
    load_network,
    network_from_payload,
    network_payload,
    save_network,
)

__all__ = [
    "load_aminer",
    "load_csv_dataset",
    "load_edge_list",
    "load_hepth",
    "parse_hepth_date",
    "FORMAT_VERSION",
    "load_network",
    "network_from_payload",
    "network_payload",
    "save_network",
]
