"""Admission control: bounded concurrency, bounded queueing, rate limits.

A gateway that accepts every request dies by queueing: latency grows
without bound and *every* client times out, instead of a few being told
to back off.  The admission layer makes overload a first-class,
*typed* outcome decided before any query work happens:

* **capacity** — at most ``max_inflight`` requests execute at once and
  at most ``max_queue`` more may wait behind them; a request beyond
  both is shed with ``503`` (retry later, the server is saturated);
* **rate** — each endpoint may carry a token bucket; a request that
  finds the bucket empty is shed with ``429`` (this client is too
  fast, independent of server load).

Decisions are :class:`AdmissionDecision` values, not exceptions — load
shedding is the system working as designed, and the server turns the
decision into an HTTP status without a stack unwind.  All state is
plain counters mutated from the event loop thread, so there is nothing
to lock.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["AdmissionController", "AdmissionDecision", "TokenBucket"]


@dataclass(frozen=True)
class AdmissionDecision:
    """The typed outcome of one admission check.

    Attributes
    ----------
    admitted:
        Whether the request may proceed (the caller must
        :meth:`AdmissionController.release` it when done).
    status:
        HTTP status the server should answer with: ``200`` when
        admitted, ``429`` (rate limited) or ``503`` (overloaded)
        when shed.
    reason:
        Machine-readable shed reason (``"ok"``, ``"rate-limited"``,
        ``"queue-full"``, ``"draining"``).
    retry_after:
        For shed decisions, the server's best estimate (seconds) of
        when retrying could succeed — the bucket's next-token time for
        429, a queue-drain estimate for ``queue-full``, the configured
        drain window while draining.  ``None`` for admissions.  The
        gateway rounds it up into an integer ``Retry-After`` header
        (RFC 9110 delta-seconds).
    """

    admitted: bool
    status: int
    reason: str
    retry_after: float | None = None


_ADMITTED = AdmissionDecision(admitted=True, status=200, reason="ok")


class TokenBucket:
    """A classic token bucket: ``rate`` tokens/second, ``burst`` deep.

    >>> bucket = TokenBucket(rate=10.0, burst=2)
    >>> bucket.take(now=0.0), bucket.take(now=0.0), bucket.take(now=0.0)
    (True, True, False)
    >>> bucket.take(now=0.1)   # one token refilled after 100ms
    True
    """

    __slots__ = ("rate", "burst", "_tokens", "_last")

    def __init__(self, rate: float, burst: int) -> None:
        if rate <= 0:
            raise ConfigurationError(f"rate must be positive, got {rate}")
        if burst < 1:
            raise ConfigurationError(f"burst must be >= 1, got {burst}")
        self.rate = float(rate)
        self.burst = int(burst)
        self._tokens = float(burst)
        self._last: float | None = None

    def take(self, now: float | None = None) -> bool:
        """Consume one token if available; refill by elapsed time first."""
        if now is None:
            now = time.monotonic()
        if self._last is not None and now > self._last:
            self._tokens = min(
                float(self.burst),
                self._tokens + (now - self._last) * self.rate,
            )
        self._last = now
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False

    def seconds_until_token(self) -> float:
        """Time until one whole token exists, at the current fill level.

        Called right after a failed :meth:`take` to derive the
        ``Retry-After`` hint; the refill already happened there, so
        this is pure arithmetic on the deficit.

        >>> bucket = TokenBucket(rate=10.0, burst=1)
        >>> bucket.take(now=0.0)
        True
        >>> bucket.take(now=0.0)
        False
        >>> bucket.seconds_until_token()
        0.1
        """
        return max(0.0, (1.0 - self._tokens) / self.rate)


class AdmissionController:
    """Decide, per request, between execute / queue / shed.

    Parameters
    ----------
    max_inflight:
        Requests allowed to execute concurrently.  The controller
        itself enforces only the combined ``max_inflight + max_queue``
        cap; the *execution* bound is realised by the gateway sizing
        its coalesced batches to ``max_inflight``, so at most that
        many admitted requests enter the query layer at once while the
        rest wait in the coalescer's pending queue.
    max_queue:
        Additional requests allowed to wait.  ``max_inflight +
        max_queue`` is the hard cap on admitted-but-unfinished
        requests; one more is shed with 503.
    rate_limits:
        Optional ``endpoint -> TokenBucket`` map; an endpoint without a
        bucket is never 429'd.
    drain_hint_seconds:
        The ``retry_after`` estimate stamped on ``draining`` sheds
        (the gateway passes its configured drain window: by then this
        process is gone and a peer — or its restart — is answering).

    The controller also owns the *draining* flag: once
    :meth:`start_draining` is called (graceful shutdown), every new
    request is shed with 503 while already-admitted ones run to
    completion — which is exactly what lets the server drain without
    dropping in-flight work.
    """

    def __init__(
        self,
        *,
        max_inflight: int = 64,
        max_queue: int = 256,
        rate_limits: dict[str, TokenBucket] | None = None,
        drain_hint_seconds: float = 5.0,
    ) -> None:
        if max_inflight < 1:
            raise ConfigurationError(
                f"max_inflight must be >= 1, got {max_inflight}"
            )
        if max_queue < 0:
            raise ConfigurationError(
                f"max_queue must be >= 0, got {max_queue}"
            )
        self.max_inflight = int(max_inflight)
        self.max_queue = int(max_queue)
        self.rate_limits = dict(rate_limits or {})
        self.drain_hint_seconds = float(drain_hint_seconds)
        self.active = 0          # admitted and not yet released
        self.peak_active = 0
        self.admitted_total = 0
        self.draining = False
        # Observed service rate (releases/second, half-life ~one
        # window) — the basis of the queue-full Retry-After estimate.
        self._release_rate = 0.0
        self._window_start: float | None = None
        self._window_releases = 0

    @property
    def capacity(self) -> int:
        """Hard cap on admitted-but-unfinished requests."""
        return self.max_inflight + self.max_queue

    def try_admit(
        self, endpoint: str, *, now: float | None = None
    ) -> AdmissionDecision:
        """One admission check; the caller must release admitted requests.

        Order matters: the rate check runs first so a misbehaving
        client is told 429 even when the server also happens to be
        full — 429 is actionable for that client, 503 is not.
        """
        if self.draining:
            return AdmissionDecision(
                admitted=False,
                status=503,
                reason="draining",
                retry_after=self.drain_hint_seconds,
            )
        bucket = self.rate_limits.get(endpoint)
        if bucket is not None and not bucket.take(now):
            return AdmissionDecision(
                admitted=False,
                status=429,
                reason="rate-limited",
                retry_after=bucket.seconds_until_token(),
            )
        if self.active >= self.capacity:
            return AdmissionDecision(
                admitted=False,
                status=503,
                reason="queue-full",
                retry_after=self._queue_drain_estimate(),
            )
        self.active += 1
        self.admitted_total += 1
        if self.active > self.peak_active:
            self.peak_active = self.active
        return _ADMITTED

    def _queue_drain_estimate(self) -> float:
        """Seconds until a queue slot frees, at the observed rate.

        ``active - max_inflight + 1`` requests must release before a
        retry can even queue; divide by the measured release rate.
        Before any rate is observed (a burst saturates a cold server),
        fall back to one second — better than telling clients to
        hammer immediately.
        """
        waiting_ahead = max(1, self.active - self.max_inflight + 1)
        if self._release_rate > 0.0:
            return waiting_ahead / self._release_rate
        return 1.0

    def release(self, *, now: float | None = None) -> None:
        """Return one admitted request's slot."""
        assert self.active > 0, "release() without a matching admit"
        self.active -= 1
        if now is None:
            now = time.monotonic()
        if self._window_start is None:
            self._window_start = now
            self._window_releases = 0
        self._window_releases += 1
        elapsed = now - self._window_start
        if elapsed >= 0.5:
            rate = self._window_releases / elapsed
            self._release_rate = (
                rate
                if self._release_rate == 0.0
                else 0.5 * self._release_rate + 0.5 * rate
            )
            self._window_start = now
            self._window_releases = 0

    def start_draining(self) -> None:
        """Shed all new requests from now on (graceful shutdown)."""
        self.draining = True

    def snapshot(self) -> dict[str, int | bool]:
        """Counters for ``/v1/metrics``."""
        return {
            "active": self.active,
            "peak_active": self.peak_active,
            "admitted_total": self.admitted_total,
            "max_inflight": self.max_inflight,
            "max_queue": self.max_queue,
            "draining": self.draining,
        }
