"""repro.gateway — the asyncio HTTP serving gateway.

PRs 1-4 built the serving stack — versioned score index, warm-started
deltas, sharded batched queries, checkpointed stream replay — but every
entry point was an in-process call or a one-shot CLI.  This package is
the network layer that turns the library into a service a ranking site
(BIP! DB-style, serving impact scores for >100M publications) could
actually stand behind:

* :class:`GatewayServer` — a stdlib-only asyncio HTTP/1.1 server with
  JSON endpoints (``/v1/top``, ``/v1/paper/{id}``, ``/v1/compare``,
  ``/v1/healthz``, ``/v1/metrics``) and graceful drain on shutdown;
* :class:`RequestCoalescer` — natural micro-batching: concurrent
  in-flight queries collect into heterogeneous
  :class:`~repro.serve.QueryEngine` batches, amortising shard fan-out,
  with responses bit-identical to direct
  :class:`~repro.serve.RankingService` calls;
* :class:`AdmissionController` — bounded in-flight + queue with typed
  429/503 load shedding and per-endpoint token-bucket rate limits;
* :class:`GatewayMetrics` — lock-free counters and fixed-bucket
  latency histograms (p50/p95/p99), plus the serve-layer LRU cache
  counters, rendered at ``/v1/metrics``;
* :class:`StreamUpdater` — a background task applying
  :class:`~repro.stream.StreamIngestor` micro-batches while the server
  keeps answering, with the version swap atomic against every read;
* :class:`MultiWorkerGateway` — pre-fork multi-process serving: N
  workers share one port via ``SO_REUSEPORT`` and one score store via
  :mod:`repro.serve.shm` shared memory, with a supervisor that
  restarts crashes, runs the single-writer streaming updater, and
  merges per-worker metrics into exact fleet-wide counters;
* :func:`run_load_over_log` / :func:`run_load_static` — the load
  generator behind ``repro loadgen`` and the ``gateway`` bench
  scenario, which verifies every recorded response against a direct
  service call at the response's reported index version.

CLI: ``repro serve-http`` starts a gateway; ``repro loadgen`` runs the
verified load bench against one.
"""

from repro.gateway.admission import (
    AdmissionController,
    AdmissionDecision,
    TokenBucket,
)
from repro.gateway.coalesce import RequestCoalescer
from repro.gateway.loadgen import (
    run_load_multiworker,
    run_load_over_log,
    run_load_static,
)
from repro.gateway.metrics import (
    BatchSizeHistogram,
    GatewayMetrics,
    LatencyHistogram,
)
from repro.gateway.server import GatewayConfig, GatewayServer, GatewayThread
from repro.gateway.updates import StreamUpdater
from repro.gateway.workers import MultiWorkerGateway

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "TokenBucket",
    "RequestCoalescer",
    "run_load_over_log",
    "run_load_static",
    "run_load_multiworker",
    "BatchSizeHistogram",
    "GatewayMetrics",
    "LatencyHistogram",
    "GatewayConfig",
    "GatewayServer",
    "GatewayThread",
    "StreamUpdater",
    "MultiWorkerGateway",
]
