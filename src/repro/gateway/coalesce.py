"""Request coalescing: many concurrent HTTP queries, one engine batch.

The PR-3 :class:`~repro.serve.QueryEngine` amortises shard fan-out over
a *batch* of queries — but HTTP requests arrive one at a time.  The
:class:`RequestCoalescer` closes that gap with the classic
natural-batching loop: requests park in a pending list, a single
worker task drains the list into one
:meth:`~repro.serve.RankingService.execute_batch` call, and every
request that arrives *while that batch executes* accumulates into the
next one.  Under light load batches have size 1 (no added latency);
under heavy load batch size grows with concurrency, which is exactly
when amortisation pays.

Correctness guarantees:

* **Bit-identical results.**  A coalesced query is answered by the same
  engine, at one pinned store generation, as a direct
  :class:`~repro.serve.RankingService` call — the PR-3 equivalence
  property carries over unchanged, and every response is stamped with
  the index version it was computed at.
* **No torn reads during live updates.**  The coalescer owns an
  :class:`asyncio.Lock` that serialises engine batches with stream
  updates (:meth:`exclusively` is how the updater applies micro-batches).
  A batch therefore executes entirely before or entirely after any
  version swap.
* **Per-query failure attribution.**  A batch that fails to plan
  (unknown method, bad page, unknown paper id) is retried query by
  query, so one bad request gets its typed error while the rest of the
  batch is served normally.
"""

from __future__ import annotations

import asyncio
import contextvars
from typing import Any, Callable, Sequence, Union

from repro.chaos.points import chaos_point
from repro.errors import GatewayError, ReproError
from repro.gateway.metrics import GatewayMetrics
from repro.obs.logging import current_request_id
from repro.obs.profile import profile_phase
from repro.obs.trace import span
from repro.serve.batch import Query, QueryEngine, execute_with_attribution
from repro.serve.service import RankingService

__all__ = ["RequestCoalescer"]

Backend = Union[RankingService, QueryEngine]


class RequestCoalescer:
    """Batch concurrent queries onto one serving backend.

    Parameters
    ----------
    backend:
        A :class:`~repro.serve.RankingService` (batches flow through
        its LRU result cache via :meth:`~RankingService.execute_batch`)
        or a bare :class:`~repro.serve.QueryEngine` (cache-less — the
        detached shard-directory serving mode).
    max_batch:
        Largest single engine batch; pending requests beyond it wait
        for the next drain (they are not shed — that is admission's
        job).
    metrics:
        Optional :class:`~repro.gateway.GatewayMetrics` to record the
        coalesced batch-size distribution into.

    Examples
    --------
    >>> import asyncio
    >>> from repro.serve import RankingService, ScoreIndex, TopKQuery
    >>> from repro.synth import toy_network
    >>> index = ScoreIndex(toy_network())
    >>> index.add_method("CC")
    >>> async def main():
    ...     coalescer = RequestCoalescer(RankingService(index))
    ...     await coalescer.start()
    ...     try:
    ...         return await coalescer.submit(TopKQuery(method="CC", k=2))
    ...     finally:
    ...         await coalescer.close()
    >>> version, page = asyncio.run(main())
    >>> (version, page.paper_ids)
    (0, ('A', 'C'))
    """

    def __init__(
        self,
        backend: Backend,
        *,
        max_batch: int = 128,
        metrics: GatewayMetrics | None = None,
    ) -> None:
        if max_batch < 1:
            raise GatewayError(
                f"max_batch must be >= 1, got {max_batch}"
            )
        self._backend = backend
        self._max_batch = int(max_batch)
        self._metrics = metrics
        # (query, future, submitter context, submitter request id):
        # run_in_executor does NOT propagate contextvars, so the batch
        # is executed under the first submitter's copied context — the
        # engine's spans and log lines join that leader request's
        # trace, with the whole batch's request ids attached as attrs.
        self._pending: list[
            tuple[Query, asyncio.Future, contextvars.Context, str | None]
        ] = []
        self._wakeup = asyncio.Event()
        self._lock = asyncio.Lock()
        self._worker: asyncio.Task | None = None
        self._closed = False

    @property
    def backend(self) -> Backend:
        """The serving object batches execute against."""
        return self._backend

    @property
    def pending_count(self) -> int:
        """Requests parked for the next drain."""
        return len(self._pending)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Spawn the drain worker (idempotent)."""
        if self._closed:
            raise GatewayError("coalescer is closed")
        if self._worker is None:
            self._worker = asyncio.ensure_future(self._run())

    async def close(self) -> None:
        """Drain everything already submitted, then stop the worker.

        Part of the graceful-shutdown path: requests admitted before
        the drain began still get real answers; only *new* submits are
        refused (with :class:`~repro.errors.GatewayError`).
        """
        self._closed = True
        self._wakeup.set()
        if self._worker is not None:
            await self._worker
            self._worker = None

    # ------------------------------------------------------------------
    # The request path
    # ------------------------------------------------------------------
    async def submit(self, query: Query) -> tuple[int, Any]:
        """Park one query, await its batch, return ``(version, result)``.

        Raises the query's own typed :class:`~repro.errors.ReproError`
        on failure (unknown method/paper, invalid page), or
        :class:`~repro.errors.GatewayError` if the coalescer is
        draining.
        """
        if self._closed:
            raise GatewayError(
                "gateway is draining; no new requests accepted"
            )
        if self._worker is None:
            await self.start()
        future: asyncio.Future = (
            asyncio.get_running_loop().create_future()
        )
        self._pending.append(
            (
                query,
                future,
                contextvars.copy_context(),
                current_request_id(),
            )
        )
        self._wakeup.set()
        return await future

    async def exclusively(self, fn: Callable[[], Any]) -> Any:
        """Run ``fn`` in the executor while no batch is executing.

        The stream updater applies index micro-batches through here:
        holding the batch lock across the update makes the version
        swap atomic with respect to every coalesced read.  The caller's
        context rides along explicitly (``run_in_executor`` would not
        carry it), so the updater's trace and request id survive the
        thread hop.
        """
        ctx = contextvars.copy_context()
        async with self._lock:
            return await asyncio.get_running_loop().run_in_executor(
                None, ctx.run, fn
            )

    # ------------------------------------------------------------------
    # The drain worker
    # ------------------------------------------------------------------
    async def _run(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            if not self._pending:
                if self._closed:
                    return
                self._wakeup.clear()
                # Re-check before sleeping: a submit may have landed
                # between the emptiness check and the clear.
                if not self._pending and not self._closed:
                    await self._wakeup.wait()
                continue
            batch = self._pending[: self._max_batch]
            del self._pending[: len(batch)]
            queries = [query for query, _, _, _ in batch]
            # The first submitter leads the batch: its copied context
            # carries its request id and open trace into the executor,
            # so the engine's spans nest under that request's tree.
            leader_ctx = batch[0][2]
            request_ids = [rid for _, _, _, rid in batch if rid]
            try:
                async with self._lock:
                    version, outcomes = await loop.run_in_executor(
                        None,
                        leader_ctx.run,
                        self._execute_traced,
                        queries,
                        request_ids,
                    )
            except Exception as error:  # executor / backend breakage
                for _, future, _, _ in batch:
                    if not future.done():
                        future.set_exception(error)
                continue
            if self._metrics is not None:
                self._metrics.batch_sizes.observe(len(batch))
            for (_, future, _, _), outcome in zip(batch, outcomes):
                if future.done():  # client went away mid-batch
                    continue
                if isinstance(outcome, ReproError):
                    future.set_exception(outcome)
                else:
                    future.set_result((version, outcome))

    def _backend_execute(
        self, queries: Sequence[Query]
    ) -> tuple[int, tuple[Any, ...]]:
        if isinstance(self._backend, RankingService):
            return self._backend.execute_batch(queries)
        return self._backend.execute_versioned(queries)

    def _execute_traced(
        self, queries: Sequence[Query], request_ids: Sequence[str]
    ) -> tuple[int, list[Any]]:
        """The executor entry point: one traced engine batch.

        Runs under the leader's copied context, so the ``engine.batch``
        span (annotated with every coalesced request id) lands in the
        leading request's trace.
        """
        with profile_phase("engine.batch"), span(
            "engine.batch",
            batch_size=len(queries),
            request_ids=list(request_ids),
        ) as sp:
            version, outcomes = self._execute(queries)
            if sp is not None:
                sp.set(version=version)
        return version, outcomes

    def _execute(
        self, queries: Sequence[Query]
    ) -> tuple[int, list[Any]]:
        """One engine batch; on failure, per-query error attribution.

        Runs in the executor thread, always under ``self._lock`` — so
        at most one engine batch (or one stream update) touches the
        serving state at a time, and the fallback's one-element batches
        all see the same version as each other.
        """
        chaos_point("gateway.batch.execute")
        version, outcomes = execute_with_attribution(
            self._backend_execute, queries
        )
        if version < 0:
            # Every query failed; stamp the current state anyway.
            version = self._backend.version
        return version, outcomes
