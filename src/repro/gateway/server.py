"""The asyncio HTTP/1.1 gateway server.

Stdlib only — ``asyncio.start_server`` plus a deliberately small
HTTP/1.1 parser (GET, JSON out, keep-alive, bounded header sizes).
The request path is::

    connection -> parse -> route -> admission -> coalescer -> JSON

Endpoints
---------
``GET /v1/top?method=AR&k=10&offset=0&year_min=..&year_max=..``
    One ranking page (:class:`~repro.serve.TopKQuery`).
``GET /v1/paper/{id}``
    Scores and ranks of one paper (:class:`~repro.serve.PaperQuery`).
``GET /v1/compare?methods=AR,CC&k=10``
    Side-by-side pages with overlaps (:class:`~repro.serve.CompareQuery`).
``GET /v1/healthz``
    Liveness: status, index version, paper count.
``GET /v1/metrics``
    The full observability document (latency quantiles, shed counts,
    coalesced batch sizes, serve-layer cache counters) as JSON, or the
    Prometheus text exposition with ``?format=prometheus``.
``GET /v1/trace``
    Recent request/update span trees from the trace ring buffer
    (``?limit=N``); empty until tracing is enabled.

Every request carries a correlation id: generated per connection and
numbered per request (``{conn}-{seq}``), overridable by a client
``X-Request-Id`` header, bound in a contextvar for the request's
duration (so every log record and error payload it causes carries the
id), and echoed in an ``X-Request-Id`` response header.

Query responses are ``{"version": V, "result": {...}}`` where the
result object is byte-for-byte the CLI's
:func:`~repro.serve.result_payload` rendering of the same dataclass a
direct :class:`~repro.serve.RankingService` call returns — the
invariant the load bench verifies response by response.

Shutdown drains: :meth:`GatewayServer.stop` stops accepting, sheds new
requests with 503 (``reason: draining``), lets every admitted request
finish, then closes the remaining keep-alive connections.
"""

from __future__ import annotations

import asyncio
import json
import math
import os
import threading
import time
from dataclasses import dataclass
from typing import Any, Mapping
from urllib.parse import parse_qs, unquote, urlsplit

from repro.chaos.faults import InjectedDisconnect
from repro.chaos.points import chaos_point
from repro.errors import (
    ConfigurationError,
    DataFormatError,
    GatewayError,
    GraphError,
    ReproError,
)
from repro.gateway.admission import AdmissionController, TokenBucket
from repro.gateway.coalesce import Backend, RequestCoalescer
from repro.gateway.metrics import GatewayMetrics
from repro.gateway.updates import StreamUpdater
from repro.obs.logging import (
    bind_request_id,
    current_request_id,
    get_logger,
    get_worker_identity,
    new_request_id,
    request_id_var,
    sanitize_request_id,
)
from repro.obs.profile import (
    SamplingProfiler,
    collapsed_stacks,
    profile_phase,
    render_profile,
    speedscope_document,
)
from repro.obs.registry import (
    REGISTRY,
    MetricFamily,
    counter_family,
    families_state,
    gauge_family,
    label_families,
    render_families,
)
from repro.obs.slo import DEFAULT_SLOS, SLO, SLOEngine
from repro.obs.trace import get_collector, span, start_trace
from repro.obs.tsdb import TimeSeriesStore
from repro.serve.batch import (
    CompareQuery,
    PaperQuery,
    Query,
    TopKQuery,
    result_payload,
)
from repro.serve.service import RankingService
from repro.stream.ingest import StreamIngestor

__all__ = ["GatewayConfig", "GatewayServer", "GatewayThread"]

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Parser limits: a request line or header longer than this is a 400.
_MAX_LINE = 8192
_MAX_HEADERS = 64

_LOG = get_logger("gateway")


@dataclass(frozen=True)
class GatewayConfig:
    """Tunables of one gateway instance.

    Attributes
    ----------
    host, port:
        Bind address; port 0 picks a free port (the bound one is on
        :attr:`GatewayServer.port` after start).
    max_inflight, max_queue:
        Admission capacity (see
        :class:`~repro.gateway.AdmissionController`).
    max_batch:
        Largest coalesced engine batch.
    rate_limit, rate_burst:
        Optional per-endpoint token bucket (requests/second + burst);
        ``None`` disables 429 shedding.
    update_interval:
        Sleep between live stream micro-batches (when an ingestor is
        attached).
    drain_seconds:
        How long :meth:`GatewayServer.stop` waits for in-flight
        requests before closing connections anyway.
    reuse_port:
        Bind the listening socket with ``SO_REUSEPORT`` so sibling
        worker processes can share one port (the multi-worker
        gateway's pre-fork mode); the kernel load-balances incoming
        connections across all listeners.
    profile, profile_hz:
        Run the sampling profiler (:mod:`repro.obs.profile`) behind
        ``/v1/profile``; off by default — sampling at the default rate
        costs a few percent of throughput (the ``obs_overhead`` bench
        holds it under 5%), which is opt-in money.
    profile_memory:
        Also run ``tracemalloc`` so ``/v1/profile?memory=1`` serves
        allocation snapshots.  A separate knob on purpose:
        ``tracemalloc`` hooks *every* allocation and costs tens of
        percent — deep-dive-only, never an always-on posture.
    history_interval, history_capacity:
        The metrics time-series store behind ``/v1/metrics/history``:
        one self-scrape every ``history_interval`` seconds, the newest
        ``history_capacity`` points kept.  ``history_interval <= 0``
        disables the background scraper (the multi-worker fleet does
        this in workers: the supervisor owns fleet history).
    slos:
        The objectives ``/v1/slo`` evaluates;
        ``None`` means :data:`repro.obs.slo.DEFAULT_SLOS`.
    """

    host: str = "127.0.0.1"
    port: int = 8080
    max_inflight: int = 64
    max_queue: int = 256
    max_batch: int = 128
    rate_limit: float | None = None
    rate_burst: int = 32
    update_interval: float = 0.01
    drain_seconds: float = 5.0
    reuse_port: bool = False
    profile: bool = False
    profile_hz: float = 67.0
    profile_memory: bool = False
    history_interval: float = 5.0
    history_capacity: int = 720
    slos: tuple[SLO, ...] | None = None


class GatewayServer:
    """One HTTP serving gateway over a ranking backend.

    Parameters
    ----------
    backend:
        A :class:`~repro.serve.RankingService` (live, cache-backed) or
        a :class:`~repro.serve.QueryEngine` over a detached shard
        store (read-only).
    config:
        See :class:`GatewayConfig`.
    ingestor:
        Optional PR-4 :class:`~repro.stream.StreamIngestor` whose
        remaining events are applied live while the server answers
        queries; its service must be ``backend``.
    """

    def __init__(
        self,
        backend: Backend,
        *,
        config: GatewayConfig | None = None,
        ingestor: StreamIngestor | None = None,
    ) -> None:
        self.config = config or GatewayConfig()
        self.backend = backend
        self.metrics = GatewayMetrics()
        rate_limits: dict[str, TokenBucket] = {}
        if self.config.rate_limit is not None:
            rate_limits = {
                endpoint: TokenBucket(
                    rate=self.config.rate_limit,
                    burst=self.config.rate_burst,
                )
                for endpoint in ("top", "paper", "compare")
            }
        self.admission = AdmissionController(
            max_inflight=self.config.max_inflight,
            max_queue=self.config.max_queue,
            rate_limits=rate_limits,
            drain_hint_seconds=self.config.drain_seconds,
        )
        # max_inflight is a promise about concurrent *execution*: at
        # most that many requests enter one engine batch, the rest
        # wait admitted in the coalescer's pending queue.  Capping the
        # batch size here is what makes the admission knob real.
        self.coalescer = RequestCoalescer(
            backend,
            max_batch=min(self.config.max_batch, self.config.max_inflight),
            metrics=self.metrics,
        )
        self.updater: StreamUpdater | None = None
        if ingestor is not None:
            self.updater = StreamUpdater(
                ingestor,
                self.coalescer,
                interval=self.config.update_interval,
                metrics=self.metrics,
            )
        self.port: int | None = None
        self.control_port: int | None = None
        #: The deep-observability plane: profiler (opt-in), history
        #: store, and SLO engine over that store.  The store's
        #: background scraper runs only when ``history_interval > 0``;
        #: ``scrape_once`` still works either way (the SLO endpoint
        #: scrapes on demand), so a fleet worker keeps a valid local
        #: view even though the supervisor owns fleet history.
        self.profiler: SamplingProfiler | None = (
            SamplingProfiler(
                hz=self.config.profile_hz,
                trace_memory=self.config.profile_memory,
            )
            if self.config.profile
            else None
        )
        self.tsdb = TimeSeriesStore(
            self._metric_families,
            capacity=self.config.history_capacity,
            interval=self.config.history_interval,
        )
        self.slo_engine = SLOEngine(
            self.tsdb, slos=self.config.slos or DEFAULT_SLOS
        )
        #: Fleet wiring, set by the multi-worker launcher: this
        #: process's index, and the supervisor's stats address that
        #: ``/v1/profile``, ``/v1/slo``, ``/v1/metrics/history``, and
        #: ``/v1/trace`` proxy to (unless ``?scope=local``) so public
        #: answers are fleet-truth, not one worker's view.
        self.worker_index: int | None = None
        self.fleet_stats_addr: tuple[str, int] | None = None
        #: A crash that killed the live updater task, surfaced by
        #: :meth:`stop` instead of re-raised into the drain — the
        #: gateway keeps serving reads after its write path dies.
        self.updater_error: BaseException | None = None
        self._server: asyncio.AbstractServer | None = None
        self._control_server: asyncio.AbstractServer | None = None
        self._updater_task: asyncio.Task | None = None
        self._connections: set[asyncio.StreamWriter] = set()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind, listen, start the coalescer (and the live updater)."""
        if self._server is not None:
            raise GatewayError("gateway server already started")
        await self.coalescer.start()
        # reuse_port is passed only when asked for: asyncio rejects the
        # keyword outright on platforms without SO_REUSEPORT.
        extra: dict[str, Any] = (
            {"reuse_port": True} if self.config.reuse_port else {}
        )
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.config.host,
            self.config.port,
            **extra,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.profiler is not None:
            self.profiler.start()
        self.tsdb.start()
        if self.updater is not None:
            self._updater_task = asyncio.ensure_future(
                self.updater.run()
            )

    async def start_control(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> int:
        """Open a private per-process listener on the same handler.

        The multi-worker supervisor scrapes each worker's metrics here:
        the public ``SO_REUSEPORT`` port load-balances across workers,
        so "ask worker 3 for its counters" needs an address only worker
        3 answers.  Returns the bound port.
        """
        if self._control_server is not None:
            raise GatewayError("control listener already started")
        self._control_server = await asyncio.start_server(
            self._handle_connection, host, port
        )
        self.control_port = (
            self._control_server.sockets[0].getsockname()[1]
        )
        return self.control_port

    async def serve_forever(self) -> None:
        """Block until cancelled (the CLI's foreground mode)."""
        assert self._server is not None, "start() first"
        await self._server.serve_forever()

    async def stop(self) -> None:
        """Graceful drain: finish admitted work, then close everything.

        Order matters: (1) shed new arrivals, (2) stop accepting
        connections, (3) stop the updater after its in-flight batch,
        (4) wait out in-flight requests (bounded by
        ``drain_seconds``), (5) drain the coalescer, (6) close the
        remaining keep-alive connections.
        """
        self.admission.start_draining()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._control_server is not None:
            self._control_server.close()
            await self._control_server.wait_closed()
            self._control_server = None
        if self._updater_task is not None:
            assert self.updater is not None
            self.updater.stop()
            try:
                await self._updater_task
            except asyncio.CancelledError:
                raise
            except BaseException as error:
                # A dead updater (including an injected kill mid-batch)
                # must not abort the drain: reads still need their
                # graceful finish.  BaseException on purpose — the
                # chaos harness's simulated crash is one.
                self.updater_error = error
                _LOG.error(
                    "updater crashed",
                    extra={"error": type(error).__name__},
                )
            self._updater_task = None
        deadline = time.monotonic() + self.config.drain_seconds
        while self.admission.active > 0 and time.monotonic() < deadline:
            await asyncio.sleep(0.005)
        await self.coalescer.close()
        self.tsdb.stop()
        if self.profiler is not None:
            self.profiler.stop()
        for writer in tuple(self._connections):
            writer.close()
        self._server = None

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self._connections.add(writer)
        # One id per connection, one sequence number per request on it:
        # the id exists *before* parsing, so even a 400 on a malformed
        # request correlates with a log line and an X-Request-Id.
        connection_id = new_request_id()
        sequence = 0
        try:
            while True:
                sequence += 1
                with bind_request_id(f"{connection_id}-{sequence}"):
                    try:
                        request = await self._read_request(reader)
                    except GatewayError as error:
                        # A malformed request is answered, not crashed
                        # on: the parser cannot trust the connection
                        # state afterwards, so close after the 400.
                        _LOG.info(
                            "bad request",
                            extra={"status": 400, "detail": str(error)},
                        )
                        await self._write_response(
                            writer,
                            400,
                            _error_payload("GatewayError", str(error)),
                            False,
                        )
                        break
                    if request is None:
                        break
                    keep_alive = await self._respond(writer, *request)
                if not keep_alive:
                    break
        except (
            ConnectionResetError,
            BrokenPipeError,
            asyncio.IncompleteReadError,
        ):
            pass
        finally:
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, dict[str, str]] | None:
        """Parse one request; ``None`` on clean EOF.

        Raises :class:`~repro.errors.GatewayError` on a request the
        parser refuses (oversized lines, malformed request line, too
        many headers) — the caller answers 400 and closes.
        """
        chaos_point("gateway.request.read")
        try:
            line = await reader.readuntil(b"\r\n")
        except asyncio.IncompleteReadError as error:
            if not error.partial:
                return None
            raise
        except asyncio.LimitOverrunError:
            raise GatewayError("request line too long") from None
        if len(line) > _MAX_LINE:
            raise GatewayError("request line too long")
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            raise GatewayError(f"malformed request line: {parts[:2]}")
        method, target, _http_version = parts
        headers: dict[str, str] = {}
        for _ in range(_MAX_HEADERS):
            try:
                line = await reader.readuntil(b"\r\n")
            except asyncio.LimitOverrunError:
                raise GatewayError("header line too long") from None
            if len(line) > _MAX_LINE:
                raise GatewayError("header line too long")
            if line in (b"\r\n", b"\n"):
                return method.upper(), target, headers
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        raise GatewayError("too many request headers")

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        method: str,
        target: str,
        headers: Mapping[str, str],
    ) -> bool:
        started = time.perf_counter()
        keep_alive = headers.get("connection", "").lower() != "close"
        split = urlsplit(target)
        path = split.path
        params = parse_qs(split.query)
        endpoint = self._endpoint_of(path)
        self.metrics.note_request(endpoint)
        # A client-supplied X-Request-Id replaces the generated one for
        # this request only (the token restores the connection id) —
        # after sanitization: control characters are rejected (the
        # generated id stays bound) and oversized ids are truncated,
        # so a hostile header cannot pollute logs, traces, or the
        # profiler's attribution keys.
        client_id = sanitize_request_id(headers.get("x-request-id"))
        id_token = (
            request_id_var.set(client_id) if client_id else None
        )
        # Fleet scope: under --workers N the deep-observability
        # endpoints proxy to the supervisor's merged view unless the
        # caller asked for this one process (?scope=local — what the
        # supervisor's own fan-out requests).
        fleet_scope = (
            self.fleet_stats_addr is not None
            and params.get("scope", [""])[-1].lower() != "local"
        )

        status: int
        payload: dict[str, Any] | str
        content_type = "application/json"
        admitted = False
        retry_after: float | None = None
        try:
            if method != "GET":
                status, payload = 405, _error_payload(
                    "GatewayError",
                    f"method {method} not allowed (GET only)",
                )
            elif endpoint == "healthz":
                status, payload = 200, self._healthz_payload()
            elif endpoint == "metrics":
                wants = params.get("format", ["json"])[-1].lower()
                if wants == "prometheus":
                    status, payload = 200, self._prometheus_text()
                    content_type = (
                        "text/plain; version=0.0.4; charset=utf-8"
                    )
                elif wants == "state":
                    # Raw mergeable counters: what the multi-worker
                    # supervisor scrapes from each worker's control
                    # port to build the fleet-wide document.  The
                    # registry families ride along unlabelled so the
                    # supervisor's merge sums matching series across
                    # workers.
                    status, payload = 200, {
                        "metrics": self.metrics.state_dict(),
                        "admission": self.admission.snapshot(),
                        "registry": families_state(
                            self._metric_families(labelled=False)
                        ),
                        "worker": self._worker_info(),
                    }
                else:
                    status, payload = 200, self._metrics_payload()
            elif endpoint in ("trace", "profile", "slo", "history"):
                proxied = (
                    await self._fleet_fetch(target)
                    if fleet_scope
                    else None
                )
                if proxied is not None:
                    status, payload, content_type = proxied
                elif endpoint == "trace":
                    status, payload = 200, self._trace_payload(params)
                elif endpoint == "profile":
                    status, payload, content_type = (
                        self._profile_payload(params)
                    )
                elif endpoint == "slo":
                    status, payload = 200, self._slo_payload()
                else:
                    status, payload = 200, self._history_payload(params)
            elif endpoint in ("top", "paper", "compare"):
                with start_trace(
                    "gateway.request",
                    request_id=current_request_id(),
                    endpoint=endpoint,
                ) as root:
                    with span("gateway.admission"):
                        decision = self.admission.try_admit(endpoint)
                    if not decision.admitted:
                        status, payload = (
                            decision.status,
                            _error_payload(
                                "GatewayError",
                                f"request shed: {decision.reason}",
                                reason=decision.reason,
                            ),
                        )
                        retry_after = decision.retry_after
                    else:
                        admitted = True
                        try:
                            status, payload = await self._answer_query(
                                endpoint, path, params
                            )
                        except Exception as error:
                            # Non-ReproError breakage (the coalescer
                            # forwards arbitrary executor failures):
                            # answer 500 rather than dropping the
                            # connection — and fall through to the
                            # finally below, so the admitted slot is
                            # released instead of leaking until the
                            # gateway sheds everything as queue-full.
                            status, payload = 500, _error_payload(
                                type(error).__name__,
                                str(error) or "internal error",
                            )
                    if root is not None:
                        root.set(status=status)
            else:
                status, payload = 404, _error_payload(
                    "GatewayError", f"no such endpoint: {path}"
                )
            if self.admission.draining:
                keep_alive = False
            if status in (429, 503) and retry_after is None:
                # Sheds decided past admission (a drain racing the
                # coalescer submit): the process is going away, so the
                # honest hint is the full drain window.
                retry_after = self.config.drain_seconds
            try:
                await self._write_response(
                    writer,
                    status,
                    payload,
                    keep_alive,
                    content_type=content_type,
                    retry_after=retry_after,
                )
            finally:
                # Release only after the body is flushed: stop()'s
                # active==0 drain wait must cover response *writing*,
                # or the connection-close sweep could truncate a slow
                # client's body mid-flush.
                if admitted:
                    self.admission.release()
                elapsed = time.perf_counter() - started
                self.metrics.note_response(endpoint, status, elapsed)
                # The access line is DEBUG on purpose: metrics are the
                # per-request accounting of record (counted and timed
                # above), traces are the sampled deep-dive, and at
                # INFO the log stays an *event* stream — errors,
                # lifecycle — instead of paying ~a log line per
                # request at high QPS (measured by the obs_overhead
                # bench scenario).
                _LOG.debug(
                    "request",
                    extra={
                        "endpoint": endpoint,
                        "path": path,
                        "status": status,
                        "ms": round(elapsed * 1e3, 3),
                    },
                )
        finally:
            if id_token is not None:
                request_id_var.reset(id_token)
        return keep_alive

    @staticmethod
    def _endpoint_of(path: str) -> str:
        if path == "/v1/healthz":
            return "healthz"
        if path == "/v1/metrics":
            return "metrics"
        if path == "/v1/metrics/history":
            return "history"
        if path == "/v1/trace":
            return "trace"
        if path == "/v1/profile":
            return "profile"
        if path == "/v1/slo":
            return "slo"
        if path == "/v1/top":
            return "top"
        if path == "/v1/compare":
            return "compare"
        if path.startswith("/v1/paper/"):
            return "paper"
        return "unknown"

    async def _answer_query(
        self,
        endpoint: str,
        path: str,
        params: Mapping[str, list[str]],
    ) -> tuple[int, dict[str, Any]]:
        """Parse, coalesce, and map typed failures to HTTP statuses.

        Admission happens in :meth:`_respond` (the caller), which
        releases the slot only after the response body is flushed.
        """
        try:
            # Attribution for the sampling profiler: while the event
            # loop is executing this request, samples land under the
            # endpoint's phase (approximate across awaits — documented
            # in docs/OBSERVABILITY.md).
            with profile_phase(endpoint):
                query = _parse_query(endpoint, path, params)
                with span("gateway.coalesce"):
                    version, result = await self.coalescer.submit(query)
            return 200, {
                "version": version,
                "result": result_payload(result),
            }
        except GraphError as error:
            return 404, _error_payload("GraphError", str(error))
        except (ConfigurationError, DataFormatError) as error:
            return 400, _error_payload(type(error).__name__, str(error))
        except GatewayError as error:
            return 503, _error_payload(
                "GatewayError", str(error), reason="draining"
            )
        except ReproError as error:
            return 500, _error_payload(type(error).__name__, str(error))

    def _healthz_payload(self) -> dict[str, Any]:
        backend = self.backend
        if isinstance(backend, RankingService):
            version = backend.version
            papers = backend.index.network.n_papers
        else:
            version = backend.version
            papers = backend.sharded.n_papers
        return {
            "status": "draining" if self.admission.draining else "ok",
            "version": version,
            "papers": papers,
            "live_updates": self.updater is not None,
        }

    def _metrics_payload(self) -> dict[str, Any]:
        cache_stats = None
        if isinstance(self.backend, RankingService):
            cache_stats = self.backend.cache_stats().as_dict()
        document = self.metrics.render(cache_stats)
        document["admission"] = self.admission.snapshot()
        return document

    def _prometheus_text(self) -> str:
        """``/v1/metrics?format=prometheus``: the text exposition."""
        return render_families(self._metric_families())

    def _metric_families(
        self, *, labelled: bool = True
    ) -> list[MetricFamily]:
        """Every family this process exports, as one list.

        Gateway request families plus the admission snapshot, the
        serve-layer cache counters, and everything the process-global
        registry has accumulated (solver, engine, updater, stream).
        This is the single source the exposition text, the time-series
        store, and the ``?format=state`` scrape document all render
        from.  With ``labelled=True`` (the exposition) a fleet worker
        stamps its ``worker`` label on every sample; the mergeable
        state form stays unlabelled so the supervisor's cross-worker
        merge sums matching series instead of keeping them apart.
        """
        families: list[MetricFamily] = self.metrics.collect()
        adm = self.admission.snapshot()
        families.append(
            gauge_family(
                "repro_gateway_admission_active",
                "Requests currently admitted (in flight).",
                adm["active"],
            )
        )
        families.append(
            gauge_family(
                "repro_gateway_admission_peak_active",
                "High-water mark of concurrently admitted requests.",
                adm["peak_active"],
            )
        )
        families.append(
            counter_family(
                "repro_gateway_admitted_total",
                "Requests admitted past admission control.",
                {(): float(adm["admitted_total"])},
            )
        )
        families.append(
            gauge_family(
                "repro_gateway_draining",
                "1 while the gateway is draining, else 0.",
                1.0 if adm["draining"] else 0.0,
            )
        )
        if isinstance(self.backend, RankingService):
            stats = self.backend.cache_stats().as_dict()
            families.append(
                counter_family(
                    "repro_cache_events_total",
                    "Result-cache lookup outcomes, by event.",
                    {
                        (("event", event),): float(stats[event])
                        for event in (
                            "hits", "misses", "evictions", "invalidations"
                        )
                    },
                )
            )
            families.append(
                gauge_family(
                    "repro_cache_size",
                    "Entries currently in the result cache.",
                    stats["size"],
                )
            )
        families.extend(REGISTRY.collect())
        identity = get_worker_identity()
        if labelled and identity is not None:
            families = label_families(
                families, (("worker", identity[0]),)
            )
        return families

    def _worker_info(self) -> dict[str, Any]:
        """This process's fleet identity, for scrape documents."""
        identity = get_worker_identity()
        return {
            "worker": identity[0] if identity else None,
            "pid": identity[1] if identity else os.getpid(),
            "index": self.worker_index,
        }

    def _trace_payload(
        self, params: Mapping[str, list[str]]
    ) -> dict[str, Any]:
        """``/v1/trace``: recent span trees, newest first."""
        collector = get_collector()
        limit_raw = params.get("limit", ["50"])[-1]
        try:
            limit = max(0, int(limit_raw))
        except ValueError:
            limit = 50
        if collector is None:
            return {"enabled": False, "recorded_total": 0, "traces": []}
        traces = collector.recent(limit)
        if self.worker_index is not None:
            # The supervisor merges these across the fleet; a tree is
            # only actionable there if it says which process ran it.
            traces = [
                {**trace, "worker": self.worker_index}
                for trace in traces
            ]
        return {
            "enabled": True,
            "recorded_total": collector.recorded_total,
            "traces": traces,
        }

    def _profile_payload(
        self, params: Mapping[str, list[str]]
    ) -> tuple[int, dict[str, Any] | str, str]:
        """``/v1/profile``: the sampling profiler's view of this process.

        ``?format=`` selects the rendering: ``json`` (default,
        flamegraph-ready aggregated stacks), ``collapsed`` (Brendan
        Gregg folded text for ``flamegraph.pl``), ``speedscope`` (a
        ready-to-open speedscope document), or ``state`` (the raw
        mergeable counts the supervisor aggregates).  ``?memory=1``
        attaches a tracemalloc snapshot/diff.
        """
        wants = params.get("format", ["json"])[-1].lower()
        if self.profiler is None:
            if wants == "state":
                return 200, {"enabled": False, "profile": None}, (
                    "application/json"
                )
            return 200, {
                "enabled": False,
                "detail": "start the gateway with profiling enabled "
                "(--profile / GatewayConfig(profile=True))",
            }, "application/json"
        state = self.profiler.state_dict()
        if wants == "state":
            return 200, {
                "enabled": True,
                "profile": state,
                "worker": self._worker_info(),
            }, "application/json"
        if wants == "collapsed":
            return 200, collapsed_stacks(state), (
                "text/plain; charset=utf-8"
            )
        if wants == "speedscope":
            return 200, speedscope_document(state), "application/json"
        try:
            top = max(1, int(params.get("top", ["50"])[-1]))
        except ValueError:
            top = 50
        document = render_profile(state, top=top)
        if params.get("memory", [""])[-1] in ("1", "true", "yes"):
            memory = self.profiler.memory
            document["memory"] = (
                memory.snapshot() if memory is not None else None
            )
        return 200, document, "application/json"

    def _slo_payload(self) -> dict[str, Any]:
        """``/v1/slo``: objectives, burn rates, and alert states."""
        return self.slo_engine.evaluate(scrape=True)

    def _history_payload(
        self, params: Mapping[str, list[str]]
    ) -> dict[str, Any]:
        """``/v1/metrics/history``: the ring-buffer time series."""
        family = params.get("family", [None])[-1] or None
        since: float | None = None
        raw_since = params.get("since", [""])[-1]
        if raw_since:
            try:
                since = float(raw_since)
            except ValueError:
                since = None
        limit: int | None = None
        raw_limit = params.get("limit", [""])[-1]
        if raw_limit:
            try:
                limit = max(1, int(raw_limit))
            except ValueError:
                limit = None
        if self.tsdb.scrapes_total == 0:
            # No scraper thread has run yet (or the interval is 0 —
            # fleet workers): take one point now so the endpoint is
            # never empty on a live process.
            self.tsdb.scrape_once()
        return self.tsdb.history_payload(
            family=family, since=since, limit=limit
        )

    async def _fleet_fetch(
        self, target: str
    ) -> tuple[int, dict[str, Any] | str, str] | None:
        """Proxy ``target`` to the supervisor's fleet-stats server.

        Any worker can answer a deep-observability request with the
        *fleet* view: it forwards the request (path, query string and
        all) to the supervisor, which fans out ``?scope=local`` scrapes
        to every worker and merges.  Returns ``None`` when the
        supervisor is unreachable — the caller falls back to the local
        payload, which is degraded but honest (and carries this
        worker's identity).
        """
        assert self.fleet_stats_addr is not None
        host, port = self.fleet_stats_addr
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(host, port), timeout=2.0
            )
        except (OSError, asyncio.TimeoutError):
            return None
        try:
            writer.write(
                f"GET {target} HTTP/1.1\r\n"
                f"Host: {host}\r\nConnection: close\r\n\r\n".encode(
                    "latin-1"
                )
            )
            await writer.drain()
            raw = await asyncio.wait_for(reader.read(), timeout=5.0)
        except (OSError, asyncio.TimeoutError):
            return None
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (OSError, ConnectionResetError, BrokenPipeError):
                pass
        head, _, body = raw.partition(b"\r\n\r\n")
        head_lines = head.split(b"\r\n")
        if not head_lines or not head_lines[0].startswith(b"HTTP/1."):
            return None
        try:
            status = int(head_lines[0].split()[1])
        except (IndexError, ValueError):
            return None
        content_type = "application/json"
        for line in head_lines[1:]:
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-type":
                content_type = value.strip()
        if content_type.startswith("application/json"):
            try:
                return status, json.loads(body), content_type
            except ValueError:
                return None
        return status, body.decode("utf-8", "replace"), content_type

    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Mapping[str, Any] | str,
        keep_alive: bool,
        *,
        content_type: str = "application/json",
        retry_after: float | None = None,
    ) -> None:
        if isinstance(payload, str):
            body = payload.encode("utf-8")
        else:
            body = json.dumps(payload).encode("utf-8")
        connection = "keep-alive" if keep_alive else "close"
        request_id = current_request_id()
        request_id_header = (
            f"X-Request-Id: {request_id}\r\n" if request_id else ""
        )
        # RFC 9110 delta-seconds: a non-negative integer, rounded up so
        # "0.08s until a token" never becomes "retry immediately".
        retry_header = (
            f"Retry-After: {max(1, math.ceil(retry_after))}\r\n"
            if retry_after is not None
            else ""
        )
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"{request_id_header}"
            f"{retry_header}"
            f"Connection: {connection}\r\n"
            "\r\n"
        )
        fault = chaos_point("gateway.response.write")
        if fault is not None and fault.kind == "torn":
            # Injected torn response: flush the head and half the body,
            # then hard-drop the connection.  The declared
            # Content-Length makes the tear detectable — a client must
            # see a short read, never a parseable partial document.
            writer.write(head.encode("latin-1") + body[: len(body) // 2])
            await writer.drain()
            writer.transport.abort()
            raise InjectedDisconnect(
                "gateway.response.write", fault.invocation
            )
        writer.write(head.encode("latin-1") + body)
        await writer.drain()


def _error_payload(
    error_type: str, message: str, *, reason: str | None = None
) -> dict[str, Any]:
    """A typed error body; carries the bound request id when one exists."""
    error: dict[str, Any] = {"type": error_type, "message": message}
    if reason is not None:
        error["reason"] = reason
    request_id = current_request_id()
    if request_id is not None:
        error["request_id"] = request_id
    return {"error": error}


def _parse_query(
    endpoint: str, path: str, params: Mapping[str, list[str]]
) -> Query:
    """Build the engine query for one endpoint; bad params are 400s."""

    def one(name: str, default: str | None = None) -> str | None:
        values = params.get(name)
        return values[-1] if values else default

    def integer(name: str, default: int) -> int:
        raw = one(name)
        if raw is None:
            return default
        try:
            return int(raw)
        except ValueError:
            raise ConfigurationError(
                f"query parameter {name!r} must be an integer, "
                f"got {raw!r}"
            ) from None

    def span() -> tuple[float, float] | None:
        lo_raw, hi_raw = one("year_min"), one("year_max")
        if lo_raw is None and hi_raw is None:
            return None
        try:
            lo = float(lo_raw) if lo_raw is not None else float("-inf")
            hi = float(hi_raw) if hi_raw is not None else float("inf")
        except ValueError:
            raise ConfigurationError(
                "year_min/year_max must be numbers"
            ) from None
        return (lo, hi)

    if endpoint == "top":
        return TopKQuery(
            method=one("method", "AR") or "AR",
            k=integer("k", 10),
            offset=integer("offset", 0),
            year_range=span(),
        )
    if endpoint == "compare":
        raw = one("methods")
        if not raw:
            raise ConfigurationError(
                "compare needs ?methods=A,B[,C...]"
            )
        return CompareQuery(
            methods=tuple(
                label.strip() for label in raw.split(",") if label.strip()
            ),
            k=integer("k", 10),
            offset=integer("offset", 0),
            year_range=span(),
        )
    assert endpoint == "paper"
    paper_id = unquote(path[len("/v1/paper/"):])
    if not paper_id:
        raise ConfigurationError("paper id missing from path")
    return PaperQuery(paper_id=paper_id)


class GatewayThread:
    """Run a gateway on a background thread with its own event loop.

    For synchronous callers — the docs example, the bench harness, and
    tests that drive the server with ``urllib`` — a context manager
    that starts the loop, reports the bound port, and drains on exit:

    >>> from repro.serve import RankingService, ScoreIndex
    >>> from repro.synth import toy_network
    >>> index = ScoreIndex(toy_network())
    >>> index.add_method("CC")
    >>> with GatewayThread(RankingService(index)) as gateway:
    ...     import json, urllib.request
    ...     body = urllib.request.urlopen(
    ...         f"http://127.0.0.1:{gateway.port}/v1/healthz"
    ...     ).read()
    >>> json.loads(body)["status"]
    'ok'
    """

    def __init__(
        self,
        backend: Backend,
        *,
        config: GatewayConfig | None = None,
        ingestor: StreamIngestor | None = None,
    ) -> None:
        self._backend = backend
        self._config = config or GatewayConfig(port=0)
        self._ingestor = ingestor
        self.server: GatewayServer | None = None
        self.port: int | None = None
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._shutdown: asyncio.Event | None = None
        self._started = threading.Event()
        self._startup_error: BaseException | None = None

    def start(self) -> "GatewayThread":
        """Start the loop thread; returns once the port is bound."""
        if self._thread is not None:
            raise GatewayError("gateway thread already started")
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._main()),
            name="repro-gateway",
            daemon=True,
        )
        self._thread.start()
        self._started.wait(timeout=30)
        if self._startup_error is not None:
            raise self._startup_error
        if self.port is None:
            raise GatewayError("gateway thread failed to start in time")
        return self

    async def _main(self) -> None:
        try:
            server = GatewayServer(
                self._backend,
                config=self._config,
                ingestor=self._ingestor,
            )
            await server.start()
        except BaseException as error:  # surface to the caller thread
            self._startup_error = error
            self._started.set()
            return
        self.server = server
        self.port = server.port
        self._loop = asyncio.get_running_loop()
        self._shutdown = asyncio.Event()
        self._started.set()
        await self._shutdown.wait()
        await server.stop()

    def stop(self) -> None:
        """Drain, join, and reset so the thread can be started again."""
        if self._thread is None:
            return
        if self._loop is not None and self._shutdown is not None:
            self._loop.call_soon_threadsafe(self._shutdown.set)
        self._thread.join(timeout=60)
        self._thread = None
        # Re-arm for a clean restart: without this a second start()
        # would see the stale _started event and report the dead port.
        self._started.clear()
        self.server = None
        self.port = None
        self._loop = None
        self._shutdown = None
        self._startup_error = None

    def __enter__(self) -> "GatewayThread":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()
