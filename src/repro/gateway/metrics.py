"""Lock-free gateway observability: counters and latency histograms.

A serving tier is only operable if its latency distribution is visible
*while it serves*; a mean hides exactly the tail that a ranking site's
front page dies on.  This module keeps the accounting cheap enough to
sit on the request hot path:

* every instrument is a plain Python ``int`` bumped inline — atomic
  enough under the GIL (and exact in the gateway's single-threaded
  event loop), so there are no locks to contend on;
* latencies go into a :class:`LatencyHistogram` with *fixed*
  geometric buckets — recording is one bisect + one increment, and
  quantiles (p50/p95/p99) are recovered from the bucket counts on
  demand, so a million observations cost a few hundred ints of memory;
* coalesced batch sizes go into a small fixed histogram too, which is
  how the bench reports the batch-size distribution that request
  coalescing actually achieved.

``/v1/metrics`` renders one JSON document from a snapshot of all of
this plus the serve-layer LRU counters
(:meth:`~repro.serve.RankingService.cache_stats`); the same snapshot
also exports as Prometheus metric families
(:meth:`GatewayMetrics.collect`) for ``?format=prometheus``, with the
bucket math shared with :mod:`repro.obs.registry`.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Mapping, Sequence

from repro.obs.registry import (
    MetricFamily,
    Sample,
    counter_family,
    cumulative_buckets,
    geometric_bounds,
    histogram_samples,
    quantile_from_buckets,
)

__all__ = ["LatencyHistogram", "BatchSizeHistogram", "GatewayMetrics"]


class LatencyHistogram:
    """Fixed-bucket latency histogram with quantile recovery.

    Buckets are geometric from 50 microseconds to 30 seconds (ten per
    decade, ~59 buckets); quantiles interpolate linearly *within* the
    bucket the rank falls into, which keeps the typical estimation
    error to a few percent of the ~26%-wide bucket.  Everything above
    the last bound lands in a +inf overflow bucket.

    >>> hist = LatencyHistogram()
    >>> for ms in (1, 1, 2, 50):
    ...     hist.observe(ms / 1000.0)
    >>> hist.count
    4
    >>> hist.quantile(0.5) < hist.quantile(0.99)
    True
    """

    __slots__ = ("_bounds", "_counts", "count", "total_seconds", "max_seconds")

    BOUNDS = geometric_bounds(50e-6, 30.0, per_decade=10)

    def __init__(self) -> None:
        self._bounds = self.BOUNDS
        self._counts = [0] * (len(self._bounds) + 1)
        self.count = 0
        self.total_seconds = 0.0
        self.max_seconds = 0.0

    def observe(self, seconds: float) -> None:
        """Record one latency (seconds)."""
        self._counts[bisect_left(self._bounds, seconds)] += 1
        self.count += 1
        self.total_seconds += seconds
        if seconds > self.max_seconds:
            self.max_seconds = seconds

    def quantile(self, q: float) -> float:
        """The interpolated ``q``-quantile in seconds (0 if empty).

        Linear interpolation within the bucket the quantile rank falls
        into (uniform-within-bucket assumption), capped at the observed
        maximum; the overflow bucket reports the observed maximum.
        """
        return quantile_from_buckets(
            self._bounds, self._counts, self.count, self.max_seconds, q
        )

    @property
    def mean(self) -> float:
        """Mean latency in seconds (0 when empty)."""
        return self.total_seconds / self.count if self.count else 0.0

    @property
    def sum(self) -> float:
        """Total observed seconds (the Prometheus ``_sum`` series)."""
        return self.total_seconds

    def bucket_pairs(self) -> tuple[tuple[str, int], ...]:
        """Cumulative ``(le, count)`` pairs for ``_bucket`` export."""
        return cumulative_buckets(self._bounds, self._counts)

    def snapshot(self) -> dict[str, int | float]:
        """Quantiles and totals, in milliseconds, JSON-ready.

        ``count`` is an integer, the rest are floats — the annotation
        says so (``int | float``) instead of pretending everything is
        a float.
        """
        return {
            "count": self.count,
            "mean_ms": self.mean * 1000.0,
            "p50_ms": self.quantile(0.50) * 1000.0,
            "p95_ms": self.quantile(0.95) * 1000.0,
            "p99_ms": self.quantile(0.99) * 1000.0,
            "max_ms": self.max_seconds * 1000.0,
        }

    def state_dict(self) -> dict[str, Any]:
        """Raw bucket counts and totals — the mergeable representation.

        Quantiles cannot be combined across processes, bucket counts
        can: the multi-worker supervisor scrapes each worker's state
        and :meth:`merge_state`\\ s them into one histogram whose
        quantiles are exact over the whole fleet (same fixed bounds
        everywhere).
        """
        return {
            "counts": list(self._counts),
            "count": self.count,
            "total_seconds": self.total_seconds,
            "max_seconds": self.max_seconds,
        }

    def merge_state(self, state: Mapping[str, Any]) -> None:
        """Fold one :meth:`state_dict` into this histogram."""
        counts = state["counts"]
        if len(counts) != len(self._counts):
            raise ValueError(
                f"histogram bucket mismatch: {len(counts)} != "
                f"{len(self._counts)} (different BOUNDS?)"
            )
        for position, count in enumerate(counts):
            self._counts[position] += int(count)
        self.count += int(state["count"])
        self.total_seconds += float(state["total_seconds"])
        self.max_seconds = max(
            self.max_seconds, float(state["max_seconds"])
        )


class BatchSizeHistogram:
    """Distribution of coalesced batch sizes (1, 2, ..., 2^k buckets).

    Power-of-two buckets: ``1``, ``2``, ``3-4``, ``5-8``, ... —
    the interesting signal is "are batches forming at all", which the
    low buckets answer exactly.
    """

    __slots__ = ("_counts", "batches", "requests")

    N_BUCKETS = 12  # last bucket: > 2^10 = 1024

    def __init__(self) -> None:
        self._counts = [0] * self.N_BUCKETS
        self.batches = 0
        self.requests = 0

    def observe(self, size: int) -> None:
        """Record one executed batch of ``size`` requests."""
        bucket = 0 if size <= 1 else min(
            (size - 1).bit_length(), self.N_BUCKETS - 1
        )
        self._counts[bucket] += 1
        self.batches += 1
        self.requests += size

    @property
    def mean(self) -> float:
        """Mean requests per executed batch (0 when idle)."""
        return self.requests / self.batches if self.batches else 0.0

    def bucket_pairs(self) -> tuple[tuple[str, int], ...]:
        """Cumulative ``(le, count)`` pairs (le = 1, 2, 4, ..., 1024)."""
        bounds = tuple(
            float(1 << b) for b in range(self.N_BUCKETS - 1)
        )
        return cumulative_buckets(bounds, self._counts)

    def state_dict(self) -> dict[str, Any]:
        """Raw bucket counts and totals (mergeable across workers)."""
        return {
            "counts": list(self._counts),
            "batches": self.batches,
            "requests": self.requests,
        }

    def merge_state(self, state: Mapping[str, Any]) -> None:
        """Fold one :meth:`state_dict` into this histogram."""
        for position, count in enumerate(state["counts"]):
            self._counts[position] += int(count)
        self.batches += int(state["batches"])
        self.requests += int(state["requests"])

    def snapshot(self) -> dict[str, Any]:
        """Bucket labels -> counts, plus totals."""
        labels = ["1"]
        for b in range(1, self.N_BUCKETS - 1):
            lo, hi = (1 << (b - 1)) + 1, 1 << b
            labels.append(str(hi) if lo == hi else f"{lo}-{hi}")
        labels.append(f">{1 << (self.N_BUCKETS - 2)}")
        return {
            "batches": self.batches,
            "requests": self.requests,
            "mean_batch_size": self.mean,
            "distribution": {
                label: count
                for label, count in zip(labels, self._counts)
                if count
            },
        }


class GatewayMetrics:
    """All gateway instruments behind one facade.

    One instance per gateway; the server, admission controller,
    coalescer and stream updater all write into it, and ``/v1/metrics``
    (plus the bench harness) reads :meth:`render`.
    """

    def __init__(self) -> None:
        self.started_requests = 0
        self.responses_by_status: dict[int, int] = {}
        self.requests_by_endpoint: dict[str, int] = {}
        self.shed_429 = 0
        self.shed_503 = 0
        self.updates_applied = 0
        self.batch_sizes = BatchSizeHistogram()
        self._latency_by_endpoint: dict[str, LatencyHistogram] = {}

    def note_request(self, endpoint: str) -> None:
        """Count one arriving request against its endpoint."""
        self.started_requests += 1
        counts = self.requests_by_endpoint
        counts[endpoint] = counts.get(endpoint, 0) + 1

    def note_response(
        self, endpoint: str, status: int, seconds: float
    ) -> None:
        """Count one finished response and record its latency."""
        by_status = self.responses_by_status
        by_status[status] = by_status.get(status, 0) + 1
        if status == 429:
            self.shed_429 += 1
        elif status == 503:
            self.shed_503 += 1
        self.latency(endpoint).observe(seconds)

    def note_update(self) -> None:
        """Count one live stream micro-batch applied."""
        self.updates_applied += 1

    def latency(self, endpoint: str) -> LatencyHistogram:
        """The latency histogram of one endpoint (created on demand)."""
        hist = self._latency_by_endpoint.get(endpoint)
        if hist is None:
            hist = self._latency_by_endpoint.setdefault(
                endpoint, LatencyHistogram()
            )
        return hist

    def combined_latency(self) -> LatencyHistogram:
        """All endpoints pooled into one histogram (for the bench)."""
        pooled = LatencyHistogram()
        for hist in self._latency_by_endpoint.values():
            for position, count in enumerate(hist._counts):
                pooled._counts[position] += count
            pooled.count += hist.count
            pooled.total_seconds += hist.total_seconds
            pooled.max_seconds = max(pooled.max_seconds, hist.max_seconds)
        return pooled

    def state_dict(self) -> dict[str, Any]:
        """Every counter and raw histogram — the cross-process wire form.

        Each multi-worker gateway process serves this as
        ``/v1/metrics?format=state`` on its private control port; the
        supervisor merges the workers' states with
        :meth:`merge_states` and renders ONE fleet-wide document whose
        counters are exact sums and whose latency quantiles come from
        summed bucket counts (not from averaging per-worker
        quantiles, which would be wrong).
        """
        return {
            "started_requests": self.started_requests,
            "responses_by_status": {
                str(status): count
                for status, count in self.responses_by_status.items()
            },
            "requests_by_endpoint": dict(self.requests_by_endpoint),
            "shed_429": self.shed_429,
            "shed_503": self.shed_503,
            "updates_applied": self.updates_applied,
            "batch_sizes": self.batch_sizes.state_dict(),
            "latency_by_endpoint": {
                endpoint: hist.state_dict()
                for endpoint, hist in self._latency_by_endpoint.items()
            },
        }

    @classmethod
    def merge_states(
        cls, states: "Sequence[Mapping[str, Any]]"
    ) -> "GatewayMetrics":
        """One ``GatewayMetrics`` holding the sum of worker states."""
        merged = cls()
        for state in states:
            merged.started_requests += int(state["started_requests"])
            for status, count in state["responses_by_status"].items():
                key = int(status)
                merged.responses_by_status[key] = (
                    merged.responses_by_status.get(key, 0) + int(count)
                )
            for endpoint, count in state["requests_by_endpoint"].items():
                merged.requests_by_endpoint[endpoint] = (
                    merged.requests_by_endpoint.get(endpoint, 0)
                    + int(count)
                )
            merged.shed_429 += int(state["shed_429"])
            merged.shed_503 += int(state["shed_503"])
            merged.updates_applied += int(state["updates_applied"])
            merged.batch_sizes.merge_state(state["batch_sizes"])
            for endpoint, hist_state in state[
                "latency_by_endpoint"
            ].items():
                merged.latency(endpoint).merge_state(hist_state)
        return merged

    def render(
        self, cache_stats: Mapping[str, Any] | None = None
    ) -> dict[str, Any]:
        """The full ``/v1/metrics`` document (JSON-serialisable)."""
        errors = sum(
            count
            for status, count in self.responses_by_status.items()
            if status >= 500
        )
        document: dict[str, Any] = {
            "requests": {
                "started": self.started_requests,
                "by_endpoint": dict(self.requests_by_endpoint),
            },
            "responses": {
                "by_status": {
                    str(status): count
                    for status, count in sorted(
                        self.responses_by_status.items()
                    )
                },
                "shed_429": self.shed_429,
                "shed_503": self.shed_503,
                "errors_5xx": errors,
            },
            "latency": {
                "overall": self.combined_latency().snapshot(),
                "by_endpoint": {
                    endpoint: hist.snapshot()
                    for endpoint, hist in sorted(
                        self._latency_by_endpoint.items()
                    )
                },
            },
            "coalescing": self.batch_sizes.snapshot(),
            "stream_updates": {"applied": self.updates_applied},
        }
        if cache_stats is not None:
            document["result_cache"] = dict(cache_stats)
        return document

    def collect(self) -> list[MetricFamily]:
        """The gateway's request metrics as Prometheus families.

        ``/v1/metrics?format=prometheus`` renders these next to the
        process-global :data:`repro.obs.registry.REGISTRY` families
        (solver, engine, updater) and the admission snapshot.
        """
        families = [
            counter_family(
                "repro_gateway_requests_total",
                "Requests started, by endpoint.",
                {
                    (("endpoint", endpoint),): float(count)
                    for endpoint, count in sorted(
                        self.requests_by_endpoint.items()
                    )
                },
            ),
            counter_family(
                "repro_gateway_responses_total",
                "Responses sent, by HTTP status.",
                {
                    (("status", str(status)),): float(count)
                    for status, count in sorted(
                        self.responses_by_status.items()
                    )
                },
            ),
            counter_family(
                "repro_gateway_requests_shed_total",
                "Requests shed by admission control, by status.",
                {
                    (("status", "429"),): float(self.shed_429),
                    (("status", "503"),): float(self.shed_503),
                },
            ),
            counter_family(
                "repro_gateway_stream_updates_total",
                "Live stream micro-batches applied.",
                {(): float(self.updates_applied)},
            ),
        ]
        latency_samples: list[Sample] = []
        for endpoint, hist in sorted(self._latency_by_endpoint.items()):
            latency_samples.extend(
                histogram_samples(
                    (("endpoint", endpoint),),
                    hist.bucket_pairs(),
                    hist.sum,
                    hist.count,
                )
            )
        families.append(
            MetricFamily(
                name="repro_gateway_request_latency_seconds",
                kind="histogram",
                help="Request latency in seconds, by endpoint.",
                samples=tuple(latency_samples),
            )
        )
        families.append(
            MetricFamily(
                name="repro_gateway_coalesced_batch_size",
                kind="histogram",
                help="Requests per coalesced engine batch.",
                samples=histogram_samples(
                    (),
                    self.batch_sizes.bucket_pairs(),
                    float(self.batch_sizes.requests),
                    self.batch_sizes.batches,
                ),
            )
        )
        return families
