"""The gateway load generator: concurrent clients, verified responses.

``repro loadgen`` (and the ``gateway`` bench scenario) drive a real
:class:`~repro.gateway.GatewayServer` over real sockets with N
concurrent asyncio clients issuing mixed endpoint traffic — ranking
pages, paper lookups, comparisons — optionally while a
:class:`~repro.gateway.StreamUpdater` applies citation micro-batches
mid-run.  Every client records per-request latency and the full JSON
response.

The run then *proves* its answers instead of trusting them: each
response carries the index version it was computed at, and stream
replay is deterministic (PR 4), so a fresh **verification replica**
replaying the same log with the same batch policy passes through
bit-identical index states.  The verifier steps the replica to every
version observed in the recorded traffic and compares each response
payload against a direct :class:`~repro.serve.RankingService` call —
the acceptance property "every gateway response is bit-identical to a
direct service call at the response's reported version", checked
response by response.

The report is JSON-ready: requests/second, client-observed latency
quantiles (p50/p95/p99), status counts, the server's coalesced
batch-size distribution, cache counters, and the
``identical_rankings`` verdict.
"""

from __future__ import annotations

import asyncio
import json
import random
import time
from typing import Any, Mapping, Sequence
from urllib.parse import quote

from repro.errors import GatewayError
from repro.gateway.metrics import LatencyHistogram
from repro.gateway.server import GatewayConfig, GatewayServer
from repro.serve.service import RankingService
from repro.stream.events import EventLog
from repro.stream.ingest import StreamIngestor

__all__ = [
    "run_load_over_log",
    "run_load_static",
    "run_load_multiworker",
]


# ----------------------------------------------------------------------
# Request planning
# ----------------------------------------------------------------------
def _request_plan(
    rng: random.Random,
    methods: Sequence[str],
    paper_ids: Sequence[str],
    count: int,
    year_span: tuple[float, float],
) -> list[dict[str, Any]]:
    """A deterministic mixed-traffic plan for one client."""
    lo, hi = year_span
    third = (hi - lo) / 3.0
    spans = [None, None, (lo, lo + 2 * third), (lo + third, hi)]
    plan: list[dict[str, Any]] = []
    for _ in range(count):
        roll = rng.random()
        if roll < 0.55:
            plan.append(
                {
                    "kind": "top",
                    "method": rng.choice(list(methods)),
                    "k": rng.choice([5, 10, 25]),
                    "offset": rng.choice([0, 0, 0, 10, 50]),
                    "span": rng.choice(spans),
                }
            )
        elif roll < 0.8 and paper_ids:
            plan.append(
                {"kind": "paper", "id": rng.choice(list(paper_ids))}
            )
        else:
            chosen = list(methods)
            rng.shuffle(chosen)
            plan.append(
                {
                    "kind": "compare",
                    "methods": chosen[: max(2, min(3, len(chosen)))],
                    "k": rng.choice([10, 25]),
                }
            )
    return plan


def _target_of(request: Mapping[str, Any]) -> str:
    """The HTTP request target for one planned request."""
    kind = request["kind"]
    if kind == "top":
        target = (
            f"/v1/top?method={quote(request['method'])}"
            f"&k={request['k']}&offset={request['offset']}"
        )
        if request["span"] is not None:
            # repr round-trips float64 exactly; %g would truncate the
            # bound and silently change the filtered population.
            lo, hi = request["span"]
            target += f"&year_min={lo!r}&year_max={hi!r}"
        return target
    if kind == "paper":
        return f"/v1/paper/{quote(request['id'], safe='')}"
    assert kind == "compare"
    return (
        f"/v1/compare?methods={quote(','.join(request['methods']))}"
        f"&k={request['k']}"
    )


# ----------------------------------------------------------------------
# The asyncio HTTP client
# ----------------------------------------------------------------------
async def _client(
    host: str,
    port: int,
    plan: Sequence[Mapping[str, Any]],
    records: list[dict[str, Any]],
    histogram: LatencyHistogram,
    *,
    retries: int = 0,
    retry_cap: float = 2.0,
    reconnect_delay: float = 0.05,
) -> None:
    """One keep-alive connection working through its request plan.

    With ``retries`` (the multi-worker drivers), shed responses are
    retried after honouring the server's ``Retry-After`` header
    (capped at ``retry_cap`` — the header's RFC floor is one whole
    second, far coarser than bench-scale runs), and lost connections
    reconnect: against a worker fleet a connection dies whenever *its*
    worker does, and the retried request simply lands on a sibling.
    Only the final attempt's latency is observed — backoff sleeps are
    the client behaving, not the server responding.
    """
    reader: asyncio.StreamReader | None = None
    writer: asyncio.StreamWriter | None = None

    async def connect() -> None:
        nonlocal reader, writer
        if writer is None:
            reader, writer = await asyncio.open_connection(host, port)

    async def disconnect() -> None:
        nonlocal reader, writer
        if writer is not None:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
        reader = writer = None

    try:
        for request in plan:
            target = _target_of(request)
            attempt = 0
            while True:
                try:
                    await connect()
                    assert reader is not None and writer is not None
                    started = time.perf_counter()
                    writer.write(
                        (
                            f"GET {target} HTTP/1.1\r\n"
                            f"Host: {host}\r\n"
                            "Connection: keep-alive\r\n\r\n"
                        ).encode("latin-1")
                    )
                    await writer.drain()
                    status, headers, document = await _read_response(
                        reader
                    )
                    latency = time.perf_counter() - started
                except (OSError, asyncio.IncompleteReadError):
                    await disconnect()
                    if attempt >= retries:
                        records.append(
                            {
                                "request": dict(request),
                                "status": 599,
                                "version": None,
                                "result": None,
                                "error": "connection-lost",
                            }
                        )
                        break
                    attempt += 1
                    await asyncio.sleep(reconnect_delay)
                    continue
                if status in (429, 503) and attempt < retries:
                    attempt += 1
                    hint = headers.get("retry-after")
                    delay = (
                        min(float(hint), retry_cap)
                        if hint is not None
                        else reconnect_delay
                    )
                    await asyncio.sleep(delay)
                    continue
                histogram.observe(latency)
                records.append(
                    {
                        "request": dict(request),
                        "status": status,
                        "version": document.get("version"),
                        "result": document.get("result"),
                        "error": document.get("error"),
                    }
                )
                break
    finally:
        await disconnect()


async def _read_response(
    reader: asyncio.StreamReader,
) -> tuple[int, dict[str, str], dict[str, Any]]:
    """One HTTP response: ``(status, lowercase headers, JSON body)``."""
    head = await reader.readuntil(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split()[1])
    headers: dict[str, str] = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        if value:
            headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", 0))
    body = await reader.readexactly(length) if length else b""
    document = json.loads(body) if body else {}
    return status, headers, document


# ----------------------------------------------------------------------
# Verification
# ----------------------------------------------------------------------
def _canon(payload: Any) -> Any:
    """JSON round-trip: tuples become lists, exactly like the wire."""
    return json.loads(json.dumps(payload))


def _direct_payload(
    service: RankingService, request: Mapping[str, Any]
) -> dict[str, Any]:
    """The payload a direct service call produces for one request."""
    from repro.serve.batch import result_payload

    kind = request["kind"]
    if kind == "top":
        return result_payload(
            service.top_k(
                request["method"],
                k=request["k"],
                offset=request["offset"],
                year_range=request["span"],
            )
        )
    if kind == "paper":
        return result_payload(service.paper(request["id"]))
    assert kind == "compare"
    return result_payload(
        service.compare(request["methods"], k=request["k"])
    )


def _verify_records(
    records: Sequence[Mapping[str, Any]],
    service_at_version,
) -> tuple[int, int]:
    """Compare every 200 response against a direct call at its version.

    ``service_at_version(v)`` must return a
    :class:`~repro.serve.RankingService` whose state is bit-identical
    to the serving state at version ``v`` (or ``None`` if that version
    cannot be reconstructed — counted as a mismatch).  Returns
    ``(verified, mismatches)``.
    """
    verified = 0
    mismatches = 0
    ordered = sorted(
        (r for r in records if r["status"] == 200),
        key=lambda r: r["version"],
    )
    for record in ordered:
        service = service_at_version(int(record["version"]))
        if service is None:
            mismatches += 1
            continue
        expected = _canon(_direct_payload(service, record["request"]))
        if expected != record["result"]:
            mismatches += 1
        else:
            verified += 1
    return verified, mismatches


class _ReplicaAtVersion:
    """Step a verification replica ingestor to requested versions."""

    def __init__(self, replica: StreamIngestor) -> None:
        self._replica = replica

    def __call__(self, version: int) -> RankingService | None:
        replica = self._replica
        if replica.batches_applied == 0:
            replica.step()  # bootstrap -> version 0
        while (
            replica.service.version < version and not replica.exhausted
        ):
            replica.step()
        if replica.service.version != version:
            return None
        return replica.service


# ----------------------------------------------------------------------
# Run drivers
# ----------------------------------------------------------------------
def _client_plans(
    methods: Sequence[str],
    sample: Sequence[str],
    year_span: tuple[float, float],
    *,
    clients: int,
    requests_per_client: int,
    seed: int,
) -> list[list[dict[str, Any]]]:
    """One deterministic mixed-traffic plan per client."""
    return [
        _request_plan(
            random.Random(seed + 1000 * client),
            methods,
            sample,
            requests_per_client,
            year_span,
        )
        for client in range(clients)
    ]


def _execute_run(
    server: GatewayServer,
    plans: Sequence[Sequence[Mapping[str, Any]]],
) -> tuple[list[dict[str, Any]], LatencyHistogram, float]:
    """Start the server, run every client plan, drain, and time it.

    The one place the load loop lives — the bench (`gateway`
    scenario, via :func:`run_load_over_log`) and the CI static smoke
    (:func:`run_load_static`) must measure exactly the same thing.
    """
    records: list[dict[str, Any]] = []
    histogram = LatencyHistogram()

    async def drive() -> float:
        await server.start()
        assert server.port is not None
        started = time.perf_counter()
        await asyncio.gather(
            *(
                _client(
                    server.config.host, server.port, plan, records,
                    histogram,
                )
                for plan in plans
            )
        )
        elapsed = time.perf_counter() - started
        await server.stop()
        return elapsed

    elapsed = asyncio.run(drive())
    return records, histogram, elapsed


def _report(
    records: list[dict[str, Any]],
    histogram: LatencyHistogram,
    elapsed: float,
    server: GatewayServer,
    verified: int,
    mismatches: int,
) -> dict[str, Any]:
    status_counts: dict[str, int] = {}
    for record in records:
        key = str(record["status"])
        status_counts[key] = status_counts.get(key, 0) + 1
    errors_5xx = sum(
        count
        for status, count in status_counts.items()
        if int(status) >= 500
    )
    versions = sorted(
        {
            int(record["version"])
            for record in records
            if record["version"] is not None
        }
    )
    cache_stats = None
    if isinstance(server.backend, RankingService):
        cache_stats = server.backend.cache_stats().as_dict()
    return {
        "requests": len(records),
        "elapsed_seconds": elapsed,
        "requests_per_second": (
            len(records) / elapsed if elapsed > 0 else 0.0
        ),
        "latency": histogram.snapshot(),
        "status_counts": status_counts,
        "errors_5xx": errors_5xx,
        "shed_429": server.metrics.shed_429,
        "shed_503": server.metrics.shed_503,
        "coalescing": server.metrics.batch_sizes.snapshot(),
        "updates_applied": server.metrics.updates_applied,
        "versions_observed": versions,
        "result_cache": cache_stats,
        "verified_responses": verified,
        "mismatched_responses": mismatches,
        "identical_rankings": mismatches == 0 and verified > 0,
    }


def run_load_over_log(
    log: EventLog,
    methods: Sequence[str] = ("AR", "PR", "CC"),
    *,
    clients: int = 4,
    requests_per_client: int = 50,
    seed: int = 7,
    batch_size: int = 64,
    bootstrap_events: int | None = None,
    shards: int = 1,
    partitioner: str = "hash",
    config: GatewayConfig | None = None,
    verify: bool = True,
) -> dict[str, Any]:
    """Serve a log's bootstrap, load-test while replaying the rest.

    The gateway bootstraps from the first ``bootstrap_events`` events
    (default: half the log), then serves ``clients`` concurrent
    connections of mixed traffic while a live updater applies the
    remaining events in micro-batches.  With ``verify`` (default), a
    replica replay checks every response at its reported version.
    """
    if clients < 1:
        raise GatewayError(f"clients must be >= 1, got {clients}")
    if requests_per_client < 1:
        raise GatewayError(
            f"requests_per_client must be >= 1, got {requests_per_client}"
        )
    bootstrap = (
        max(1, len(log) // 2)
        if bootstrap_events is None
        else bootstrap_events
    )

    def make_ingestor() -> StreamIngestor:
        return StreamIngestor(
            log,
            methods,
            batch_size=batch_size,
            bootstrap_size=bootstrap,
            shards=shards,
            partitioner=partitioner,
        )

    ingestor = make_ingestor()
    ingestor.step()  # the bootstrap batch: version 0
    service = ingestor.service
    network = service.index.network
    times = network.publication_times
    year_span = (float(times.min()), float(times.max()))
    # Only bootstrap-era papers: they exist at every version a client
    # can observe, so lookups never depend on update timing.
    sample = list(network.paper_ids[:: max(1, network.n_papers // 64)])
    plans = _client_plans(
        methods, sample, year_span,
        clients=clients,
        requests_per_client=requests_per_client,
        seed=seed,
    )
    server = GatewayServer(
        service,
        config=config or GatewayConfig(port=0),
        ingestor=ingestor,
    )
    records, histogram, elapsed = _execute_run(server, plans)

    verified = mismatches = 0
    if verify:
        verified, mismatches = _verify_records(
            records, _ReplicaAtVersion(make_ingestor())
        )
    return _report(
        records, histogram, elapsed, server, verified, mismatches
    )


def run_load_static(
    backend: Any,
    methods: Sequence[str],
    *,
    clients: int = 4,
    requests_per_client: int = 50,
    seed: int = 7,
    config: GatewayConfig | None = None,
    verify: bool = True,
) -> dict[str, Any]:
    """Load-test a static backend (no live updates).

    ``backend`` is a :class:`~repro.serve.RankingService` or a
    :class:`~repro.serve.QueryEngine` over a detached shard store;
    verification (service backends only) replays the recorded traffic
    as direct calls at the single served version.
    """
    if clients < 1:
        raise GatewayError(f"clients must be >= 1, got {clients}")
    from repro.serve.batch import QueryEngine

    if isinstance(backend, RankingService):
        network = backend.index.network
        ids = list(network.paper_ids)
        times = network.publication_times
        year_span = (float(times.min()), float(times.max()))
    elif isinstance(backend, QueryEngine):
        snap = backend.sharded.snapshot()
        ids = [pid for shard in snap.iter_shards() for pid in shard.paper_ids]
        # Empty shards (sparse hash buckets, thin year ranges) carry
        # no times; they must not reach .min()/.max().
        shard_times = [
            float(t)
            for shard in snap.iter_shards()
            if shard.n_papers
            for t in (shard.times.min(), shard.times.max())
        ]
        if not shard_times:
            raise GatewayError("cannot load-test an empty shard store")
        year_span = (min(shard_times), max(shard_times))
    else:
        raise GatewayError(
            "backend must be a RankingService or QueryEngine, got "
            f"{type(backend).__name__}"
        )
    sample = ids[:: max(1, len(ids) // 64)]
    plans = _client_plans(
        methods, sample, year_span,
        clients=clients,
        requests_per_client=requests_per_client,
        seed=seed,
    )
    server = GatewayServer(backend, config=config or GatewayConfig(port=0))
    records, histogram, elapsed = _execute_run(server, plans)

    verified = mismatches = 0
    if verify and isinstance(backend, RankingService):
        verified, mismatches = _verify_records(
            records,
            lambda version: (
                backend if version == backend.version else None
            ),
        )
    return _report(
        records, histogram, elapsed, server, verified, mismatches
    )


# ----------------------------------------------------------------------
# Multi-worker run driver
# ----------------------------------------------------------------------
def _mp_report(
    records: list[dict[str, Any]],
    histogram: LatencyHistogram,
    elapsed: float,
    fleet: Mapping[str, Any] | None,
    workers: int,
    verified: int,
    mismatches: int,
) -> dict[str, Any]:
    """The multi-worker analogue of :func:`_report`.

    Client-side measures (latency, status counts) come from the
    recorded traffic exactly as in the single-process report; the
    server-side measures come from the supervisor's final fleet-wide
    metrics merge instead of one in-process server object.
    """
    status_counts: dict[str, int] = {}
    for record in records:
        key = str(record["status"])
        status_counts[key] = status_counts.get(key, 0) + 1
    errors_5xx = sum(
        count
        for status, count in status_counts.items()
        if int(status) >= 500
    )
    versions = sorted(
        {
            int(record["version"])
            for record in records
            if record["version"] is not None
        }
    )
    report = {
        "workers": workers,
        "requests": len(records),
        "elapsed_seconds": elapsed,
        "requests_per_second": (
            len(records) / elapsed if elapsed > 0 else 0.0
        ),
        "latency": histogram.snapshot(),
        "status_counts": status_counts,
        "errors_5xx": errors_5xx,
        "shed_429": 0,
        "shed_503": 0,
        "coalescing": {"mean_batch_size": 0.0},
        "updates_applied": 0,
        "worker_restarts": 0,
        "versions_observed": versions,
        "result_cache": None,
        "verified_responses": verified,
        "mismatched_responses": mismatches,
        "identical_rankings": mismatches == 0 and verified > 0,
    }
    if fleet is not None:
        report["shed_429"] = fleet["responses"]["shed_429"]
        report["shed_503"] = fleet["responses"]["shed_503"]
        report["coalescing"] = fleet["coalescing"]
        report["updates_applied"] = fleet["stream_updates"]["applied"]
        report["worker_restarts"] = fleet["workers"]["restarts"]
        report["fleet_latency"] = fleet["latency"]["overall"]
    return report


def run_load_multiworker(
    log: EventLog,
    methods: Sequence[str] = ("AR", "PR", "CC"),
    *,
    workers: int,
    clients: int = 8,
    requests_per_client: int = 25,
    seed: int = 7,
    batch_size: int = 64,
    bootstrap_events: int | None = None,
    shards: int = 1,
    partitioner: str = "hash",
    config: GatewayConfig | None = None,
    verify: bool = True,
    live_updates: bool = True,
    retries: int = 8,
) -> dict[str, Any]:
    """Load-test a pre-forked worker fleet over one shared store.

    The multi-worker counterpart of :func:`run_load_over_log`: a
    :class:`~repro.gateway.MultiWorkerGateway` serves the log's
    bootstrap from ``workers`` ``SO_REUSEPORT`` processes while the
    supervisor (the one writer) applies the remaining events as
    shared-memory generations.  Clients honour ``Retry-After`` on
    sheds and reconnect through worker restarts, so the driver also
    holds under chaos.  ``clients`` may be in the thousands — each is
    one asyncio connection, not a thread.  Verification replays a
    replica exactly as in the single-process driver: shared memory
    must not change a single response byte.
    """
    if clients < 1:
        raise GatewayError(f"clients must be >= 1, got {clients}")
    if requests_per_client < 1:
        raise GatewayError(
            f"requests_per_client must be >= 1, got {requests_per_client}"
        )
    from repro.gateway.workers import MultiWorkerGateway

    bootstrap = (
        max(1, len(log) // 2)
        if bootstrap_events is None
        else bootstrap_events
    )

    def make_ingestor() -> StreamIngestor:
        return StreamIngestor(
            log,
            methods,
            batch_size=batch_size,
            bootstrap_size=bootstrap,
            shards=shards,
            partitioner=partitioner,
        )

    ingestor = make_ingestor()
    ingestor.step()  # the bootstrap batch: version 0
    service = ingestor.service
    network = service.index.network
    times = network.publication_times
    year_span = (float(times.min()), float(times.max()))
    sample = list(network.paper_ids[:: max(1, network.n_papers // 64)])
    plans = _client_plans(
        methods, sample, year_span,
        clients=clients,
        requests_per_client=requests_per_client,
        seed=seed,
    )
    gateway = MultiWorkerGateway(
        service,
        workers=workers,
        config=config or GatewayConfig(port=0),
        ingestor=ingestor if live_updates else None,
    )
    records: list[dict[str, Any]] = []
    histogram = LatencyHistogram()
    gateway.start()
    try:
        gateway.start_supervision_thread()
        assert gateway.port is not None

        async def drive() -> float:
            started = time.perf_counter()
            await asyncio.gather(
                *(
                    _client(
                        gateway.config.host, gateway.port, plan,
                        records, histogram, retries=retries,
                    )
                    for plan in plans
                )
            )
            return time.perf_counter() - started

        elapsed = asyncio.run(drive())
    finally:
        fleet = gateway.stop()

    verified = mismatches = 0
    if verify:
        verified, mismatches = _verify_records(
            records, _ReplicaAtVersion(make_ingestor())
        )
    return _mp_report(
        records, histogram, elapsed, fleet, workers, verified,
        mismatches,
    )
