"""Live index updates under traffic: the gateway's write path.

The paper's premise — rank by *current* short-term impact — only holds
if the serving index tracks the citation stream while queries keep
flowing.  :class:`StreamUpdater` is the background task that does this:
it drives a :class:`~repro.stream.StreamIngestor` (the PR-4 replay
engine) one micro-batch at a time, each application wrapped in the
coalescer's batch lock via
:meth:`~repro.gateway.RequestCoalescer.exclusively`.

That single lock is the whole consistency story:

* while a batch of coalesced reads executes, the updater waits — no
  read ever observes a half-applied delta;
* while a micro-batch applies (extend + warm re-solve + shard sync +
  cache invalidation, all inside
  :meth:`~repro.serve.RankingService.update`), reads wait — and the new
  generation becomes visible as ONE
  :class:`~repro.serve.StoreSnapshot` swap, so the first read after
  the update sees the complete new version;
* between batches the updater yields (``interval`` seconds), which is
  where queued traffic drains.

Because the ingestor's replay is deterministic, a verification replica
replaying the same log with the same policy passes through
bit-identical index states — the load bench exploits this to check
every recorded gateway response against a direct service call at the
same version.
"""

from __future__ import annotations

import asyncio

from repro.chaos.points import chaos_point
from repro.errors import GatewayError
from repro.gateway.coalesce import RequestCoalescer
from repro.gateway.metrics import GatewayMetrics
from repro.obs.logging import get_logger
from repro.obs.trace import start_trace
from repro.serve.service import RankingService
from repro.stream.ingest import BatchReport, StreamIngestor

__all__ = ["StreamUpdater"]

_LOG = get_logger("gateway.updates")


class StreamUpdater:
    """Apply stream micro-batches to a live gateway's serving state.

    Parameters
    ----------
    ingestor:
        The replay engine to drive.  Its bootstrap batch must already
        be applied (the gateway serves from ``ingestor.service``), and
        that service must be the coalescer's backend — updating a
        *different* index than the one being served would be a silent
        split-brain, so the constructor refuses it.
    coalescer:
        The read path to serialise against.
    interval:
        Seconds to sleep between micro-batches (lets reads drain; 0
        yields to the event loop once per batch).
    max_batches:
        Stop after this many batches (``None`` = run the log dry).
    metrics:
        Optional metrics sink (counts applied updates).
    """

    def __init__(
        self,
        ingestor: StreamIngestor,
        coalescer: RequestCoalescer,
        *,
        interval: float = 0.01,
        max_batches: int | None = None,
        metrics: GatewayMetrics | None = None,
    ) -> None:
        backend = coalescer.backend
        if not isinstance(backend, RankingService):
            raise GatewayError(
                "live updates need a RankingService backend (a bare "
                "QueryEngine serves a detached store that cannot sync)"
            )
        if ingestor.service is not backend:
            raise GatewayError(
                "the updater's ingestor must drive the same "
                "RankingService the coalescer serves from"
            )
        if interval < 0:
            raise GatewayError(
                f"interval must be >= 0, got {interval}"
            )
        self._ingestor = ingestor
        self._coalescer = coalescer
        self._interval = float(interval)
        self._max_batches = max_batches
        self._metrics = metrics
        self._stopping = False
        self.batches_applied = 0
        self.versions_published: list[int] = []

    @property
    def exhausted(self) -> bool:
        """Whether the ingestor's log is fully consumed."""
        return self._ingestor.exhausted

    def stop(self) -> None:
        """Finish the in-flight batch, then return from :meth:`run`."""
        self._stopping = True

    def _step(self) -> BatchReport:
        """One micro-batch, already inside the coalescer lock.

        The fault point fires *here* — in the executor thread, lock
        held — because that is where a killed updater is most hostile:
        the next coalesced read must still see one untorn version.
        """
        chaos_point("gateway.update.step")
        return self._ingestor.step()

    async def run(self) -> int:
        """Apply micro-batches until the log (or the budget) runs out.

        Returns the number of batches applied by this call.  Intended
        to run as a background task next to the server; cancellation
        between batches is safe (the lock is never held across the
        sleep).
        """
        applied = 0
        while not self._ingestor.exhausted and not self._stopping:
            if (
                self._max_batches is not None
                and applied >= self._max_batches
            ):
                break
            # The trace opens *before* the executor handoff so the
            # ingest/delta/solver spans (run under this context's copy)
            # nest beneath one stream.update root per micro-batch.
            with start_trace("stream.update") as root:
                report = await self._coalescer.exclusively(self._step)
                if root is not None:
                    root.set(
                        version=report.version,
                        events=report.n_events,
                        batch=report.batch,
                    )
            applied += 1
            self.batches_applied += 1
            self.versions_published.append(report.version)
            if self._metrics is not None:
                self._metrics.note_update()
            _LOG.info(
                "stream update",
                extra={
                    "version": report.version,
                    "batch": report.batch,
                    "events": report.n_events,
                    "papers": report.n_papers,
                    "citations": report.n_citations,
                    "touched_shards": len(report.touched_shards),
                    "ms": round(report.elapsed_seconds * 1e3, 3),
                },
            )
            await asyncio.sleep(self._interval)
        return applied
