"""Pre-fork multi-worker serving: N gateways, one shared score store.

One asyncio process tops out at one core; the ROADMAP's "millions of
users" target needs the classic pre-fork shape.  This module supplies
it on top of the shared-memory store (:mod:`repro.serve.shm`):

* a **supervisor** process exports the materialised
  :class:`~repro.serve.StoreSnapshot` into shared memory, reserves the
  serving port, and forks N workers with ``multiprocessing``'s fork
  context (the generation lock, the armed chaos plan, and logging
  config all inherit);
* each **worker** attaches a :class:`~repro.serve.SharedStoreReader`,
  wraps it in a stock :class:`~repro.serve.QueryEngine`, and runs a
  :class:`~repro.gateway.GatewayServer` that binds the *same* port
  with ``SO_REUSEPORT`` — the kernel load-balances connections across
  workers, no userspace proxy.  A private control listener per worker
  answers the supervisor's metrics scrapes;
* the **streaming updater runs in exactly one process** (the
  supervisor): it steps the ingestor against its private service,
  publishes each new index version as a shared-memory generation, and
  every worker picks the generation up at its next batch boundary —
  the cross-process analogue of the single-process atomic snapshot
  swap, so responses remain bit-identical to a direct call at their
  reported version;
* the supervisor **restarts crashed workers** (a replacement forks
  within one supervision tick; the port stays bound by the reservation
  socket and the surviving siblings keep answering), propagates
  **graceful drain** (SIGTERM to each worker triggers the gateway's
  in-process drain; the supervisor then unlinks every shared segment),
  and **aggregates** ``/v1/metrics`` across workers by merging raw
  counter/bucket states — exact sums and exact fleet-wide quantiles,
  not averaged per-worker quantiles.

``repro serve-http --workers N`` is the CLI frontend;
``repro loadgen --workers N`` and the ``gateway_mp`` bench scenario
drive it under verified load.
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing
import os
import signal
import socket
import threading
import time
from dataclasses import replace
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Mapping, Sequence
from urllib.parse import parse_qs, urlsplit

from repro.chaos import points as chaos_points
from repro.chaos.faults import InjectedCrash
from repro.chaos.points import chaos_point
from repro.errors import GatewayError
from repro.gateway.metrics import GatewayMetrics
from repro.gateway.server import GatewayConfig, GatewayServer
from repro.obs.logging import (
    clear_worker_identity,
    get_logger,
    get_worker_identity,
    set_worker_identity,
)
from repro.obs.profile import (
    collapsed_stacks,
    merge_profile_states,
    render_profile,
    speedscope_document,
)
from repro.obs.registry import merge_family_states
from repro.obs.slo import DEFAULT_SLOS, SLOEngine
from repro.obs.tsdb import TimeSeriesStore
from repro.serve.batch import QueryEngine
from repro.serve.service import RankingService
from repro.serve.shard import ShardedScoreIndex, StoreSnapshot
from repro.serve.shm import (
    SharedStorePublisher,
    SharedStoreReader,
    new_session,
)
from repro.stream.ingest import StreamIngestor

__all__ = ["MultiWorkerGateway"]

_LOG = get_logger("gateway.workers")

#: Seconds between a worker's chaos-point heartbeats (also its drain
#: poll granularity).  The ``gateway.worker`` fault point fires here,
#: so a planned worker kill lands within ``invocation * _HEARTBEAT``
#: of worker start.
_HEARTBEAT = 0.003

#: How long the supervisor waits for a forked worker's ready report.
_READY_TIMEOUT = 30.0


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------
async def _worker_serve(
    session: str,
    lock: Any,
    config: GatewayConfig,
    index: int,
    conn: Any,
    jobs: int,
    supervisor_pid: int,
    stats_addr: tuple[str, int] | None,
) -> None:
    store = SharedStoreReader(session, lock)
    engine = QueryEngine(store, jobs=jobs)
    server = GatewayServer(engine, config=config)
    # Fleet wiring before the first request: public deep-observability
    # answers proxy to the supervisor's merged view, and every local
    # payload carries this worker's identity.
    server.worker_index = index
    server.fleet_stats_addr = stats_addr
    await server.start()
    control_port = await server.start_control(config.host)
    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, stop.set)
        except NotImplementedError:  # pragma: no cover - non-POSIX
            pass
    conn.send(
        {
            "worker": index,
            "pid": os.getpid(),
            "port": server.port,
            "control_port": control_port,
        }
    )
    conn.close()
    _LOG.info(
        "worker serving",
        extra={"worker": index, "port": server.port},
    )
    while not stop.is_set():
        # supervisor_pid was captured in the parent at fork time, so
        # this catches even a supervisor that died before we started.
        if os.getppid() != supervisor_pid:
            # Orphaned: the supervisor died without signalling us.
            # Drain and exit rather than serve forever unsupervised.
            _LOG.warning("supervisor gone, draining", extra={"worker": index})
            stop.set()
            break
        # The worker-kill fault point: an injected crash dies right
        # here, mid-flight, exactly like an external kill -9 — open
        # connections reset, no drain, no asyncio teardown.
        try:
            chaos_point("gateway.worker")
        except InjectedCrash:
            os._exit(137)
        try:
            await asyncio.wait_for(stop.wait(), timeout=_HEARTBEAT)
        except TimeoutError:
            pass
    _LOG.info("worker draining", extra={"worker": index})
    await server.stop()
    store.close()


def _worker_main(
    session: str,
    lock: Any,
    config: GatewayConfig,
    index: int,
    conn: Any,
    jobs: int,
    arm_chaos: bool,
    supervisor_pid: int,
    stats_addr: tuple[str, int] | None,
) -> None:
    # Overwrite the inherited "supervisor" identity first thing: every
    # log line and metric label from here on says which worker spoke.
    set_worker_identity(str(index))
    if not arm_chaos:
        # Replacement workers start clean: the fork image inherits the
        # supervisor's armed chaos plan, and without this a planned
        # worker kill would re-fire in every restart, forever.
        chaos_points._ARMED = None
    try:
        asyncio.run(
            _worker_serve(
                session,
                lock,
                config,
                index,
                conn,
                jobs,
                supervisor_pid,
                stats_addr,
            )
        )
    except InjectedCrash:
        # The simulated kill: no drain, no cleanup, nonzero exit —
        # the supervisor must notice and restart.
        os._exit(137)
    except KeyboardInterrupt:  # pragma: no cover - signal race at start
        pass


# ----------------------------------------------------------------------
# Supervisor
# ----------------------------------------------------------------------
class _WorkerSlot:
    __slots__ = ("index", "process", "port", "control_port", "restarts")

    def __init__(self, index: int) -> None:
        self.index = index
        self.process: Any = None
        self.port: int | None = None
        self.control_port: int | None = None
        self.restarts = 0


class _FleetStatsHandler(BaseHTTPRequestHandler):
    """The supervisor's merged-view endpoint handler.

    Workers proxy public ``/v1/profile``, ``/v1/slo``,
    ``/v1/metrics/history``, and ``/v1/trace`` requests here; the
    handler fans ``?scope=local`` scrapes out across the fleet's
    control ports and merges raw state — the same exact-sums discipline
    as the metrics merge, applied to profiler stack counts and trace
    rings.  Loopback-only and started before the first fork, so its
    address travels to workers as a plain argument.
    """

    protocol_version = "HTTP/1.1"

    def log_message(self, *args: Any) -> None:  # noqa: N802
        pass  # routed through our structured logger, not stderr

    def do_GET(self) -> None:  # noqa: N802
        gateway: "MultiWorkerGateway" = self.server.gateway  # type: ignore[attr-defined]
        split = urlsplit(self.path)
        params = parse_qs(split.query)
        status = 200
        content_type = "application/json"
        try:
            if split.path == "/v1/profile":
                status, payload, content_type = gateway.fleet_profile(
                    params
                )
            elif split.path == "/v1/slo":
                payload = gateway.fleet_slo()
            elif split.path == "/v1/metrics/history":
                payload = gateway.fleet_history(params)
            elif split.path == "/v1/trace":
                payload = gateway.aggregate_traces(
                    _int_param(params, "limit", 50)
                )
            else:
                status = 404
                payload = {
                    "error": {
                        "type": "GatewayError",
                        "detail": f"no such endpoint: {split.path}",
                    }
                }
        except Exception as error:  # pragma: no cover - merge breakage
            status, content_type = 500, "application/json"
            payload = {
                "error": {
                    "type": type(error).__name__,
                    "detail": str(error) or "internal error",
                }
            }
        body = (
            payload.encode("utf-8")
            if isinstance(payload, str)
            else json.dumps(payload).encode("utf-8")
        )
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)


def _int_param(
    params: Mapping[str, list[str]], name: str, default: int
) -> int:
    raw = params.get(name, [""])[-1]
    try:
        return max(0, int(raw)) if raw else default
    except ValueError:
        return default


def _float_param(
    params: Mapping[str, list[str]], name: str
) -> float | None:
    raw = params.get(name, [""])[-1]
    try:
        return float(raw) if raw else None
    except ValueError:
        return None


class MultiWorkerGateway:
    """A supervised fleet of SO_REUSEPORT gateway workers.

    Parameters
    ----------
    backend:
        A :class:`~repro.serve.RankingService`,
        :class:`~repro.serve.QueryEngine`, or
        :class:`~repro.serve.ShardedScoreIndex` — whatever it is, its
        current snapshot is published to shared memory and the workers
        serve *that*, not the backend object.
    workers:
        Fleet size (>= 1).
    config:
        Per-worker :class:`~repro.gateway.GatewayConfig`; ``port`` may
        be 0 (the supervisor resolves it once, pre-fork, by binding a
        reservation socket every worker then joins via
        ``SO_REUSEPORT``).  Admission/rate limits apply per worker.
    ingestor:
        Optional :class:`~repro.stream.StreamIngestor` whose service
        must be ``backend``: the supervisor replays its remaining
        events in micro-batches and publishes each version as a new
        shared generation — the one-writer rule of the protocol.
    jobs:
        Engine jobs per worker (keep 1: parallelism comes from the
        fleet, not from threads inside each worker).

    Lifecycle: :meth:`start` forks the fleet; then either
    :meth:`serve_forever` (CLI foreground: installs SIGTERM/SIGINT
    handlers, supervises, drains on signal) or
    :meth:`start_supervision_thread` (test/bench drivers that run load
    in the same process); finally :meth:`stop` (SIGTERM + join every
    worker, then unlink all shared segments).
    """

    def __init__(
        self,
        backend: Any,
        *,
        workers: int,
        config: GatewayConfig | None = None,
        ingestor: StreamIngestor | None = None,
        jobs: int = 1,
        max_restarts: int = 16,
    ) -> None:
        if workers < 1:
            raise GatewayError(f"workers must be >= 1, got {workers}")
        if not hasattr(socket, "SO_REUSEPORT"):  # pragma: no cover
            raise GatewayError(
                "multi-worker serving needs SO_REUSEPORT "
                "(Linux/BSD only)"
            )
        self.config = config or GatewayConfig(port=0)
        self.n_workers = int(workers)
        self.jobs = int(jobs)
        self.max_restarts = int(max_restarts)
        self._backend = backend
        self._service: RankingService | None = None
        if isinstance(backend, RankingService):
            self._service = backend
        if ingestor is not None:
            if self._service is None or ingestor.service is not self._service:
                raise GatewayError(
                    "the ingestor's service must be the backend "
                    "RankingService (one writer, its snapshot is what "
                    "gets published)"
                )
        self._ingestor = ingestor
        try:
            self._ctx = multiprocessing.get_context("fork")
        except ValueError as exc:  # pragma: no cover - non-POSIX
            raise GatewayError(
                "multi-worker serving needs the fork start method"
            ) from exc
        self._publisher: SharedStorePublisher | None = None
        self._reservation: socket.socket | None = None
        self._slots: list[_WorkerSlot] = []
        self._stopping = False
        self._stop_requested = False
        self._last_update = 0.0
        self._last_history = 0.0
        self._stats_server: ThreadingHTTPServer | None = None
        self._stats_thread: threading.Thread | None = None
        self.stats_addr: tuple[str, int] | None = None
        self._previous_identity: tuple[str, int] | None = None
        #: Fleet history and SLOs live in the supervisor: one store
        #: scraping the *merged* per-worker registries (exact summed
        #: series), one engine evaluating objectives over it.  Workers
        #: run no history scraper of their own (``history_interval=0``
        #: in the worker config) — fleet truth has one owner.
        self.tsdb = TimeSeriesStore(
            self._fleet_families,
            capacity=self.config.history_capacity,
            interval=0.0,
        )
        self.slo_engine = SLOEngine(
            self.tsdb, slos=self.config.slos or DEFAULT_SLOS
        )
        self.port: int | None = None
        self.session: str | None = None
        self.updates_applied = 0
        self.restarts = 0
        self.last_metrics: dict[str, Any] | None = None

    # ------------------------------------------------------------------
    # Startup
    # ------------------------------------------------------------------
    def _current_snapshot(self) -> StoreSnapshot:
        backend = self._backend
        if isinstance(backend, RankingService):
            return backend.sharded.snapshot()
        if isinstance(backend, QueryEngine):
            return backend.sharded.snapshot()
        if isinstance(backend, ShardedScoreIndex):
            return backend.snapshot()
        raise GatewayError(
            "backend must be a RankingService, QueryEngine, or "
            f"ShardedScoreIndex, got {type(backend).__name__}"
        )

    def _reserve_port(self) -> int:
        """Bind (NOT listen) the serving address with ``SO_REUSEPORT``.

        Resolves port 0 to a concrete port *before* forking, and keeps
        the port owned by this uid for the whole session: a bound,
        non-listening TCP socket never receives connections, but it
        keeps the address from being claimed by anything that does not
        also set ``SO_REUSEPORT`` — so worker crashes never lose the
        port.
        """
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        sock.bind((self.config.host, self.config.port))
        self._reservation = sock
        return int(sock.getsockname()[1])

    def _start_stats_server(self) -> None:
        """Bind the loopback fleet-stats listener, pre-fork."""
        server = ThreadingHTTPServer(
            ("127.0.0.1", 0), _FleetStatsHandler
        )
        server.daemon_threads = True
        server.gateway = self  # type: ignore[attr-defined]
        self._stats_server = server
        self.stats_addr = (
            "127.0.0.1",
            int(server.server_address[1]),
        )
        thread = threading.Thread(
            target=server.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="repro-gateway-fleet-stats",
            daemon=True,
        )
        thread.start()
        self._stats_thread = thread

    def start(self) -> None:
        """Publish generation 0, reserve the port, fork the fleet."""
        if self._slots:
            raise GatewayError("multi-worker gateway already started")
        # Remember the pre-fleet identity so an embedded fleet (tests,
        # docs, the bench harness) does not leave this whole process
        # labelled "supervisor" after stop().
        self._previous_identity = get_worker_identity()
        set_worker_identity("supervisor")
        self.session = new_session()
        lock = self._ctx.Lock()
        self._lock = lock
        self._publisher = SharedStorePublisher(self.session, lock=lock)
        self._publisher.publish(self._current_snapshot())
        resolved = self._reserve_port()
        self.port = resolved
        # The fleet-stats listener starts *before* the first fork so
        # its resolved address rides into _worker_main as an argument
        # (the ready pipe is one-way, worker -> supervisor).
        self._start_stats_server()
        self._worker_config = replace(
            self.config,
            port=resolved,
            reuse_port=True,
            history_interval=0.0,
        )
        self._slots = [_WorkerSlot(i) for i in range(self.n_workers)]
        for slot in self._slots:
            self._spawn(slot, arm_chaos=True)
        self._last_update = time.monotonic()
        _LOG.info(
            "fleet serving",
            extra={
                "workers": self.n_workers,
                "port": resolved,
                "session": self.session,
            },
        )

    def _spawn(self, slot: _WorkerSlot, *, arm_chaos: bool) -> None:
        assert self.session is not None
        parent_conn, child_conn = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=_worker_main,
            args=(
                self.session,
                self._lock,
                self._worker_config,
                slot.index,
                child_conn,
                self.jobs,
                arm_chaos,
                os.getpid(),
                self.stats_addr,
            ),
            name=f"repro-gateway-worker-{slot.index}",
        )
        process.start()
        child_conn.close()
        if not parent_conn.poll(_READY_TIMEOUT):
            process.terminate()
            raise GatewayError(
                f"worker {slot.index} did not report ready within "
                f"{_READY_TIMEOUT}s"
            )
        try:
            ready = parent_conn.recv()
        except EOFError as exc:
            raise GatewayError(
                f"worker {slot.index} died before reporting ready"
            ) from exc
        finally:
            parent_conn.close()
        slot.process = process
        slot.port = int(ready["port"])
        slot.control_port = int(ready["control_port"])

    # ------------------------------------------------------------------
    # Supervision
    # ------------------------------------------------------------------
    def supervise_once(self) -> None:
        """One supervision tick: restart the dead, step the stream.

        Crashed workers are replaced immediately (replacements start
        with a clean chaos state — an injected kill fires once, like a
        real one).  When an ingestor is attached and due, exactly one
        micro-batch is applied here and published as a new generation.
        """
        if self._stopping:
            return
        for slot in self._slots:
            if slot.process is not None and not slot.process.is_alive():
                exitcode = slot.process.exitcode
                self.restarts += 1
                slot.restarts += 1
                if self.restarts > self.max_restarts:
                    raise GatewayError(
                        f"worker {slot.index} crashed (exit {exitcode}) "
                        f"and the restart budget ({self.max_restarts}) "
                        "is spent"
                    )
                _LOG.warning(
                    "worker crashed; restarting",
                    extra={
                        "worker": slot.index,
                        "exitcode": exitcode,
                        "restarts": self.restarts,
                    },
                )
                self._spawn(slot, arm_chaos=False)
        if (
            self._ingestor is not None
            and self._publisher is not None
            and not self._ingestor.exhausted
        ):
            now = time.monotonic()
            if now - self._last_update >= self.config.update_interval:
                self._ingestor.step()
                assert self._service is not None
                self._publisher.publish(self._service.sharded.snapshot())
                self.updates_applied += 1
                self._last_update = now
        # The fleet history heartbeat: one merged scrape per interval,
        # taken here (the supervision tick) so the store needs no
        # thread of its own and never races a restart fork.
        if self.config.history_interval > 0:
            now = time.monotonic()
            if (
                now - self._last_history
                >= self.config.history_interval
            ):
                self._last_history = now
                try:
                    self.tsdb.scrape_once()
                except Exception:  # pragma: no cover - torn scrape
                    pass

    def start_supervision_thread(self, interval: float = 0.005) -> Any:
        """Supervise from a daemon thread (in-process load drivers).

        The CLI foreground path uses :meth:`serve_forever` instead —
        a single-threaded supervisor makes restart forks trivially
        fork-safe.  Drivers that run asyncio load in the main thread
        (loadgen, the chaos harness) use this; the thread owns all
        forking and all board mutation, so the only fork-at-risk state
        is its own, never the driver's.
        """
        import threading

        def loop() -> None:
            while not self._stopping:
                self.supervise_once()
                time.sleep(interval)

        thread = threading.Thread(
            target=loop, name="repro-gateway-supervisor", daemon=True
        )
        thread.start()
        self._supervision_thread = thread
        return thread

    def serve_forever(
        self, for_seconds: float | None = None, interval: float = 0.02
    ) -> None:
        """Foreground supervision until SIGTERM/SIGINT (or a deadline)."""

        def request_stop(signum: int, frame: Any) -> None:
            self._stop_requested = True

        previous = {
            signum: signal.signal(signum, request_stop)
            for signum in (signal.SIGTERM, signal.SIGINT)
        }
        deadline = (
            None
            if for_seconds is None
            else time.monotonic() + for_seconds
        )
        try:
            while not self._stop_requested:
                if deadline is not None and time.monotonic() >= deadline:
                    break
                self.supervise_once()
                time.sleep(interval)
        finally:
            for signum, handler in previous.items():
                signal.signal(signum, handler)
            self.stop()

    # ------------------------------------------------------------------
    # Metrics aggregation
    # ------------------------------------------------------------------
    def _scrape_json(
        self, slot: _WorkerSlot, target: str
    ) -> dict[str, Any] | None:
        """GET ``target`` from one worker's control port, parsed.

        Every fan-out target carries ``scope=local``: the control
        listener shares the public handler, and without it the worker
        would proxy the request straight back to the supervisor.
        """
        if slot.control_port is None:
            return None
        try:
            with socket.create_connection(
                (self.config.host, slot.control_port), timeout=5.0
            ) as sock:
                sock.sendall(
                    f"GET {target} HTTP/1.1\r\n"
                    "Host: control\r\nConnection: close\r\n\r\n".encode(
                        "latin-1"
                    )
                )
                chunks = []
                while True:
                    chunk = sock.recv(65536)
                    if not chunk:
                        break
                    chunks.append(chunk)
        except OSError:
            return None
        raw = b"".join(chunks)
        head, _, body = raw.partition(b"\r\n\r\n")
        if not head.startswith(b"HTTP/1.1 200"):
            return None
        try:
            return json.loads(body)
        except json.JSONDecodeError:  # pragma: no cover - torn scrape
            return None

    def _scrape_state(self, slot: _WorkerSlot) -> dict[str, Any] | None:
        return self._scrape_json(
            slot, "/v1/metrics?format=state&scope=local"
        )

    def aggregate_metrics(self) -> dict[str, Any]:
        """One fleet-wide ``/v1/metrics`` document.

        Scrapes every live worker's raw state over its control port
        and merges: counters are exact sums; latency quantiles are
        recovered from the *summed* bucket counts (identical fixed
        bounds in every process), so the fleet p99 is exact — not an
        average of per-worker p99s.
        """
        states: list[Mapping[str, Any]] = []
        admissions: list[Mapping[str, Any]] = []
        per_worker: list[dict[str, Any]] = []
        for slot in self._slots:
            scraped = self._scrape_state(slot)
            alive = (
                slot.process is not None and slot.process.is_alive()
            )
            per_worker.append(
                {
                    "worker": slot.index,
                    "alive": alive,
                    "restarts": slot.restarts,
                    "scraped": scraped is not None,
                }
            )
            if scraped is not None:
                states.append(scraped["metrics"])
                admissions.append(scraped["admission"])
        document = GatewayMetrics.merge_states(states).render()
        document["stream_updates"] = {"applied": self.updates_applied}
        document["admission"] = {
            "active": sum(int(a["active"]) for a in admissions),
            "peak_active": max(
                (int(a["peak_active"]) for a in admissions), default=0
            ),
            "admitted_total": sum(
                int(a["admitted_total"]) for a in admissions
            ),
            "draining": any(bool(a["draining"]) for a in admissions),
        }
        document["workers"] = {
            "count": self.n_workers,
            "restarts": self.restarts,
            "fleet": per_worker,
        }
        return document

    # ------------------------------------------------------------------
    # Fleet deep observability (profile, SLO, history, traces)
    # ------------------------------------------------------------------
    def _fleet_families(self) -> list[Any]:
        """The fleet TSDB's collector: merged per-worker registries.

        Scrapes each live worker's unlabelled family state and sums
        matching series — so every point in fleet history (and every
        burn rate the SLO engine derives from it) is an exact
        fleet-wide total, never one worker's sample.
        """
        states = []
        for slot in self._slots:
            scraped = self._scrape_state(slot)
            if scraped is not None and scraped.get("registry"):
                states.append(scraped["registry"])
        return merge_family_states(states)

    def aggregate_profile(self) -> dict[str, Any]:
        """Raw fleet profile: summed stack counts plus per-worker meta.

        A restart does not zero the fleet view: samples a dead worker
        contributed are gone with its process, but the replacement's
        samples merge in under the same keys — the chaos harness
        asserts the merged profile stays well-formed and growing across
        a kill.
        """
        states: list[Mapping[str, Any]] = []
        per_worker: list[dict[str, Any]] = []
        for slot in self._slots:
            scraped = self._scrape_json(
                slot, "/v1/profile?format=state&scope=local"
            )
            entry = {
                "worker": slot.index,
                "scraped": scraped is not None,
                "enabled": bool(scraped and scraped.get("enabled")),
                "samples": 0,
            }
            if scraped and scraped.get("profile"):
                state = scraped["profile"]
                entry["samples"] = int(state.get("samples_total", 0))
                states.append(state)
            per_worker.append(entry)
        merged = merge_profile_states(states)
        return {
            "enabled": any(w["enabled"] for w in per_worker),
            "profile": merged if states else None,
            "workers": per_worker,
        }

    def fleet_profile(
        self, params: Mapping[str, list[str]]
    ) -> tuple[int, dict[str, Any] | str, str]:
        """``/v1/profile`` with fleet-merged samples, format-selected."""
        aggregate = self.aggregate_profile()
        state = aggregate["profile"]
        wants = params.get("format", ["json"])[-1].lower()
        if wants == "state":
            return 200, aggregate, "application/json"
        if state is None:
            return 200, {
                "enabled": aggregate["enabled"],
                "detail": "no worker returned profile samples "
                "(start the fleet with --profile)",
                "workers": aggregate["workers"],
            }, "application/json"
        if wants == "collapsed":
            return 200, collapsed_stacks(state), (
                "text/plain; charset=utf-8"
            )
        if wants == "speedscope":
            return 200, speedscope_document(state), "application/json"
        document = render_profile(
            state, top=_int_param(params, "top", 50) or 50
        )
        document["workers"] = aggregate["workers"]
        return 200, document, "application/json"

    def fleet_slo(self) -> dict[str, Any]:
        """``/v1/slo`` over fleet history (scrapes a fresh point)."""
        self._last_history = time.monotonic()
        return self.slo_engine.evaluate(scrape=True)

    def fleet_history(
        self, params: Mapping[str, list[str]]
    ) -> dict[str, Any]:
        """``/v1/metrics/history`` from the supervisor's fleet store."""
        if self.tsdb.scrapes_total == 0:
            self._last_history = time.monotonic()
            self.tsdb.scrape_once()
        limit = _int_param(params, "limit", 0)
        return self.tsdb.history_payload(
            family=params.get("family", [""])[-1] or None,
            since=_float_param(params, "since"),
            limit=limit or None,
        )

    def aggregate_traces(self, limit: int = 50) -> dict[str, Any]:
        """``/v1/trace`` across the fleet, newest first.

        Each worker tags its trees with its index before they leave the
        process, so a merged trace still says who ran it.
        """
        enabled = False
        recorded_total = 0
        traces: list[dict[str, Any]] = []
        for slot in self._slots:
            scraped = self._scrape_json(
                slot, f"/v1/trace?limit={limit}&scope=local"
            )
            if scraped is None:
                continue
            enabled = enabled or bool(scraped.get("enabled"))
            recorded_total += int(scraped.get("recorded_total", 0))
            traces.extend(scraped.get("traces", ()))
        traces.sort(
            key=lambda t: t.get("start_unix", 0.0), reverse=True
        )
        return {
            "enabled": enabled,
            "recorded_total": recorded_total,
            "traces": traces[:limit] if limit else traces,
            "workers": self.n_workers,
        }

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    def stop(self, *, aggregate: bool = True) -> dict[str, Any] | None:
        """Drain the fleet and unlink every shared segment.

        Order: scrape final metrics (workers must still be alive),
        SIGTERM every worker (each runs its gateway's graceful drain),
        join with a bounded wait, SIGKILL stragglers, then destroy the
        generation board — which unlinks the board and every remaining
        generation segment, leaving ``/dev/shm`` clean.
        """
        if self._stopping:
            return self.last_metrics
        self._stopping = True
        if aggregate and self._slots:
            try:
                self.last_metrics = self.aggregate_metrics()
            except Exception:  # pragma: no cover - best-effort scrape
                self.last_metrics = None
        for slot in self._slots:
            if slot.process is not None and slot.process.is_alive():
                slot.process.terminate()  # SIGTERM -> graceful drain
        deadline = time.monotonic() + self.config.drain_seconds + 5.0
        for slot in self._slots:
            if slot.process is None:
                continue
            remaining = max(0.1, deadline - time.monotonic())
            slot.process.join(timeout=remaining)
            if slot.process.is_alive():  # pragma: no cover - hung drain
                slot.process.kill()
                slot.process.join(timeout=5.0)
        self._slots = []
        if self._stats_server is not None:
            self._stats_server.shutdown()
            self._stats_server.server_close()
            self._stats_server = None
            if self._stats_thread is not None:
                self._stats_thread.join(timeout=5.0)
                self._stats_thread = None
        if self._reservation is not None:
            self._reservation.close()
            self._reservation = None
        if self._publisher is not None:
            self._publisher.close()
            self._publisher = None
        _LOG.info(
            "fleet drained and stopped",
            extra={"restarts": self.restarts, "session": self.session},
        )
        # The final supervisor log line above still carries the
        # "supervisor" identity; only now does the process revert to
        # whatever it was before the fleet existed.
        if self._previous_identity is None:
            clear_worker_identity()
        else:
            set_worker_identity(*self._previous_identity)
        return self.last_metrics

    def __enter__(self) -> "MultiWorkerGateway":
        self.start()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.stop()


def worker_ports(gateway: MultiWorkerGateway) -> Sequence[int]:
    """The per-worker serving ports (all equal — SO_REUSEPORT group)."""
    return [
        slot.port
        for slot in gateway._slots
        if slot.port is not None
    ]
