"""repro.bench — the machine-readable benchmark harness.

``repro bench --scenario <name>`` (or ``python benchmarks/harness.py``)
runs a registered scenario with warm-up + repeat timing and writes a
self-describing ``BENCH_<scenario>.json`` — wall times, task counts,
speedup vs serial, dataset dimensions, machine context — so the
repository's performance trajectory is tracked by artifacts rather than
prose.

* :func:`run_scenario` / :class:`BenchResult` — run and serialise;
* :func:`time_callable` — the shared warm-up + repeats timer;
* :data:`~repro.bench.scenarios.SCENARIOS` — the registry
  (``figure4``, ``tuning``, ``serve_delta``, ``serve_batch``,
  ``split``, ``operator``);
* :func:`scenario` — decorator for registering new scenarios;
* :func:`compare_directories` / ``repro bench-diff`` — the benchmark
  regression gate CI runs between a PR and its merge-base.
"""

from repro.bench.harness import (
    SCHEMA_VERSION,
    BenchConfig,
    BenchResult,
    TimingStats,
    list_scenarios,
    run_scenario,
    scenario_help,
    time_callable,
    write_result,
)
from repro.bench.regression import (
    RegressionReport,
    RegressionRow,
    compare_directories,
    compare_results,
    load_bench_results,
)
from repro.bench.scenarios import SCENARIOS, ScenarioSpec, scenario

__all__ = [
    "SCHEMA_VERSION",
    "BenchConfig",
    "BenchResult",
    "TimingStats",
    "SCENARIOS",
    "ScenarioSpec",
    "scenario",
    "list_scenarios",
    "run_scenario",
    "scenario_help",
    "time_callable",
    "write_result",
    "RegressionReport",
    "RegressionRow",
    "compare_directories",
    "compare_results",
    "load_bench_results",
]
