"""Benchmark-regression comparison: two ``BENCH_*.json`` trees, one verdict.

The CI ``bench-regression`` job runs the smoke bench scenarios twice —
once on the pull request's head, once on its merge-base — and feeds the
two artifact directories to :func:`compare_directories` (CLI:
``repro bench-diff BASE_DIR HEAD_DIR``).  A scenario **fails** the gate
when

* its wall time grew beyond the tolerance
  (``head > tolerance * base``, default 1.5x — generous enough for
  shared-runner noise, tight enough to catch real hot-path
  regressions), or
* its head payload reports ``identical_rankings: false`` — a perf win
  that changes results is not a win.

Scenarios present on only one side are reported (``new`` /
``removed``) but never fail the gate: every PR that adds a scenario
would otherwise break itself.  Runs whose configurations differ
(different smoke flag, size, jobs, or repeats) are flagged
``config-changed`` and their times not compared — cross-configuration
numbers are noise, the same rule the bench JSON schema enforces by
recording its config.

The wall time compared is the top-level ``elapsed_seconds`` (the whole
scenario run), the one field every scenario emits regardless of its
payload shape.
"""

from __future__ import annotations

import glob
import json
import os
from dataclasses import dataclass
from typing import Any, Mapping

from repro.errors import ConfigurationError, DataFormatError

__all__ = [
    "RegressionRow",
    "RegressionReport",
    "load_bench_results",
    "compare_directories",
    "compare_results",
]

#: Config fields that must agree for a time comparison to mean anything.
_COMPARABLE_CONFIG_FIELDS = (
    "jobs", "size", "repeats", "smoke", "seed", "shards",
)


def _configs_comparable(
    base_config: Mapping[str, Any], head_config: Mapping[str, Any]
) -> bool:
    """Whether two run configurations measured the same workload.

    A field absent on one side (an older build that predates the
    field, e.g. ``shards``) does not make runs incomparable — only two
    *present, differing* values do.  Otherwise every PR that adds a
    config field would mark its own whole comparison config-changed.
    """
    for field in _COMPARABLE_CONFIG_FIELDS:
        if field not in base_config or field not in head_config:
            continue
        if base_config[field] != head_config[field]:
            return False
    return True


@dataclass(frozen=True)
class RegressionRow:
    """One scenario's verdict.

    Attributes
    ----------
    scenario:
        Scenario name (``figure4``, ``serve_batch``, ...).
    base_seconds, head_seconds:
        ``elapsed_seconds`` on each side (``None`` when absent).
    ratio:
        ``head / base`` (``None`` when either side is absent or the
        configurations differ).
    identical_ok:
        ``False`` iff the head payload reports
        ``identical_rankings: false``.
    status:
        ``ok`` | ``regression`` | ``broken`` | ``new`` | ``removed`` |
        ``config-changed``.
    latency:
        The head payload's latency quantiles (``p50_ms``/``p95_ms``/
        ``p99_ms``), when the scenario reports them (the serving
        scenarios do; offline grid scenarios do not) — rendered as an
        extra column so tail-latency movement is visible in the PR
        summary even while total elapsed time stays inside tolerance.
    """

    scenario: str
    base_seconds: float | None
    head_seconds: float | None
    ratio: float | None
    identical_ok: bool
    status: str
    latency: Mapping[str, float] | None = None

    def latency_cell(self) -> str:
        """``p50/p95/p99`` in ms, or ``-`` when not reported."""
        if not self.latency:
            return "-"
        try:
            return "/".join(
                f"{float(self.latency[key]):.1f}"
                for key in ("p50_ms", "p95_ms", "p99_ms")
            )
        except (KeyError, TypeError, ValueError):
            return "-"

    @property
    def failed(self) -> bool:
        """Whether this row fails the gate."""
        return self.status in ("regression", "broken")


@dataclass(frozen=True)
class RegressionReport:
    """The full comparison, ready to print or post to a job summary."""

    tolerance: float
    rows: tuple[RegressionRow, ...]

    @property
    def failures(self) -> tuple[RegressionRow, ...]:
        """Rows that fail the gate."""
        return tuple(row for row in self.rows if row.failed)

    @property
    def ok(self) -> bool:
        """Whether the gate passes."""
        return not self.failures

    def to_markdown(self) -> str:
        """A GitHub-flavoured markdown table (for ``$GITHUB_STEP_SUMMARY``)."""
        lines = [
            "## Benchmark regression gate "
            + ("✅ pass" if self.ok else "❌ FAIL"),
            "",
            f"Tolerance: fail when head > {self.tolerance:g}x base "
            "(`elapsed_seconds`), or when `identical_rankings` is "
            "false on head.",
            "",
            "| scenario | base (s) | head (s) | ratio | "
            "p50/p95/p99 (ms) | rankings | status |",
            "| --- | ---: | ---: | ---: | ---: | :---: | :---: |",
        ]
        for row in self.rows:
            lines.append(
                "| {scenario} | {base} | {head} | {ratio} | {latency} "
                "| {ident} | {status} |".format(
                    scenario=row.scenario,
                    base=(
                        f"{row.base_seconds:.3f}"
                        if row.base_seconds is not None
                        else "—"
                    ),
                    head=(
                        f"{row.head_seconds:.3f}"
                        if row.head_seconds is not None
                        else "—"
                    ),
                    ratio=(
                        f"{row.ratio:.2f}x"
                        if row.ratio is not None
                        else "—"
                    ),
                    latency=row.latency_cell(),
                    ident="ok" if row.identical_ok else "**BROKEN**",
                    status=(
                        f"**{row.status}**"
                        if row.failed
                        else row.status
                    ),
                )
            )
        return "\n".join(lines) + "\n"


def load_bench_results(directory: str) -> dict[str, dict[str, Any]]:
    """Read every ``BENCH_*.json`` in ``directory``, keyed by scenario.

    An empty or missing directory yields an empty mapping — the CI gate
    treats a merge-base that predates the bench harness as "everything
    is new".
    """
    results: dict[str, dict[str, Any]] = {}
    if not os.path.isdir(directory):
        return results
    for path in sorted(glob.glob(os.path.join(directory, "BENCH_*.json"))):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except json.JSONDecodeError as error:
            raise DataFormatError(
                f"{path}: invalid JSON ({error})"
            ) from None
        scenario = document.get("scenario")
        if not isinstance(scenario, str) or "elapsed_seconds" not in document:
            raise DataFormatError(
                f"{path}: not a bench result (missing scenario/"
                "elapsed_seconds)"
            )
        results[scenario] = document
    return results


def compare_results(
    base: Mapping[str, Mapping[str, Any]],
    head: Mapping[str, Mapping[str, Any]],
    *,
    tolerance: float = 1.5,
) -> RegressionReport:
    """Compare two result mappings (scenario -> bench document)."""
    if tolerance <= 1.0:
        raise ConfigurationError(
            f"tolerance must be > 1.0, got {tolerance}"
        )
    rows: list[RegressionRow] = []
    for scenario in sorted(set(base) | set(head)):
        base_doc = base.get(scenario)
        head_doc = head.get(scenario)
        if head_doc is None:
            rows.append(
                RegressionRow(
                    scenario=scenario,
                    base_seconds=float(base_doc["elapsed_seconds"]),
                    head_seconds=None,
                    ratio=None,
                    identical_ok=True,
                    status="removed",
                )
            )
            continue
        head_seconds = float(head_doc["elapsed_seconds"])
        identical = head_doc.get("payload", {}).get("identical_rankings")
        identical_ok = identical is not False
        raw_latency = head_doc.get("payload", {}).get("latency")
        latency = raw_latency if isinstance(raw_latency, dict) else None
        if base_doc is None:
            rows.append(
                RegressionRow(
                    scenario=scenario,
                    base_seconds=None,
                    head_seconds=head_seconds,
                    ratio=None,
                    identical_ok=identical_ok,
                    status="broken" if not identical_ok else "new",
                    latency=latency,
                )
            )
            continue
        base_seconds = float(base_doc["elapsed_seconds"])
        comparable = _configs_comparable(
            base_doc.get("config", {}), head_doc.get("config", {})
        )
        if not identical_ok:
            status = "broken"
            ratio = head_seconds / base_seconds if comparable else None
        elif not comparable:
            status = "config-changed"
            ratio = None
        else:
            ratio = head_seconds / base_seconds
            status = "regression" if ratio > tolerance else "ok"
        rows.append(
            RegressionRow(
                scenario=scenario,
                base_seconds=base_seconds,
                head_seconds=head_seconds,
                ratio=ratio,
                identical_ok=identical_ok,
                status=status,
                latency=latency,
            )
        )
    return RegressionReport(tolerance=float(tolerance), rows=tuple(rows))


def compare_directories(
    base_dir: str,
    head_dir: str,
    *,
    tolerance: float = 1.5,
) -> RegressionReport:
    """Compare the ``BENCH_*.json`` artifacts of two directories."""
    return compare_results(
        load_bench_results(base_dir),
        load_bench_results(head_dir),
        tolerance=tolerance,
    )
