"""The machine-readable benchmark harness.

Every performance claim in this repository flows through one pipeline:
a *scenario* (a registered callable that exercises a workload and
returns a payload of measurements) is run under a :class:`BenchConfig`
(jobs, dataset size, warm-up and repeat counts) and the result is
written as ``BENCH_<scenario>.json`` — one self-describing file per
scenario, so the perf trajectory can be tracked across PRs by diffing
artifacts instead of re-reading prose.

Entry points
------------
* :func:`run_scenario` — run one registered scenario, return a
  :class:`BenchResult`; the CLI (``repro bench``) and the standalone
  ``benchmarks/harness.py`` wrapper both call this.
* :func:`time_callable` — warm-up + repeat wall-clock timing used by
  the scenarios themselves.
* :func:`write_result` / :meth:`BenchResult.write` — JSON emission.

The JSON schema (``schema_version`` 1) always contains: the scenario
name, the configuration it ran under (jobs, size, repeats, warm-up,
seed, smoke), machine context (cpu count, python/numpy versions), an
ISO-8601 UTC timestamp, and the scenario's payload — which for
parallel scenarios includes serial and parallel wall times, the
speedup, the task count, and the dataset dimensions.
"""

from __future__ import annotations

import json
import os
import platform
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "SCHEMA_VERSION",
    "BenchConfig",
    "TimingStats",
    "BenchResult",
    "time_callable",
    "run_scenario",
    "write_result",
    "list_scenarios",
    "scenario_help",
]

SCHEMA_VERSION = 1


@dataclass(frozen=True)
class BenchConfig:
    """Everything a scenario needs to know about how to run.

    Attributes
    ----------
    scenario:
        Registered scenario name (``repro bench --list`` enumerates).
    jobs:
        Worker processes for the parallel half of A/B scenarios.
    size:
        Synthetic dataset scale (``tiny``/``small``/``medium``/
        ``large``); scenarios pass it to
        :func:`repro.synth.profiles.generate_dataset`.
    repeats:
        Timed repetitions per measured callable (the JSON records
        every wall time, plus best and mean).
    warmup:
        Untimed runs before measuring, to populate caches and page in
        code.
    smoke:
        Shrink the workload to CI scale (fewer ratios / smaller grids);
        each scenario documents its smoke cut.
    seed:
        Generator seed for the synthetic corpora — fixed by default so
        two runs of the same build measure the same work.
    shards:
        Partition count for the sharded-serving scenarios
        (``serve_batch``); ignored by the others.
    """

    scenario: str
    jobs: int = 1
    size: str = "tiny"
    repeats: int = 1
    warmup: int = 0
    smoke: bool = False
    seed: int = 7
    shards: int = 2


@dataclass(frozen=True)
class TimingStats:
    """Wall-clock statistics of one measured callable."""

    wall_times: tuple[float, ...]
    warmup: int

    @property
    def best(self) -> float:
        return min(self.wall_times)

    @property
    def mean(self) -> float:
        return sum(self.wall_times) / len(self.wall_times)

    def as_dict(self) -> dict[str, Any]:
        return {
            "wall_times_seconds": list(self.wall_times),
            "best_seconds": self.best,
            "mean_seconds": self.mean,
            "warmup_runs": self.warmup,
            "repeats": len(self.wall_times),
        }


def time_callable(
    fn: Callable[[], Any],
    *,
    warmup: int = 0,
    repeats: int = 1,
) -> tuple[TimingStats, Any]:
    """Run ``fn`` ``warmup`` untimed + ``repeats`` timed times.

    Returns the timing statistics and the *last* timed return value
    (scenarios use it to verify the measured work produced the right
    answer — a benchmark that computes garbage fast is not a result).
    """
    if repeats < 1:
        raise ConfigurationError(f"repeats must be >= 1, got {repeats}")
    if warmup < 0:
        raise ConfigurationError(f"warmup must be >= 0, got {warmup}")
    for _ in range(warmup):
        fn()
    walls: list[float] = []
    result: Any = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn()
        walls.append(time.perf_counter() - started)
    return TimingStats(wall_times=tuple(walls), warmup=warmup), result


@dataclass(frozen=True)
class BenchResult:
    """One scenario run, ready to serialise.

    ``payload`` is the scenario's own measurement dictionary; the
    surrounding metadata (config, machine, timestamp) is added by
    :meth:`as_dict` so every ``BENCH_*.json`` is self-describing.
    """

    config: BenchConfig
    payload: Mapping[str, Any]
    elapsed_seconds: float
    created_utc: str = field(
        default_factory=lambda: time.strftime(
            "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
        )
    )

    @property
    def filename(self) -> str:
        return f"BENCH_{self.config.scenario}.json"

    def as_dict(self) -> dict[str, Any]:
        return {
            "schema_version": SCHEMA_VERSION,
            "scenario": self.config.scenario,
            "created_utc": self.created_utc,
            "elapsed_seconds": self.elapsed_seconds,
            "config": {
                "jobs": self.config.jobs,
                "size": self.config.size,
                "repeats": self.config.repeats,
                "warmup": self.config.warmup,
                "smoke": self.config.smoke,
                "seed": self.config.seed,
                "shards": self.config.shards,
            },
            "machine": {
                "cpu_count": os.cpu_count(),
                "platform": platform.platform(),
                "python": platform.python_version(),
                "numpy": np.__version__,
            },
            "payload": dict(self.payload),
        }

    def write(self, output_dir: str = ".") -> str:
        """Write ``BENCH_<scenario>.json`` into ``output_dir``; return path."""
        return write_result(self, output_dir)


def write_result(result: BenchResult, output_dir: str = ".") -> str:
    """Serialise a :class:`BenchResult` to its canonical JSON file."""
    os.makedirs(output_dir, exist_ok=True)
    path = os.path.join(output_dir, result.filename)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(result.as_dict(), handle, indent=2, sort_keys=False)
        handle.write("\n")
    return path


def run_scenario(
    name: str,
    *,
    jobs: int = 1,
    size: str = "tiny",
    repeats: int | None = None,
    warmup: int | None = None,
    smoke: bool = False,
    seed: int = 7,
    shards: int = 2,
) -> BenchResult:
    """Run one registered scenario and return its result.

    ``repeats``/``warmup`` default to the scenario's own declaration
    (cheap micro-scenarios repeat more; the grid A/B runs once).

    Raises
    ------
    ConfigurationError
        If ``name`` is not a registered scenario.
    """
    from repro.bench.scenarios import SCENARIOS

    try:
        spec = SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        raise ConfigurationError(
            f"unknown bench scenario {name!r}; available: {known}"
        ) from None
    config = BenchConfig(
        scenario=name,
        jobs=jobs,
        size=size,
        repeats=spec.default_repeats if repeats is None else repeats,
        warmup=spec.default_warmup if warmup is None else warmup,
        smoke=smoke,
        seed=seed,
        shards=shards,
    )
    started = time.perf_counter()
    payload = spec.run(config)
    elapsed = time.perf_counter() - started
    return BenchResult(
        config=config, payload=payload, elapsed_seconds=elapsed
    )


def list_scenarios() -> tuple[str, ...]:
    """Registered scenario names, sorted."""
    from repro.bench.scenarios import SCENARIOS

    return tuple(sorted(SCENARIOS))


def scenario_help() -> dict[str, str]:
    """Scenario name -> one-line description (for ``repro bench --list``)."""
    from repro.bench.scenarios import SCENARIOS

    return {name: SCENARIOS[name].description for name in sorted(SCENARIOS)}
