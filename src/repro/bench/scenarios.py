"""The registered benchmark scenarios.

Each scenario is a callable ``(BenchConfig) -> payload dict`` registered
under a short name; ``repro bench --scenario <name>`` runs it through
:func:`repro.bench.run_scenario` and writes ``BENCH_<name>.json``.

Scenario catalogue
------------------
``figure4``
    The paper's Figure-4 grid (every method tuned for nDCG@50 at every
    test ratio), run twice: serially and through the
    :class:`~repro.parallel.ExperimentEngine` at ``--jobs`` workers.
    Records both wall times, the speedup, and verifies the two runs
    produce identical series and identical chosen hyper-parameters.
``tuning``
    One AttRank grid search (250 settings) on the default split,
    serial vs parallel — the smallest unit of the paper's protocol.
``serve_delta``
    The serving path: apply a citation delta to a score index with
    warm-started vs cold re-solves (the `repro.serve` speedup).
``split``
    Temporal splitting across all five test ratios — the evaluation's
    fixed preprocessing cost.
``operator``
    Cold construction of the column-stochastic operator plus matvec
    throughput — the kernel every PageRank-style solve sits on.
``serve_batch``
    The batched read path: a mixed batch of top-k / filtered /
    compare / paper queries answered by the sharded
    :class:`~repro.serve.QueryEngine` (``--shards``, ``--jobs``)
    vs the same queries issued one at a time against an unsharded
    :class:`~repro.serve.RankingService`, with a bit-identical check.
``stream``
    The streaming write path: a full citation-event log replayed in
    micro-batches through warm-started updates (with a mid-replay
    checkpoint/resume leg), reported as events/second and verified
    bit-identical — finalized replay, resumed replay, and cold batch
    compute must produce the same score vectors.
``gateway``
    The HTTP serving layer under concurrent load: N asyncio clients of
    mixed endpoint traffic against a live gateway while stream updates
    land mid-run, reporting requests/second, latency quantiles
    (p50/p95/p99), the coalesced batch-size distribution, and the
    response-by-response bit-identity verdict against direct service
    calls at each reported index version.
``gateway_mp``
    Multi-process serving: the same verified mixed-traffic load driven
    through a pre-forked ``SO_REUSEPORT`` worker fleet over one
    shared-memory score store, at 1/2/4 workers across a client
    saturation curve (up to 1024 concurrent connections), with live
    stream updates published by the supervisor.  Reports the per-count
    peak requests/second, the fleet-vs-single speedup, and the
    bit-identity verdict per leg; the machine's ``cpu_count`` is the
    honest bound on attainable speedup.
``solver_fused``
    The fused multi-method solver core: tuning grids and a serving
    panel solved per-method vs stacked
    (:func:`repro.core.fused.solve_methods`), with a bit-identity
    check on every float64 leg and a float32 accuracy leg
    (rank agreement + relative error vs float64).
``obs_overhead``
    The cost of the observability plane: the same static loadgen run
    with observability disabled, in the production posture (INFO event
    logs, metrics, 1-in-20 trace sampling — held to a <5% overhead
    target the CI regression gate tracks), and in the verbose
    debugging posture (DEBUG access lines, every request traced —
    reported, no target).

Smoke mode (``--smoke``) shrinks each scenario to CI scale; the JSON
records that the cut was applied, so numbers are never compared across
modes by accident.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro.bench.harness import BenchConfig, time_callable
from repro.eval.experiment import _grid_for_lineup, methods_available
from repro.eval.grids import attrank_grid
from repro.eval.metrics import NDCG
from repro.eval.split import DEFAULT_TEST_RATIOS, split_by_ratio
from repro.graph.citation_network import CitationNetwork
from repro.graph.matrix import StochasticOperator
from repro.graph.temporal import chronological_order
from repro.parallel import ExperimentEngine
from repro.synth.profiles import generate_dataset

__all__ = ["SCENARIOS", "ScenarioSpec", "scenario"]


@dataclass(frozen=True)
class ScenarioSpec:
    """A registered scenario: the callable plus its timing defaults."""

    name: str
    description: str
    run: Callable[[BenchConfig], dict[str, Any]]
    default_repeats: int = 1
    default_warmup: int = 0


SCENARIOS: dict[str, ScenarioSpec] = {}


def scenario(
    name: str,
    description: str,
    *,
    default_repeats: int = 1,
    default_warmup: int = 0,
) -> Callable[[Callable[[BenchConfig], dict[str, Any]]], Callable]:
    """Register a scenario callable under ``name``."""

    def register(fn: Callable[[BenchConfig], dict[str, Any]]) -> Callable:
        SCENARIOS[name] = ScenarioSpec(
            name=name,
            description=description,
            run=fn,
            default_repeats=default_repeats,
            default_warmup=default_warmup,
        )
        return fn

    return register


def _dataset_info(
    network: CitationNetwork, name: str, size: str
) -> dict[str, Any]:
    return {
        "name": name,
        "size": size,
        "n_papers": network.n_papers,
        "n_citations": network.n_citations,
    }


def _series_identical(a, b) -> bool:
    """Whether two ComparisonSeries agree in scores AND chosen params."""
    if tuple(a.cells) != tuple(b.cells) or a.x_values != b.x_values:
        return False
    for method in a.cells:
        for cell_a, cell_b in zip(a.cells[method], b.cells[method]):
            if cell_a.score != cell_b.score:
                return False
            if dict(cell_a.result.best_params) != dict(
                cell_b.result.best_params
            ):
                return False
    return True


@scenario(
    "figure4",
    "Figure-4 grid (all methods tuned for nDCG@50 per ratio): "
    "parallel vs serial",
)
def _bench_figure4(config: BenchConfig) -> dict[str, Any]:
    network = generate_dataset("hep-th", size=config.size, seed=config.seed)
    ratios = (1.6,) if config.smoke else DEFAULT_TEST_RATIOS
    lineup = methods_available(network)
    metric = NDCG(50)

    def run_with(jobs: int):
        return ExperimentEngine(jobs=jobs).compare_over_ratios(
            network,
            dataset="hep-th",
            metric=metric,
            test_ratios=ratios,
            methods=lineup,
        )

    serial_stats, serial_panel = time_callable(
        lambda: run_with(1),
        warmup=config.warmup,
        repeats=config.repeats,
    )
    parallel_stats, parallel_panel = time_callable(
        lambda: run_with(config.jobs),
        warmup=config.warmup,
        repeats=config.repeats,
    )

    grid_points = {
        name: len(list(_grid_for_lineup(name))) for name in lineup
    }
    evaluations = sum(grid_points.values()) * len(ratios)
    return {
        "dataset": _dataset_info(network, "hep-th", config.size),
        "metric": "ndcg@50",
        "test_ratios": list(ratios),
        "methods": list(lineup),
        "grid_points_per_method": grid_points,
        "evaluations_per_run": evaluations,
        "serial": serial_stats.as_dict(),
        "parallel": {**parallel_stats.as_dict(), "jobs": config.jobs},
        "speedup_vs_serial": serial_stats.best / parallel_stats.best,
        "identical_rankings": _series_identical(serial_panel, parallel_panel),
        "winner_at_ratio": {
            str(ratio): serial_panel.winner_at(float(ratio))
            for ratio in ratios
        },
    }


@scenario(
    "tuning",
    "One AttRank grid search (250 settings): parallel vs serial",
)
def _bench_tuning(config: BenchConfig) -> dict[str, Any]:
    network = generate_dataset("hep-th", size=config.size, seed=config.seed)
    metric = NDCG(50)
    windows = (1, 3) if config.smoke else (1, 2, 3, 4, 5)
    points = list(attrank_grid(windows=windows))

    def tune_with(jobs: int):
        # A fresh split per timed run keeps the comparison fair: its
        # current network is a new instance, so serial repeats start
        # from cold per-network caches exactly like pool workers do.
        split = split_by_ratio(network, 1.6)
        return ExperimentEngine(jobs=jobs).tune_method(
            "AR", points, split, metric
        )

    serial_stats, serial_result = time_callable(
        lambda: tune_with(1), warmup=config.warmup, repeats=config.repeats
    )
    parallel_stats, parallel_result = time_callable(
        lambda: tune_with(config.jobs),
        warmup=config.warmup,
        repeats=config.repeats,
    )
    return {
        "dataset": _dataset_info(network, "hep-th", config.size),
        "metric": "ndcg@50",
        "grid_points": len(points),
        "serial": serial_stats.as_dict(),
        "parallel": {**parallel_stats.as_dict(), "jobs": config.jobs},
        "speedup_vs_serial": serial_stats.best / parallel_stats.best,
        "identical_rankings": (
            serial_result.best == parallel_result.best
            and serial_result.sweep == parallel_result.sweep
        ),
        "best_params": dict(serial_result.best_params),
        "best_score": serial_result.best_score,
    }


@scenario(
    "serve_delta",
    "Score-index delta update: warm-started vs cold re-solves",
    default_repeats=3,
)
def _bench_serve_delta(config: BenchConfig) -> dict[str, Any]:
    from repro.serve import DeltaUpdater, ScoreIndex, delta_between

    network = generate_dataset("hep-th", size=config.size, seed=config.seed)
    order = chronological_order(network)
    held_out = max(5, network.n_papers // 100)
    base = network.subnetwork(np.sort(order[: network.n_papers - held_out]))
    delta = delta_between(base, network)
    methods = ("AR", "PR", "CC") if config.smoke else ("AR", "PR", "CR", "CC")

    def apply_once(warm: bool) -> tuple[float, dict[str, int]]:
        index = ScoreIndex(base)
        for label in methods:
            index.add_method(label)
        updater = DeltaUpdater(index, warm=warm)
        started = time.perf_counter()
        report = updater.apply(delta)
        elapsed = time.perf_counter() - started
        iterations = {
            label: entry.iterations for label, entry in report.entries.items()
        }
        return elapsed, iterations

    warm_walls, cold_walls = [], []
    warm_iters: dict[str, int] = {}
    cold_iters: dict[str, int] = {}
    for _ in range(config.warmup):
        apply_once(True)
    for _ in range(config.repeats):
        elapsed, warm_iters = apply_once(True)
        warm_walls.append(elapsed)
        elapsed, cold_iters = apply_once(False)
        cold_walls.append(elapsed)
    return {
        "dataset": _dataset_info(network, "hep-th", config.size),
        "methods": list(methods),
        "delta": {
            "n_new_papers": len(delta.papers),
            "n_new_citations": len(delta.citations),
        },
        "warm": {
            "wall_times_seconds": warm_walls,
            "best_seconds": min(warm_walls),
            "iterations": warm_iters,
        },
        "cold": {
            "wall_times_seconds": cold_walls,
            "best_seconds": min(cold_walls),
            "iterations": cold_iters,
        },
        # Deliberately NOT "speedup_vs_serial": this scenario compares
        # warm-started vs cold re-solves, not parallel vs serial runs.
        "speedup_warm_vs_cold": min(cold_walls) / min(warm_walls),
    }


@scenario(
    "split",
    "Temporal train/test splitting across all five test ratios",
    default_repeats=3,
    default_warmup=1,
)
def _bench_split(config: BenchConfig) -> dict[str, Any]:
    network = generate_dataset("hep-th", size=config.size, seed=config.seed)
    ratios = (1.6,) if config.smoke else DEFAULT_TEST_RATIOS

    def split_all():
        return [split_by_ratio(network, ratio) for ratio in ratios]

    stats, splits = time_callable(
        split_all, warmup=config.warmup, repeats=config.repeats
    )
    return {
        "dataset": _dataset_info(network, "hep-th", config.size),
        "test_ratios": list(ratios),
        "timing": stats.as_dict(),
        "splits_per_second": len(ratios) / stats.best,
        "horizon_years": {
            str(ratio): split.horizon_years
            for ratio, split in zip(ratios, splits)
        },
    }


@scenario(
    "operator",
    "Column-stochastic operator: cold CSR build + matvec throughput",
    default_repeats=3,
    default_warmup=1,
)
def _bench_operator(config: BenchConfig) -> dict[str, Any]:
    network = generate_dataset("hep-th", size=config.size, seed=config.seed)
    applies = 20 if config.smoke else 100

    # Direct construction (not the shared_operator cache) so every
    # repeat measures a cold CSR assembly.
    build_stats, operator = time_callable(
        lambda: StochasticOperator(network),
        warmup=config.warmup,
        repeats=config.repeats,
    )

    vector = np.full(network.n_papers, 1.0 / network.n_papers)

    def apply_many():
        result = vector
        for _ in range(applies):
            result = operator.apply(result)
        return result

    apply_stats, _ = time_callable(
        apply_many, warmup=config.warmup, repeats=config.repeats
    )
    return {
        "dataset": _dataset_info(network, "hep-th", config.size),
        "build": build_stats.as_dict(),
        "apply": {**apply_stats.as_dict(), "applies_per_repeat": applies},
        "applies_per_second": applies / apply_stats.best,
        "nnz": int(operator.sparse_part.nnz),
        "n_dangling": operator.n_dangling,
    }


@scenario(
    "stream",
    "Event-log replay (micro-batched warm-start ingest + "
    "checkpoint/resume) vs cold batch compute",
)
def _bench_stream(config: BenchConfig) -> dict[str, Any]:
    import tempfile

    from repro.stream import EventLog, StreamIngestor, batch_compute

    network = generate_dataset("hep-th", size=config.size, seed=config.seed)
    log = EventLog.from_network(network)
    methods = ("AR", "CC") if config.smoke else ("AR", "PR", "CC")
    batch_size = 32 if config.smoke else 64
    # AttRank fits its decay rate from citation ages; the bootstrap
    # must cover enough of the stream for that fit to be defined.
    bootstrap = min(512, len(log))

    def make_ingestor() -> StreamIngestor:
        return StreamIngestor(
            log,
            methods,
            batch_size=batch_size,
            bootstrap_size=bootstrap,
            shards=config.shards,
        )

    def replay_full() -> StreamIngestor:
        ingestor = make_ingestor()
        ingestor.replay()
        ingestor.finalize()
        return ingestor

    replay_stats, replayed = time_callable(
        replay_full, warmup=config.warmup, repeats=config.repeats
    )
    batch_stats, cold = time_callable(
        lambda: batch_compute(log, methods),
        warmup=config.warmup,
        repeats=config.repeats,
    )

    # The checkpoint/resume leg (untimed): interrupt mid-replay, resume
    # from the persisted state, and require the same final scores.
    interrupted = make_ingestor()
    first = interrupted.replay(max_batches=max(1, replayed.batches_applied // 2))
    with tempfile.TemporaryDirectory() as scratch:
        interrupted.checkpoint(scratch)
        resumed = StreamIngestor.resume(scratch, log)
    resumed.replay()
    resumed.finalize()

    identical = all(
        np.array_equal(replayed.index.scores(label), cold.scores(label))
        and np.array_equal(resumed.index.scores(label), cold.scores(label))
        for label in methods
    )
    return {
        "dataset": _dataset_info(network, "hep-th", config.size),
        "methods": list(methods),
        "n_events": len(log),
        "batch_size": batch_size,
        "bootstrap_size": bootstrap,
        "shards": config.shards,
        "batches": replayed.batches_applied,
        "checkpoint_resume": {
            "interrupted_after_batches": first.n_batches,
            "resumed_batches": resumed.batches_applied - first.n_batches,
        },
        "replay": {
            **replay_stats.as_dict(),
            "events_per_second": len(log) / replay_stats.best,
        },
        "batch": batch_stats.as_dict(),
        "replay_overhead_vs_batch": replay_stats.best / batch_stats.best,
        "identical_rankings": identical,
    }


@scenario(
    "gateway",
    "HTTP gateway under concurrent verified load with live updates",
)
def _bench_gateway(config: BenchConfig) -> dict[str, Any]:
    from repro.gateway import GatewayConfig
    from repro.gateway.loadgen import run_load_over_log
    from repro.stream import EventLog

    network = generate_dataset("hep-th", size=config.size, seed=config.seed)
    log = EventLog.from_network(network)
    methods = ("AR", "CC") if config.smoke else ("AR", "PR", "CC")
    clients = 4 if config.smoke else 6
    requests_per_client = 25 if config.smoke else 60
    batch_size = 128 if config.smoke else 64

    # One verified run per repeat; the kept report is the fastest run
    # (latency quantiles come from its client-observed histogram, and
    # the identity verdict must hold on every repeat).
    reports = []
    for repeat in range(max(1, config.repeats)):
        reports.append(
            run_load_over_log(
                log,
                methods,
                clients=clients,
                requests_per_client=requests_per_client,
                seed=config.seed + repeat,
                batch_size=batch_size,
                bootstrap_events=len(log) // 2,
                shards=config.shards,
                config=GatewayConfig(port=0),
            )
        )
    best = max(reports, key=lambda r: r["requests_per_second"])
    identical = all(r["identical_rankings"] for r in reports)
    return {
        "dataset": _dataset_info(network, "hep-th", config.size),
        "methods": list(methods),
        "clients": clients,
        "requests_per_client": requests_per_client,
        "n_requests": best["requests"],
        "shards": config.shards,
        "stream": {
            "n_events": len(log),
            "bootstrap_events": len(log) // 2,
            "batch_size": batch_size,
            "updates_applied": best["updates_applied"],
            "versions_observed": best["versions_observed"],
        },
        "requests_per_second": best["requests_per_second"],
        "latency": best["latency"],
        "coalescing": best["coalescing"],
        "status_counts": best["status_counts"],
        "errors_5xx": max(r["errors_5xx"] for r in reports),
        "result_cache": best["result_cache"],
        "verified_responses": best["verified_responses"],
        "identical_rankings": identical,
    }


@scenario(
    "gateway_mp",
    "Pre-fork SO_REUSEPORT worker fleet vs one worker on one shared store",
)
def _bench_gateway_mp(config: BenchConfig) -> dict[str, Any]:
    import os

    from repro.gateway import GatewayConfig
    from repro.gateway.loadgen import run_load_multiworker
    from repro.stream import EventLog

    network = generate_dataset("hep-th", size=config.size, seed=config.seed)
    log = EventLog.from_network(network)
    methods = ("AR", "CC") if config.smoke else ("AR", "PR", "CC")
    requests_per_client = 6
    batch_size = 128 if config.smoke else 64
    # The saturation curve: each worker count is driven at every client
    # concurrency and keeps its peak — comparing fleets at one fixed
    # concurrency would understate the fleet (a single worker saturates
    # long before 1024 clients do).
    worker_counts = (1, 2) if config.smoke else (1, 2, 4)
    client_curve = (8, 32) if config.smoke else (64, 256, 1024)

    legs: dict[str, list[dict[str, Any]]] = {}
    for workers in worker_counts:
        legs[str(workers)] = []
        for clients in client_curve:
            report = run_load_multiworker(
                log,
                methods,
                workers=workers,
                clients=clients,
                requests_per_client=requests_per_client,
                seed=config.seed,
                batch_size=batch_size,
                bootstrap_events=len(log) // 2,
                shards=config.shards,
                config=GatewayConfig(port=0),
            )
            legs[str(workers)].append(
                {
                    "clients": clients,
                    "requests": report["requests"],
                    "requests_per_second": report["requests_per_second"],
                    "latency": report["latency"],
                    "status_counts": report["status_counts"],
                    "errors_5xx": report["errors_5xx"],
                    "shed_429": report["shed_429"],
                    "shed_503": report["shed_503"],
                    "worker_restarts": report["worker_restarts"],
                    "updates_applied": report["updates_applied"],
                    "verified_responses": report["verified_responses"],
                    "identical_rankings": report["identical_rankings"],
                }
            )

    peak_rps = {
        key: max(leg["requests_per_second"] for leg in runs)
        for key, runs in legs.items()
    }
    lo, hi = str(min(worker_counts)), str(max(worker_counts))
    all_legs = [leg for runs in legs.values() for leg in runs]
    cpu_count = os.cpu_count() or 1
    payload: dict[str, Any] = {
        "dataset": _dataset_info(network, "hep-th", config.size),
        "methods": list(methods),
        "requests_per_client": requests_per_client,
        "shards": config.shards,
        "worker_counts": list(worker_counts),
        "client_curve": list(client_curve),
        "n_events": len(log),
        "bootstrap_events": len(log) // 2,
        "legs": legs,
        "peak_requests_per_second": peak_rps,
        "workers_compared": [int(lo), int(hi)],
        "speedup_vs_single": peak_rps[hi] / peak_rps[lo],
        "cpu_count": cpu_count,
        "errors_5xx": max(leg["errors_5xx"] for leg in all_legs),
        "identical_rankings": all(
            leg["identical_rankings"] for leg in all_legs
        ),
    }
    if cpu_count < max(worker_counts):
        # Honesty over optics: a fleet cannot scale past the machine.
        # On a single-core host this scenario measures multi-process
        # isolation overhead; the >=2x target is meaningful only where
        # cpu_count >= the largest worker count (the CI runners).
        payload["note"] = (
            f"machine has {cpu_count} CPU core(s) for a "
            f"{max(worker_counts)}-worker fleet; speedup is bounded "
            "by cores, not by the architecture"
        )
    return payload


@scenario(
    "obs_overhead",
    "Gateway loadgen throughput with observability on vs off",
    default_repeats=9,
)
def _bench_obs_overhead(config: BenchConfig) -> dict[str, Any]:
    import os

    from repro.gateway import GatewayConfig
    from repro.gateway.loadgen import run_load_static
    from repro.obs import (
        configure_logging,
        disable_tracing,
        enable_tracing,
        reset_logging,
    )
    from repro.serve import RankingService, ScoreIndex

    network = generate_dataset("hep-th", size=config.size, seed=config.seed)
    methods = ("AR", "CC") if config.smoke else ("AR", "PR", "CC")
    index = ScoreIndex(network)
    for label in methods:
        index.add_method(label)
    clients = 4 if config.smoke else 6
    # Long legs on purpose: a leg must outlast scheduler noise bursts
    # (hundreds of ms on shared machines) or best-of-N picks whichever
    # side dodged them.
    requests_per_client = 25 if config.smoke else 200
    # Two enabled postures (docs/OBSERVABILITY.md):
    #   "on"      — production: INFO event logs, every request counted
    #               by the metrics registry, traces head-sampled 1-in-20
    #               (how OTel-style stacks deploy).  Held to the <5%
    #               overhead target.
    #   "profile" — the "on" posture plus the sampling profiler at its
    #               default rate: what --profile costs on top of
    #               production observability.  Held to the same <5%
    #               target (a sampler that perturbs what it measures
    #               is useless).
    #   "verbose" — debugging: DEBUG per-request access lines plus a
    #               trace for *every* request.  Reported for
    #               transparency, no target — one extra stdlib log
    #               line per ~400us request is inherently >5%.
    trace_sample = 0.05
    postures = {
        "on": ("INFO", trace_sample, False),
        "profile": ("INFO", trace_sample, True),
        "verbose": ("DEBUG", 1.0, False),
    }

    def run_leg(posture: str, run_seed: int) -> dict[str, Any]:
        sink = None
        profiled = False
        if posture in postures:
            # Logging to /dev/null: the formatting/filter cost is
            # paid, the terminal is not the thing being measured.
            level, sample, profiled = postures[posture]
            sink = open(os.devnull, "w")
            configure_logging(level, json=True, stream=sink)
            enable_tracing(capacity=256, sample=sample)
        else:
            reset_logging()
            disable_tracing()
        try:
            # cache_size=1 defeats the LRU so every request pays the
            # real query path — otherwise the loadgen's repeating mix
            # turns requests into cache hits and the fixed per-request
            # observability cost is measured against an empty workload.
            return run_load_static(
                RankingService(index, cache_size=1),
                methods,
                clients=clients,
                requests_per_client=requests_per_client,
                seed=run_seed,
                config=GatewayConfig(port=0, profile=profiled),
            )
        finally:
            if sink is not None:
                reset_logging()
                disable_tracing()
                sink.close()

    # Legs rotate within each repeat — and the rotation shifts between
    # repeats — so drift (thermal, page cache, a noisy neighbour) hits
    # every side equally; each side keeps its best run.
    run_leg("off", config.seed)  # warmup, discarded
    order = ("off", "on", "profile", "verbose")
    reports: dict[str, list[dict[str, Any]]] = {key: [] for key in order}
    for repeat in range(max(1, config.repeats)):
        for step in range(len(order)):
            posture = order[(repeat + step) % len(order)]
            reports[posture].append(run_leg(posture, config.seed + repeat))

    def side(posture: str) -> dict[str, Any]:
        # The median leg, not the best: scheduler noise on a shared
        # machine is one-sided (bursts only slow legs down), and the
        # rotation gives every posture the same distribution of time
        # slots, so the side medians are comparable while the
        # occasional burst-hit leg drops out of both.
        legs = sorted(
            reports[posture], key=lambda r: r["requests_per_second"]
        )
        report = legs[len(legs) // 2]
        return {
            "requests_per_second": report["requests_per_second"],
            "latency": report["latency"],
            "leg_rps": [
                round(r["requests_per_second"], 1)
                for r in reports[posture]
            ],
        }

    side_off, side_on = side("off"), side("on")
    side_profile = side("profile")
    side_verbose = side("verbose")
    rps_off = side_off["requests_per_second"]

    def overhead(posture_side: dict[str, Any]) -> float:
        return (
            (rps_off - posture_side["requests_per_second"])
            / rps_off
            * 100.0
        )

    all_reports = [r for legs in reports.values() for r in legs]
    return {
        "dataset": _dataset_info(network, "hep-th", config.size),
        "methods": list(methods),
        "clients": clients,
        "requests_per_client": requests_per_client,
        "trace_sample": trace_sample,
        "obs_on": side_on,
        "obs_off": side_off,
        "obs_profile": side_profile,
        "obs_verbose": side_verbose,
        "overhead_pct": overhead(side_on),
        "target_overhead_pct": 5.0,
        "overhead_pct_profile": overhead(side_profile),
        "overhead_pct_verbose": overhead(side_verbose),
        "errors_5xx": max(r["errors_5xx"] for r in all_reports),
        "identical_rankings": all(
            r["identical_rankings"] for r in all_reports
        ),
    }


@scenario(
    "serve_batch",
    "Batched sharded query engine vs one-at-a-time unsharded service",
    default_repeats=3,
    default_warmup=1,
)
def _bench_serve_batch(config: BenchConfig) -> dict[str, Any]:
    from repro.serve import (
        CompareQuery,
        PaperQuery,
        QueryEngine,
        RankingService,
        ScoreIndex,
        ShardedScoreIndex,
        TopKQuery,
    )

    network = generate_dataset("hep-th", size=config.size, seed=config.seed)
    methods = ("PR", "CC") if config.smoke else ("AR", "PR", "CC")
    # Solving the methods is setup, not the measured read path.
    index = ScoreIndex(network)
    for label in methods:
        index.add_method(label)

    # A deterministic mixed batch: paginated pages over a handful of
    # year spans (front-page traffic), one comparison, paper lookups.
    times = network.publication_times
    lo, hi = float(times.min()), float(times.max())
    third = (hi - lo) / 3.0
    spans = (None, (lo, lo + 2.0 * third), (lo + third, hi))
    pages = 4 if config.smoke else 12
    queries: list[Any] = [
        TopKQuery(method=m, k=10, offset=10 * page, year_range=span)
        for m in methods
        for span in spans
        for page in range(pages)
    ]
    queries.append(CompareQuery(methods=methods, k=25))
    ids = network.paper_ids
    step = max(1, network.n_papers // 10)
    queries.extend(
        PaperQuery(paper_id=ids[i])
        for i in range(0, network.n_papers, step)
    )

    def run_serial() -> list[Any]:
        # Fresh unsharded service per run: every query pays its own
        # round trip, the historical serving path.
        service = RankingService(index)
        out: list[Any] = []
        for query in queries:
            if isinstance(query, TopKQuery):
                out.append(
                    service.top_k(
                        query.method,
                        k=query.k,
                        offset=query.offset,
                        year_range=query.year_range,
                    )
                )
            elif isinstance(query, CompareQuery):
                out.append(
                    service.compare(
                        query.methods, k=query.k, offset=query.offset,
                        year_range=query.year_range,
                    )
                )
            else:
                out.append(service.paper(query.paper_id))
        return out

    def run_batched() -> list[Any]:
        # Fresh store per run so partitioning + per-shard sorts are
        # measured, exactly like the serial service's lazy sorts are.
        store = ShardedScoreIndex.from_index(
            index, n_shards=config.shards
        )
        return list(QueryEngine(store, jobs=config.jobs).execute(queries))

    serial_stats, serial_results = time_callable(
        run_serial, warmup=config.warmup, repeats=config.repeats
    )
    batched_stats, batched_results = time_callable(
        run_batched, warmup=config.warmup, repeats=config.repeats
    )
    n_queries = len(queries)
    return {
        "dataset": _dataset_info(network, "hep-th", config.size),
        "methods": list(methods),
        "n_queries": n_queries,
        "shards": config.shards,
        "serial": {
            **serial_stats.as_dict(),
            "queries_per_second": n_queries / serial_stats.best,
        },
        "batched": {
            **batched_stats.as_dict(),
            "jobs": config.jobs,
            "shards": config.shards,
            "queries_per_second": n_queries / batched_stats.best,
        },
        "speedup_vs_serial": serial_stats.best / batched_stats.best,
        "identical_rankings": serial_results == batched_results,
    }


@scenario(
    "solver_fused",
    "Fused multi-method solver vs per-method scalar solves",
    default_repeats=7,
)
def _bench_solver_fused(config: BenchConfig) -> dict[str, Any]:
    """Fused-stack vs serial solves at several stack shapes.

    Each leg solves the same method set twice — once per method through
    the scalar ``scores()`` path, once stacked through
    :func:`repro.core.fused.solve_methods` — with the two timings
    interleaved round by round (robust against background-load drift;
    the reported wall time is the best round).  Score vectors from the
    two runs must be bit-identical; ``identical_rankings`` is the AND
    across every float64 leg.

    Legs: tuning grids of 16 and 64 settings on one operator (where
    stacking pays — the headline ``speedup_vs_serial`` is the 64-wide
    grid), a heterogeneous 5-method serving panel (narrow operator
    groups, which ``FUSE_MIN_COLUMNS`` routes to the scalar path — the
    leg documents that the dispatch costs nothing), and a float32 leg
    reporting rank agreement and relative error against float64.

    Smoke mode drops the 64-wide grids and runs 3 rounds.
    """
    from repro.baselines import make_method
    from repro.core.fused import FLOAT32_TOLERANCE, FusedSolver, solve_methods
    from repro.eval.grids import attrank_grid
    from repro.eval.metrics import spearman_rho

    network = generate_dataset("hep-th", size=config.size, seed=config.seed)
    rounds = max(3 if config.smoke else config.repeats, 1)

    def ar_settings(m: int) -> list[dict[str, Any]]:
        # alpha=0 settings solve in closed form on both paths; keep the
        # leg about the iterative stack.
        iterative = (
            params
            for params in attrank_grid(windows=(2, 3))
            if params["alpha"] > 0
        )
        return [params for _, params in zip(range(m), iterative)]

    def pr_settings(m: int) -> list[dict[str, Any]]:
        return [
            {"alpha": float(a)} for a in np.linspace(0.05, 0.95, m)
        ]

    panel: list[tuple[str, dict[str, Any]]] = [
        ("AR", {"alpha": 0.2, "beta": 0.5, "gamma": 0.3}),
        ("PR", {"alpha": 0.5}),
        ("CR", {"tau_dir": 2.0}),
        ("FR", {"alpha": 0.4, "beta": 0.1, "rho": -0.3}),
        ("ECM", {"alpha": 0.3, "gamma": 0.4}),
    ]

    def run_leg(specs: list[tuple[str, dict[str, Any]]]) -> dict[str, Any]:
        def serial() -> list[np.ndarray]:
            return [
                np.asarray(make_method(label, **params).scores(network))
                for label, params in specs
            ]

        def fused() -> list[np.ndarray]:
            solved = solve_methods(
                network,
                [make_method(label, **params) for label, params in specs],
            )
            return [np.asarray(scores) for scores, _info in solved]

        serial_walls: list[float] = []
        fused_walls: list[float] = []
        serial_scores = fused_scores = None
        for _ in range(rounds):
            started = time.perf_counter()
            serial_scores = serial()
            serial_walls.append(time.perf_counter() - started)
            started = time.perf_counter()
            fused_scores = fused()
            fused_walls.append(time.perf_counter() - started)
        identical = all(
            np.array_equal(a, b)
            for a, b in zip(serial_scores, fused_scores)
        )
        return {
            "n_methods": len(specs),
            "serial_best_seconds": min(serial_walls),
            "fused_best_seconds": min(fused_walls),
            "speedup_vs_serial": min(serial_walls) / min(fused_walls),
            "identical_rankings": identical,
        }

    legs: dict[str, dict[str, Any]] = {}
    legs["grid_ar_m16"] = run_leg([("AR", p) for p in ar_settings(16)])
    if not config.smoke:
        legs["grid_ar_m64"] = run_leg([("AR", p) for p in ar_settings(64)])
        legs["grid_pr_m64"] = run_leg([("PR", p) for p in pr_settings(64)])
    legs["panel5"] = run_leg(panel)

    # float32 leg: accuracy, not wall time (the mode trades tolerance
    # for memory traffic; docs/SOLVER.md tabulates the bound).
    f64_scores = [
        np.asarray(make_method(label, **params).scores(network))
        for label, params in panel
    ]
    columns = [
        make_method(label, **params).fused_column(network)
        for label, params in panel
    ]
    f32_solved = FusedSolver(
        columns, network.n_papers, dtype=np.float32
    ).solve()
    agreements, rel_errors = [], []
    for (scores32, _info), scores64 in zip(f32_solved, f64_scores):
        wide = scores32.astype(np.float64)
        agreements.append(spearman_rho(wide, scores64))
        scale = float(np.abs(scores64).max()) or 1.0
        rel_errors.append(float(np.abs(wide - scores64).max()) / scale)

    grid_key = "grid_ar_m16" if config.smoke else "grid_ar_m64"
    return {
        "dataset": _dataset_info(network, "hep-th", config.size),
        "rounds": rounds,
        "legs": legs,
        "speedup_vs_serial": legs[grid_key]["speedup_vs_serial"],
        "identical_rankings": all(
            leg["identical_rankings"] for leg in legs.values()
        ),
        "float32": {
            "tolerance_floor": FLOAT32_TOLERANCE,
            "min_spearman_vs_float64": min(agreements),
            "max_relative_error_vs_float64": max(rel_errors),
        },
    }
