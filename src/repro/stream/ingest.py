"""Replaying an event log through the serving layer, in micro-batches.

:class:`StreamIngestor` is the write path of a live deployment: it
consumes an :class:`~repro.stream.EventLog` in order, accumulates
events into micro-batched :class:`~repro.serve.NetworkDelta`\\ s
(configurable batch-size and time-watermark policies, always cut at
paper-group boundaries), and drives each batch through
:meth:`RankingService.update` — i.e. through
:class:`~repro.serve.DeltaUpdater`'s warm-started re-solves and
:meth:`~repro.serve.ShardedScoreIndex.sync`'s shard routing.  Between
batches the service answers queries as usual; the ingestor is just a
second handle on the same serving state.

Determinism contract
--------------------
* Replay is *deterministic*: two replays of the same log with the same
  batch policy pass through bit-identical states at every batch
  boundary — which is what makes checkpoint/resume
  (:mod:`repro.stream.checkpoint`) exact rather than approximate.
* Mid-replay, score vectors are warm-started solutions: within solver
  tolerance (1e-12 L1) of the canonical solution, but not bit-equal to
  it — a warm power iteration stops at a different iterate than a cold
  one.
* :meth:`StreamIngestor.finalize` closes that gap: it re-solves the
  final snapshot cold (the canonical start), after which the scores
  are **bit-identical** to an offline batch compute over the full log
  (:func:`batch_compute`) — at any batch size, watermark, shard count,
  or resume point.  This is the invariant the property tests and the
  ``stream`` bench scenario enforce.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.chaos.points import chaos_point
from repro.errors import ConfigurationError, StreamError
from repro.graph.builder import MissingRefPolicy, NetworkBuilder
from repro.graph.citation_network import CitationNetwork
from repro.obs.logging import get_logger
from repro.obs.registry import REGISTRY
from repro.obs.trace import span
from repro.serve.delta import NetworkDelta
from repro.serve.score_index import MethodEntry, ScoreIndex
from repro.serve.service import RankingService
from repro.stream.events import (
    CitationEvent,
    EventLog,
    PaperEvent,
    _event_line,
)

__all__ = [
    "StreamIngestor",
    "BatchReport",
    "ReplayReport",
    "network_from_log",
    "batch_compute",
]

#: Default methods a stream deployment keeps live.
DEFAULT_METHODS = ("AR", "PR", "CC")

_LOG = get_logger("stream")

_BATCH_SECONDS = REGISTRY.histogram(
    "repro_stream_batch_seconds",
    "Wall-clock seconds per applied stream micro-batch.",
)
_EVENTS_TOTAL = REGISTRY.counter(
    "repro_stream_events_total",
    "Events consumed from the stream, by kind.",
    ["kind"],
)
_EVENT_LAG = REGISTRY.gauge(
    "repro_stream_event_lag",
    "Events still unconsumed in the attached log.",
)


@dataclass(frozen=True)
class BatchReport:
    """What one :meth:`StreamIngestor.step` call did.

    Attributes
    ----------
    batch:
        0-based batch number.
    offset_start, offset_end:
        Half-open event range ``[start, end)`` this batch consumed.
    n_papers, n_citations:
        Papers and citation edges the batch added.
    version:
        Index version after the batch (0 for the bootstrap batch).
    bootstrap:
        Whether this batch built the initial snapshot (cold solves)
        rather than applying a delta (warm re-solves).
    entries:
        Per-method entries after the batch (iteration counts of the
        solves included).
    touched_shards:
        Shards that gained papers (empty for the bootstrap batch).
    elapsed_seconds:
        Wall-clock time of the batch.
    """

    batch: int
    offset_start: int
    offset_end: int
    n_papers: int
    n_citations: int
    version: int
    bootstrap: bool
    entries: Mapping[str, MethodEntry]
    touched_shards: tuple[int, ...]
    elapsed_seconds: float

    @property
    def n_events(self) -> int:
        """Events consumed by this batch."""
        return self.offset_end - self.offset_start


@dataclass(frozen=True)
class ReplayReport:
    """Summary of one :meth:`StreamIngestor.replay` run.

    Attributes
    ----------
    n_batches, n_events:
        Batches applied and events consumed by *this* replay call.
    n_papers, n_citations:
        Size of the snapshot after the replay.
    version:
        Index version after the replay.
    exhausted:
        Whether the log was fully consumed.
    elapsed_seconds:
        Wall-clock time of the replay loop.
    events_per_second:
        Ingest throughput (events consumed / elapsed).
    """

    n_batches: int
    n_events: int
    n_papers: int
    n_citations: int
    version: int
    exhausted: bool
    elapsed_seconds: float

    @property
    def events_per_second(self) -> float:
        return (
            self.n_events / self.elapsed_seconds
            if self.elapsed_seconds > 0
            else float("inf")
        )


class StreamIngestor:
    """Consume an event log in micro-batches, updating a live service.

    Parameters
    ----------
    log:
        The event log to replay.
    methods:
        Method labels to solve and keep live (default AR, PR, CC).
    batch_size:
        Minimum events per micro-batch; each batch extends to the next
        paper-group boundary at or past this size, so a paper's
        citation events always travel with the paper.
    bootstrap_size:
        Minimum events in the *first* batch, which builds the initial
        snapshot (default: ``batch_size``).  Methods that fit
        parameters from citation structure (AttRank's decay rate) need
        the bootstrap to contain citation events; raise this — or pin
        the parameter explicitly via ``method_params`` — when
        replaying with a tiny ``batch_size`` from the very first
        event.
    watermark_years:
        Optional time watermark: a batch also closes at the first
        group boundary whose event time is at least this far past the
        batch's first event.  ``None`` (default) disables the policy.
    shards, partitioner, jobs, cache_size:
        Serving-state configuration, passed to the
        :class:`~repro.serve.RankingService` built at bootstrap.
    missing_references:
        Policy for citations whose cited id is in neither the snapshot
        nor the log — ``"skip"`` (default) or ``"error"``, mirroring
        :class:`~repro.graph.NetworkBuilder`.
    method_params:
        Optional per-label constructor overrides, e.g.
        ``{"AR": {"alpha": 0.2}}``.

    Examples
    --------
    >>> from repro.stream import EventLog
    >>> from repro.synth import toy_network
    >>> ingestor = StreamIngestor(
    ...     EventLog.from_network(toy_network()),
    ...     methods=("CC",), batch_size=4,
    ... )
    >>> report = ingestor.replay()
    >>> (report.exhausted, report.n_papers)
    (True, 8)
    >>> ingestor.service.top_k("CC", k=2).paper_ids
    ('A', 'C')
    """

    def __init__(
        self,
        log: EventLog,
        methods: Sequence[str] = DEFAULT_METHODS,
        *,
        batch_size: int = 64,
        bootstrap_size: int | None = None,
        watermark_years: float | None = None,
        shards: int = 1,
        partitioner: str = "hash",
        jobs: int | None = 1,
        cache_size: int = 128,
        missing_references: MissingRefPolicy = "skip",
        method_params: Mapping[str, Mapping[str, Any]] | None = None,
    ) -> None:
        if batch_size < 1:
            raise ConfigurationError(
                f"batch_size must be >= 1, got {batch_size}"
            )
        if bootstrap_size is not None and bootstrap_size < 1:
            raise ConfigurationError(
                f"bootstrap_size must be >= 1, got {bootstrap_size}"
            )
        if watermark_years is not None and watermark_years <= 0:
            raise ConfigurationError(
                f"watermark_years must be positive, got {watermark_years}"
            )
        if len(log) == 0:
            raise StreamError("cannot ingest an empty event log")
        labels = tuple(m.upper() for m in methods)
        if not labels:
            raise ConfigurationError("at least one method is required")
        self._log = log
        self._methods = labels
        self._method_params = {
            str(k).upper(): dict(v) for k, v in (method_params or {}).items()
        }
        self._batch_size = int(batch_size)
        self._bootstrap_size = (
            self._batch_size if bootstrap_size is None else int(bootstrap_size)
        )
        self._watermark = (
            None if watermark_years is None else float(watermark_years)
        )
        self._shards = int(shards)
        self._partitioner = partitioner
        self._jobs = jobs
        self._cache_size = int(cache_size)
        self._policy: MissingRefPolicy = missing_references
        self._offset = 0
        self._batches = 0
        self._index: ScoreIndex | None = None
        self._service: RankingService | None = None
        # Running SHA-256 over the consumed prefix's canonical lines,
        # advanced batch by batch so checkpoints never re-hash the
        # whole prefix (which would be quadratic over a long replay).
        self._hasher = hashlib.sha256()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def log(self) -> EventLog:
        """The event log being replayed."""
        return self._log

    @property
    def offset(self) -> int:
        """Events consumed so far."""
        return self._offset

    @property
    def batches_applied(self) -> int:
        """Micro-batches applied so far (bootstrap included)."""
        return self._batches

    @property
    def exhausted(self) -> bool:
        """Whether every event of the log has been consumed."""
        return self._offset >= len(self._log)

    @property
    def batch_size(self) -> int:
        """Minimum events per micro-batch."""
        return self._batch_size

    @property
    def bootstrap_size(self) -> int:
        """Minimum events in the snapshot-building first batch."""
        return self._bootstrap_size

    @property
    def watermark_years(self) -> float | None:
        """Time-watermark batch policy (``None`` = disabled)."""
        return self._watermark

    @property
    def index(self) -> ScoreIndex:
        """The live score index (raises before the bootstrap batch)."""
        if self._index is None:
            raise StreamError(
                "no snapshot yet: the ingestor has not applied its "
                "bootstrap batch (call step() or replay())"
            )
        return self._index

    @property
    def service(self) -> RankingService:
        """The ranking service answering queries between batches."""
        if self._service is None:
            raise StreamError(
                "no serving state yet: the ingestor has not applied "
                "its bootstrap batch (call step() or replay())"
            )
        return self._service

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StreamIngestor(offset={self._offset}/{len(self._log)}, "
            f"batches={self._batches}, batch_size={self._batch_size}, "
            f"methods={list(self._methods)})"
        )

    # ------------------------------------------------------------------
    # Batching
    # ------------------------------------------------------------------
    def _next_cut(self) -> int:
        """The exclusive end of the next micro-batch.

        Scans forward from the current offset; a cut is legal before
        any paper event (group boundary) and taken at the first legal
        position where the batch has reached ``batch_size`` events or
        the time watermark.  Without a trigger, the batch runs to the
        end of the log.
        """
        events = self._log.events
        start = self._offset
        start_time = events[start].time
        minimum = (
            self._bootstrap_size if self._index is None else self._batch_size
        )
        for position in range(start + 1, len(events)):
            event = events[position]
            if not isinstance(event, PaperEvent):
                continue
            if position - start >= minimum:
                return position
            if (
                self._watermark is not None
                and event.time - start_time >= self._watermark
            ):
                return position
        return len(events)

    def step(self) -> BatchReport:
        """Apply the next micro-batch; raise :class:`StreamError` at EOF."""
        if self.exhausted:
            raise StreamError(
                f"event log exhausted after {self._offset} events; "
                "nothing left to replay"
            )
        started = time.perf_counter()
        cut = self._next_cut()
        events = self._log.events[self._offset:cut]
        chaos_point("stream.step.apply")
        with span(
            "stream.step", batch=self._batches, events=len(events)
        ) as sp:
            if self._index is None:
                report = self._bootstrap(events, cut, started)
            else:
                report = self._apply_delta(events, cut, started)
            if sp is not None:
                sp.set(version=report.version)
        chaos_point("stream.step.advance")
        for event in events:
            self._hasher.update(_event_line(event).encode("utf-8"))
            self._hasher.update(b"\n")
        self._offset = cut
        self._batches += 1
        _BATCH_SECONDS.observe(report.elapsed_seconds)
        papers = sum(
            1 for event in events if isinstance(event, PaperEvent)
        )
        _EVENTS_TOTAL.inc(papers, kind="paper")
        _EVENTS_TOTAL.inc(len(events) - papers, kind="citation")
        _EVENT_LAG.set(len(self._log) - cut)
        _LOG.debug(
            "stream batch",
            extra={
                "batch": report.batch,
                "events": report.n_events,
                "version": report.version,
                "lag": len(self._log) - cut,
                "ms": round(report.elapsed_seconds * 1e3, 3),
            },
        )
        return report

    def prefix_digest(self) -> str:
        """SHA-256 of the consumed prefix (== ``log.digest(offset)``),
        maintained incrementally so checkpoints cost O(batch), not
        O(offset)."""
        return self._hasher.copy().hexdigest()

    def _bootstrap(
        self,
        events: Sequence[Any],
        cut: int,
        started: float,
    ) -> BatchReport:
        """Build the initial snapshot, index and service (cold solves)."""
        builder = NetworkBuilder(missing_references=self._policy)
        for event in events:
            if isinstance(event, PaperEvent):
                builder.add_paper(event.paper_id, event.time)
            else:
                builder.add_reference(event.citing, event.cited)
        network = builder.build()
        index = ScoreIndex(network)
        for label in self._methods:
            index.add_method(label, **self._method_params.get(label, {}))
        self._index = index
        self._service = RankingService(
            index,
            cache_size=self._cache_size,
            missing_references=self._policy,
            shards=self._shards,
            partitioner=self._partitioner,
            jobs=self._jobs,
        )
        return BatchReport(
            batch=self._batches,
            offset_start=self._offset,
            offset_end=cut,
            n_papers=network.n_papers,
            n_citations=network.n_citations,
            version=index.version,
            bootstrap=True,
            entries={
                label: index.entry(label) for label in self._methods
            },
            touched_shards=(),
            elapsed_seconds=time.perf_counter() - started,
        )

    def _apply_delta(
        self,
        events: Sequence[Any],
        cut: int,
        started: float,
    ) -> BatchReport:
        """Convert one batch of events into a delta and apply it warm."""
        papers: list[tuple[str, float]] = []
        citations: list[tuple[str, str]] = []
        for event in events:
            if isinstance(event, PaperEvent):
                papers.append((event.paper_id, event.time))
            elif isinstance(event, CitationEvent):
                citations.append((event.citing, event.cited))
        delta = NetworkDelta(
            papers=tuple(papers), citations=tuple(citations)
        )
        assert self._service is not None
        update = self._service.update(delta)
        return BatchReport(
            batch=self._batches,
            offset_start=self._offset,
            offset_end=cut,
            n_papers=update.n_new_papers,
            n_citations=update.n_new_citations,
            version=update.version,
            bootstrap=False,
            entries=update.entries,
            touched_shards=update.touched_shards,
            elapsed_seconds=time.perf_counter() - started,
        )

    def replay(self, *, max_batches: int | None = None) -> ReplayReport:
        """Apply batches until the log is exhausted (or a batch budget).

        Parameters
        ----------
        max_batches:
            Stop after this many batches (``None`` = run to the end).
            A partial replay leaves the ingestor ready to continue —
            the checkpoint/resume path uses exactly this.
        """
        if max_batches is not None and max_batches < 1:
            raise ConfigurationError(
                f"max_batches must be >= 1, got {max_batches}"
            )
        started = time.perf_counter()
        events_before = self._offset
        batches = 0
        while not self.exhausted:
            if max_batches is not None and batches >= max_batches:
                break
            self.step()
            batches += 1
        network = self.index.network
        return ReplayReport(
            n_batches=batches,
            n_events=self._offset - events_before,
            n_papers=network.n_papers,
            n_citations=network.n_citations,
            version=self.index.version,
            exhausted=self.exhausted,
            elapsed_seconds=time.perf_counter() - started,
        )

    def finalize(self) -> dict[str, MethodEntry]:
        """Re-solve the current snapshot cold, canonicalising the scores.

        Warm-started replay scores agree with the canonical batch
        solution to solver tolerance; this refresh re-anchors them at
        the bit-exact canonical fixed point (a cold solve from the
        uniform start is fully deterministic), so a finalized replay is
        bit-identical to :func:`batch_compute` over the same events —
        regardless of batch size, shard count, or resume history.  The
        version bump makes the service re-sync its shards and drop its
        result cache on the next read.
        """
        entries = self.index.refresh(warm=False)
        return entries

    def checkpoint(self, directory: str) -> str:
        """Persist the replay state for :meth:`resume`; returns the path.

        See :class:`repro.stream.Checkpoint` for the layout.
        """
        from repro.stream.checkpoint import Checkpoint

        return Checkpoint.capture(self).save(directory)

    @classmethod
    def resume(
        cls,
        directory: str,
        log: EventLog,
        *,
        jobs: int | None = 1,
        cache_size: int = 128,
    ) -> "StreamIngestor":
        """Rebuild an ingestor from a checkpoint and continue ``log``.

        The checkpoint's digest must match the prefix of ``log`` it
        claims to have consumed — resuming against a different stream
        raises :class:`~repro.errors.StreamError` instead of silently
        diverging.  The restored ingestor continues bit-identically to
        the run that wrote the checkpoint.
        """
        from repro.stream.checkpoint import Checkpoint

        state = Checkpoint.load(directory)
        state.verify_against(log)
        index = state.load_index(directory)
        ingestor = cls(
            log,
            methods=index.labels,
            batch_size=state.batch_size,
            watermark_years=state.watermark_years,
            shards=state.shards,
            partitioner=state.partitioner,
            jobs=jobs,
            cache_size=cache_size,
            missing_references=state.missing_references,
        )
        ingestor._offset = state.offset
        ingestor._batches = state.batches_applied
        # Re-prime the running prefix hash (one pass, at resume only).
        for event in log.events[: state.offset]:
            ingestor._hasher.update(_event_line(event).encode("utf-8"))
            ingestor._hasher.update(b"\n")
        ingestor._index = index
        ingestor._service = RankingService(
            index,
            cache_size=cache_size,
            missing_references=state.missing_references,
            shards=state.shards,
            partitioner=state.partitioner,
            jobs=jobs,
        )
        return ingestor


def network_from_log(
    log: EventLog,
    *,
    missing_references: MissingRefPolicy = "skip",
) -> CitationNetwork:
    """Build the full snapshot from a log in one pass (no micro-batching).

    This is the offline baseline the replay path is measured against:
    papers take dense indices in event order, exactly as an exhausted
    replay leaves them.
    """
    if len(log) == 0:
        raise StreamError("cannot build a network from an empty log")
    builder = NetworkBuilder(missing_references=missing_references)
    for event in log:
        if isinstance(event, PaperEvent):
            builder.add_paper(event.paper_id, event.time)
        else:
            builder.add_reference(event.citing, event.cited)
    return builder.build()


def batch_compute(
    log: EventLog,
    methods: Sequence[str] = DEFAULT_METHODS,
    *,
    missing_references: MissingRefPolicy = "skip",
    method_params: Mapping[str, Mapping[str, Any]] | None = None,
) -> ScoreIndex:
    """Cold batch compute over the full log — the canonical scores.

    Builds the snapshot with :func:`network_from_log` and solves every
    method cold.  A finalized replay of the same log produces
    bit-identical score vectors (see
    :meth:`StreamIngestor.finalize`).
    """
    index = ScoreIndex(network_from_log(log, missing_references=missing_references))
    params = {
        str(k).upper(): dict(v) for k, v in (method_params or {}).items()
    }
    for label in methods:
        key = label.upper()
        index.add_method(key, **params.get(key, {}))
    return index
