"""Citation-event logs — the corpus as a time-ordered stream.

The paper's methods rank a *snapshot*, but the snapshot itself is the
result of a stream: papers are published, and each arrives carrying its
reference list.  :class:`EventLog` materialises that stream as an
ordered sequence of two event kinds:

* :class:`PaperEvent` — a paper is published at ``time``;
* :class:`CitationEvent` — the freshly published paper cites an
  existing one (the event's time is the citing paper's publication
  time).

The log is *grouped by construction*: every citation event follows the
paper event of its citing paper, with no other paper event in between.
This mirrors the serve layer's corpus model (reference lists of
published papers are fixed — :class:`~repro.serve.NetworkDelta` applies
the same rule), and it is what lets :class:`~repro.stream.StreamIngestor`
cut the log into micro-batches at any paper boundary without ever
splitting a paper from its references.

Logs persist as JSONL (one event object per line), which streams,
appends, and diffs well; ``repr``-based float serialisation round-trips
``float64`` exactly, so a saved log replays bit-identically.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence, Union

import numpy as np

from repro.errors import DataFormatError, StreamError
from repro.graph.citation_network import CitationNetwork

__all__ = [
    "PaperEvent",
    "CitationEvent",
    "StreamEvent",
    "EventLog",
    "LOG_FORMAT_VERSION",
]

#: On-disk format version stamped into the JSONL header line.
LOG_FORMAT_VERSION = 1


@dataclass(frozen=True)
class PaperEvent:
    """A paper is published at ``time``."""

    time: float
    paper_id: str

    def to_payload(self) -> dict:
        """The JSONL object for this event."""
        return {"type": "paper", "time": self.time, "id": self.paper_id}


@dataclass(frozen=True)
class CitationEvent:
    """The paper published at ``time`` (``citing``) cites ``cited``."""

    time: float
    citing: str
    cited: str

    def to_payload(self) -> dict:
        """The JSONL object for this event."""
        return {
            "type": "cite",
            "time": self.time,
            "citing": self.citing,
            "cited": self.cited,
        }


StreamEvent = Union[PaperEvent, CitationEvent]


def _event_line(event: StreamEvent) -> str:
    """Canonical JSONL line of one event (also the digest input)."""
    return json.dumps(event.to_payload(), sort_keys=True)


class EventLog:
    """An immutable, validated, time-ordered sequence of stream events.

    Parameters
    ----------
    events:
        The events, already in arrival order.  Construction validates
        the streaming contract: event times never decrease, paper ids
        are unique, and every citation event immediately follows its
        citing paper's event block (grouping — see the module
        docstring).  Cited ids are *not* required to be in the log;
        out-of-collection references are resolved by the ingest
        policy, exactly like :class:`~repro.graph.NetworkBuilder`.

    Examples
    --------
    >>> from repro.synth import toy_network
    >>> log = EventLog.from_network(toy_network())
    >>> (log.n_papers, log.n_citations)
    (8, 13)
    >>> log[0]
    PaperEvent(time=1990.0, paper_id='A')
    """

    def __init__(self, events: Iterable[StreamEvent]) -> None:
        self._events: tuple[StreamEvent, ...] = tuple(events)
        self._validate()

    def _validate(self) -> None:
        last_time = -np.inf
        current_paper: str | None = None
        seen: set[str] = set()
        for position, event in enumerate(self._events):
            if isinstance(event, PaperEvent):
                if event.paper_id in seen:
                    raise StreamError(
                        f"event {position}: duplicate paper event for "
                        f"{event.paper_id!r}"
                    )
                seen.add(event.paper_id)
                current_paper = event.paper_id
            elif isinstance(event, CitationEvent):
                if event.citing != current_paper:
                    raise StreamError(
                        f"event {position}: citation from "
                        f"{event.citing!r} is detached from its citing "
                        "paper's event (published papers cannot gain "
                        "references — a citation event must follow its "
                        "citing paper's event block)"
                    )
                if event.cited == event.citing:
                    raise StreamError(
                        f"event {position}: self-citation of "
                        f"{event.citing!r}"
                    )
            else:
                raise StreamError(
                    f"event {position}: unsupported event type "
                    f"{type(event).__name__}"
                )
            if not np.isfinite(event.time):
                raise StreamError(
                    f"event {position}: non-finite event time"
                )
            if event.time < last_time:
                raise StreamError(
                    f"event {position}: time {event.time} precedes the "
                    f"previous event's {last_time} — logs are "
                    "time-ordered"
                )
            last_time = event.time

    # ------------------------------------------------------------------
    # Sequence protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[StreamEvent]:
        return iter(self._events)

    def __getitem__(self, index):
        return self._events[index]

    def __eq__(self, other: object) -> bool:
        return isinstance(other, EventLog) and self._events == other._events

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"EventLog(n_events={len(self._events)}, "
            f"n_papers={self.n_papers}, n_citations={self.n_citations})"
        )

    @property
    def events(self) -> tuple[StreamEvent, ...]:
        """All events, in arrival order."""
        return self._events

    @property
    def n_papers(self) -> int:
        """Number of paper events in the log."""
        return sum(1 for e in self._events if isinstance(e, PaperEvent))

    @property
    def n_citations(self) -> int:
        """Number of citation events in the log."""
        return sum(1 for e in self._events if isinstance(e, CitationEvent))

    def time_span(self) -> tuple[float, float]:
        """``(first, last)`` event times of a non-empty log."""
        if not self._events:
            raise StreamError("empty log has no time span")
        return (self._events[0].time, self._events[-1].time)

    def digest(self, upto: int | None = None) -> str:
        """SHA-256 over the canonical lines of the first ``upto`` events.

        Checkpoints store this digest so a resume can prove it is
        continuing the *same* stream it stopped in, not a log that
        happens to share a length.
        """
        count = len(self._events) if upto is None else int(upto)
        if count < 0 or count > len(self._events):
            raise StreamError(
                f"digest offset {count} out of range "
                f"[0, {len(self._events)}]"
            )
        hasher = hashlib.sha256()
        for event in self._events[:count]:
            hasher.update(_event_line(event).encode("utf-8"))
            hasher.update(b"\n")
        return hasher.hexdigest()

    # ------------------------------------------------------------------
    # Extraction from a snapshot
    # ------------------------------------------------------------------
    @classmethod
    def from_network(cls, network: CitationNetwork) -> "EventLog":
        """The event log whose replay reconstructs ``network``.

        Papers are emitted in chronological order (stable on the dense
        index for ties), each immediately followed by its citation
        events in reference-list order.  For a network whose paper
        indices are already chronological — every loader and generator
        in this repository produces such networks — replaying the log
        rebuilds the snapshot *bit-identically*, dense indices
        included.

        Raises
        ------
        StreamError
            If the network is not replayable as a stream: some paper
            cites a paper that would arrive after it (the network
            violates time order, cf.
            :meth:`CitationNetwork.validate(require_time_order=True)
            <repro.graph.CitationNetwork.validate>`).
        """
        times = network.publication_times
        order = np.lexsort((np.arange(network.n_papers), times))
        position = np.empty(network.n_papers, dtype=np.int64)
        position[order] = np.arange(network.n_papers)

        references: list[list[int]] = [[] for _ in range(network.n_papers)]
        for citing, cited in zip(network.citing, network.cited):
            if position[int(cited)] >= position[int(citing)]:
                raise StreamError(
                    f"paper {network.id_of(int(citing))!r} cites "
                    f"{network.id_of(int(cited))!r}, which arrives "
                    "later in the stream; only time-ordered networks "
                    "can be replayed as event logs"
                )
            references[int(citing)].append(int(cited))

        events: list[StreamEvent] = []
        for index in order:
            paper = int(index)
            time = float(times[paper])
            events.append(
                PaperEvent(time=time, paper_id=network.id_of(paper))
            )
            events.extend(
                CitationEvent(
                    time=time,
                    citing=network.id_of(paper),
                    cited=network.id_of(target),
                )
                for target in references[paper]
            )
        return cls(events)

    # ------------------------------------------------------------------
    # JSONL persistence
    # ------------------------------------------------------------------
    def save(self, path: str) -> None:
        """Write the log as JSONL: a header line, then one event per line.

        The write is atomic (temp file + rename), matching the other
        persistence paths of this repository.
        """
        temp_path = f"{path}.tmp-{os.getpid()}"
        try:
            with open(temp_path, "w", encoding="utf-8") as handle:
                handle.write(
                    json.dumps(
                        {
                            "format": "repro-event-log",
                            "log_format_version": LOG_FORMAT_VERSION,
                            "n_events": len(self._events),
                        },
                        sort_keys=True,
                    )
                    + "\n"
                )
                for event in self._events:
                    handle.write(_event_line(event) + "\n")
            os.replace(temp_path, path)
        finally:
            if os.path.exists(temp_path):
                os.remove(temp_path)

    @classmethod
    def load(cls, path: str) -> "EventLog":
        """Read a log written by :meth:`save`.

        Raises
        ------
        DataFormatError
            If the file is missing, is not an event log, declares an
            unsupported format version, or contains malformed lines.
        StreamError
            If the events parse but violate the streaming contract.
        """
        if not os.path.exists(path):
            raise DataFormatError(f"file not found: {path}")
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        if not lines:
            raise DataFormatError(f"{path}: empty file is not an event log")
        header = _parse_line(path, 1, lines[0])
        if header.get("format") != "repro-event-log":
            raise DataFormatError(
                f"{path}: not a repro event log (missing header line)"
            )
        try:
            declared = int(header.get("log_format_version", -1))
        except (TypeError, ValueError):
            raise DataFormatError(
                f"{path}: malformed log_format_version "
                f"{header.get('log_format_version')!r}"
            ) from None
        if declared != LOG_FORMAT_VERSION:
            raise DataFormatError(
                f"{path}: unsupported log format version {declared} "
                f"(this build reads version {LOG_FORMAT_VERSION})"
            )
        events: list[StreamEvent] = []
        for number, line in enumerate(lines[1:], start=2):
            if not line.strip():
                continue
            payload = _parse_line(path, number, line)
            events.append(_event_from_payload(path, number, payload))
        declared_events = header.get("n_events")
        if declared_events is not None:
            try:
                declared_events = int(declared_events)
            except (TypeError, ValueError):
                raise DataFormatError(
                    f"{path}: malformed n_events {declared_events!r}"
                ) from None
            if declared_events != len(events):
                raise DataFormatError(
                    f"{path}: header declares {declared_events} events "
                    f"but the file contains {len(events)} — the log "
                    "was truncated or concatenated"
                )
        return cls(events)


def _parse_line(path: str, number: int, line: str) -> dict:
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as error:
        raise DataFormatError(
            f"{path}:{number}: invalid JSON ({error})"
        ) from None
    if not isinstance(payload, dict):
        raise DataFormatError(
            f"{path}:{number}: expected a JSON object, got "
            f"{type(payload).__name__}"
        )
    return payload


def _event_from_payload(path: str, number: int, payload: dict) -> StreamEvent:
    kind = payload.get("type")
    try:
        if kind == "paper":
            return PaperEvent(
                time=float(payload["time"]), paper_id=str(payload["id"])
            )
        if kind == "cite":
            return CitationEvent(
                time=float(payload["time"]),
                citing=str(payload["citing"]),
                cited=str(payload["cited"]),
            )
    except (KeyError, TypeError, ValueError) as error:
        raise DataFormatError(
            f"{path}:{number}: malformed {kind!r} event ({error!r})"
        ) from None
    raise DataFormatError(
        f"{path}:{number}: unknown event type {kind!r} "
        "(expected 'paper' or 'cite')"
    )


def group_boundaries(events: Sequence[StreamEvent]) -> tuple[int, ...]:
    """Positions where a micro-batch may end (exclusive cut points).

    A cut is legal immediately before each paper event (and at the end
    of the sequence): cutting there never separates a paper from its
    citation events.  Position 0 is never a boundary — a batch must
    contain at least one group.
    """
    cuts = [
        position
        for position, event in enumerate(events)
        if isinstance(event, PaperEvent) and position > 0
    ]
    cuts.append(len(events))
    return tuple(cuts)
