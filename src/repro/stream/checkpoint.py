"""Checkpoint/resume for stream replays.

A :class:`Checkpoint` is everything a killed replay needs to continue
*bit-identically*: the log offset (events consumed), the batch policy,
the serving configuration, and the full serving state — the
:class:`~repro.serve.ScoreIndex` snapshot with its exact ``float64``
score vectors, persisted through the index's own ``.npz`` format.
Because replay is deterministic and warm starts are seeded from the
persisted vectors, a resumed run passes through the same states the
uninterrupted run would have.

Layout of a checkpoint directory::

    <directory>/
        checkpoint.json       # offset, digest, batch + serving config
        index-v00000042.npz   # ScoreIndex.save() of the serving state

``checkpoint.json`` is written last and atomically (temp file +
rename): it is the commit point.  The index file it references is
*version-suffixed*, never overwritten in place — a new checkpoint
writes its own index file first, commits the manifest, and only then
prunes superseded index files.  A crash at any point therefore leaves
either the previous complete checkpoint or the new one (plus, at
worst, an orphaned index file the next save cleans up) — never a torn
one.

The checkpoint stores a SHA-256 digest of the consumed log prefix;
:meth:`Checkpoint.verify_against` refuses to resume a log whose prefix
does not match, which catches the classic operational mistake of
pointing a resume at the wrong (or regenerated) event file.
"""

from __future__ import annotations

import glob
import json
import os
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.chaos.points import chaos_point
from repro.errors import DataFormatError, StreamError
from repro.graph.builder import MissingRefPolicy
from repro.serve.score_index import ScoreIndex
from repro.stream.events import EventLog

if TYPE_CHECKING:  # pragma: no cover - import for annotations only
    from repro.stream.ingest import StreamIngestor

__all__ = ["Checkpoint", "CHECKPOINT_FILE", "CHECKPOINT_FORMAT_VERSION"]

#: Manifest filename inside a checkpoint directory.
CHECKPOINT_FILE = "checkpoint.json"


def _index_filename(version: int) -> str:
    """The version-suffixed index filename of one checkpoint."""
    return f"index-v{version:08d}.npz"

#: On-disk format version of the checkpoint layout.
CHECKPOINT_FORMAT_VERSION = 1


@dataclass(frozen=True)
class Checkpoint:
    """A replay's resumable state (see the module docstring).

    Attributes
    ----------
    offset:
        Events consumed when the checkpoint was taken.
    batches_applied:
        Micro-batches applied (bootstrap included).
    batch_size, watermark_years:
        The batch policy — a resume must cut the remaining log the
        same way the original run would have.
    shards, partitioner, missing_references:
        Serving configuration for the rebuilt service.
    log_digest:
        SHA-256 over the canonical lines of the consumed log prefix.
    index_version:
        Version of the persisted score index (cross-checked on load).
    index_file:
        Filename of the persisted index inside the checkpoint
        directory (version-suffixed; see the module docstring).
    created_utc:
        ISO-8601 timestamp of the checkpoint.
    """

    offset: int
    batches_applied: int
    batch_size: int
    watermark_years: float | None
    shards: int
    partitioner: str
    missing_references: MissingRefPolicy
    log_digest: str
    index_version: int
    index_file: str
    created_utc: str

    # ------------------------------------------------------------------
    # Capture and persistence
    # ------------------------------------------------------------------
    @classmethod
    def capture(cls, ingestor: "StreamIngestor") -> "_BoundCheckpoint":
        """Snapshot an ingestor's state, ready to :meth:`save`.

        Raises
        ------
        StreamError
            If the ingestor has not applied its bootstrap batch yet —
            there is no serving state to persist.
        """
        index = ingestor.index  # raises StreamError pre-bootstrap
        state = cls(
            offset=ingestor.offset,
            batches_applied=ingestor.batches_applied,
            batch_size=ingestor.batch_size,
            watermark_years=ingestor.watermark_years,
            shards=ingestor.service.sharded.n_shards,
            partitioner=ingestor.service.sharded.partitioner,
            missing_references=ingestor._policy,
            log_digest=ingestor.prefix_digest(),
            index_version=index.version,
            index_file=_index_filename(index.version),
            created_utc=time.strftime(
                "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
            ),
        )
        return _BoundCheckpoint(state=state, index=index)

    def to_payload(self) -> dict:
        """The ``checkpoint.json`` object."""
        return {
            "format": "repro-stream-checkpoint",
            "checkpoint_format_version": CHECKPOINT_FORMAT_VERSION,
            "offset": self.offset,
            "batches_applied": self.batches_applied,
            "batch_size": self.batch_size,
            "watermark_years": self.watermark_years,
            "shards": self.shards,
            "partitioner": self.partitioner,
            "missing_references": self.missing_references,
            "log_digest": self.log_digest,
            "index_version": self.index_version,
            "index_file": self.index_file,
            "created_utc": self.created_utc,
        }

    @classmethod
    def load(cls, directory: str) -> "Checkpoint":
        """Read a checkpoint manifest (the index loads separately).

        Raises
        ------
        DataFormatError
            If the directory holds no checkpoint, or the manifest is
            malformed or of an unsupported format version.
        """
        path = os.path.join(directory, CHECKPOINT_FILE)
        if not os.path.exists(path):
            raise DataFormatError(
                f"{directory}: not a stream checkpoint "
                f"(missing {CHECKPOINT_FILE})"
            )
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except json.JSONDecodeError as error:
            raise DataFormatError(
                f"{path}: invalid JSON ({error})"
            ) from None
        if payload.get("format") != "repro-stream-checkpoint":
            raise DataFormatError(
                f"{path}: not a stream checkpoint manifest"
            )
        declared = int(payload.get("checkpoint_format_version", -1))
        if declared != CHECKPOINT_FORMAT_VERSION:
            raise DataFormatError(
                f"{path}: unsupported checkpoint format version "
                f"{declared} (this build reads version "
                f"{CHECKPOINT_FORMAT_VERSION})"
            )
        try:
            watermark = payload["watermark_years"]
            return cls(
                offset=int(payload["offset"]),
                batches_applied=int(payload["batches_applied"]),
                batch_size=int(payload["batch_size"]),
                watermark_years=(
                    None if watermark is None else float(watermark)
                ),
                shards=int(payload["shards"]),
                partitioner=str(payload["partitioner"]),
                missing_references=_checked_policy(
                    path, payload["missing_references"]
                ),
                log_digest=str(payload["log_digest"]),
                index_version=int(payload["index_version"]),
                index_file=os.path.basename(str(payload["index_file"])),
                created_utc=str(payload["created_utc"]),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise DataFormatError(
                f"{path}: malformed checkpoint manifest ({error!r})"
            ) from None

    # ------------------------------------------------------------------
    # Resume-side checks
    # ------------------------------------------------------------------
    def verify_against(self, log: EventLog) -> None:
        """Ensure ``log`` is the stream this checkpoint came from.

        Raises
        ------
        StreamError
            If the log is shorter than the consumed prefix, or the
            prefix digest disagrees with the one stored at checkpoint
            time.
        """
        if self.offset > len(log):
            raise StreamError(
                f"checkpoint consumed {self.offset} events but the "
                f"log only has {len(log)}; this is not the stream the "
                "checkpoint was taken from"
            )
        actual = log.digest(self.offset)
        if actual != self.log_digest:
            raise StreamError(
                "checkpoint digest mismatch: the first "
                f"{self.offset} events of this log are not the events "
                "the checkpoint consumed (digest "
                f"{actual[:12]}… != {self.log_digest[:12]}…)"
            )

    def load_index(self, directory: str) -> ScoreIndex:
        """Load the persisted serving state, cross-checking its version."""
        index = ScoreIndex.load(os.path.join(directory, self.index_file))
        if index.version != self.index_version:
            raise DataFormatError(
                f"{directory}: checkpoint manifest expects index "
                f"version {self.index_version} but {self.index_file} "
                f"is at {index.version} — the checkpoint was "
                "partially overwritten"
            )
        return index


def _checked_policy(source: str, value: object) -> MissingRefPolicy:
    if value not in ("skip", "error"):
        raise DataFormatError(
            f"{source}: unknown missing-reference policy {value!r}"
        )
    return value  # type: ignore[return-value]


@dataclass(frozen=True)
class _BoundCheckpoint:
    """A captured checkpoint still holding the live index to persist."""

    state: Checkpoint
    index: ScoreIndex

    def save(self, directory: str) -> str:
        """Write index, commit the manifest, prune; return the path.

        The ordering is what makes the checkpoint crash-safe: the new
        (version-suffixed, never-overwritten) index file lands first,
        the manifest rename is the commit point, and only *after* the
        commit are index files from superseded checkpoints removed.
        """
        os.makedirs(directory, exist_ok=True)
        self.index.save(os.path.join(directory, self.state.index_file))
        chaos_point("checkpoint.index_written")
        manifest_path = os.path.join(directory, CHECKPOINT_FILE)
        # Manifest temp files orphaned by a *crashed* commit (the
        # cleanup below never runs on a kill) are swept on this, the
        # next commit attempt.
        for stale in glob.glob(f"{glob.escape(manifest_path)}.tmp-*"):
            os.remove(stale)
        temp_path = f"{manifest_path}.tmp-{os.getpid()}"
        try:
            with open(temp_path, "w", encoding="utf-8") as handle:
                json.dump(self.state.to_payload(), handle, indent=2)
                handle.write("\n")
            chaos_point("checkpoint.manifest_tmp")
            os.replace(temp_path, manifest_path)
        except Exception:
            # Narrower than a finally on purpose: an injected crash
            # (BaseException) must leave the orphan a real kill would.
            if os.path.exists(temp_path):
                os.remove(temp_path)
            raise
        chaos_point("checkpoint.commit")
        for name in os.listdir(directory):
            if (
                name.startswith("index-v")
                and name.endswith(".npz")
                and name != self.state.index_file
            ):
                os.remove(os.path.join(directory, name))
        return manifest_path
