"""repro.stream — checkpointed citation-event replay driving warm starts.

The serve layer (:mod:`repro.serve`) updates rankings from
:class:`~repro.serve.NetworkDelta` batches; this package produces those
batches from a *stream*.  A deployment tracking the paper's "moving
present" (AttRank's attention and recency terms are functions of the
current year) ingests citations as they arrive rather than recomputing
from scratch:

* :class:`EventLog` — the corpus as a time-ordered JSONL log of
  :class:`PaperEvent` / :class:`CitationEvent` records, extractable
  from any time-ordered :class:`~repro.graph.CitationNetwork`;
* :class:`StreamIngestor` — replays a log in micro-batches
  (batch-size / time-watermark policies, cut at paper-group
  boundaries), driving :class:`~repro.serve.DeltaUpdater` warm-start
  re-solves and :meth:`~repro.serve.ShardedScoreIndex.sync` shard
  routing, while a :class:`~repro.serve.RankingService` answers
  queries between batches;
* :class:`Checkpoint` — log offset + digest + full index snapshot, so
  a killed replay resumes bit-identically;
* :func:`batch_compute` — the offline baseline; a finalized replay's
  score vectors are bit-identical to it at any batch size, shard
  count, or resume point (the invariant the property tests and the
  ``stream`` bench scenario enforce).

CLI: ``repro stream extract`` writes a log, ``repro stream replay``
replays it (``--checkpoint-dir``/``--checkpoint-every`` to persist
progress), ``repro stream resume`` continues from a checkpoint, and
``repro stream checkpoint`` inspects one.
"""

from repro.stream.checkpoint import (
    CHECKPOINT_FILE,
    CHECKPOINT_FORMAT_VERSION,
    Checkpoint,
)
from repro.stream.events import (
    CitationEvent,
    EventLog,
    LOG_FORMAT_VERSION,
    PaperEvent,
    StreamEvent,
    group_boundaries,
)
from repro.stream.ingest import (
    BatchReport,
    ReplayReport,
    StreamIngestor,
    batch_compute,
    network_from_log,
)

__all__ = [
    "CHECKPOINT_FILE",
    "CHECKPOINT_FORMAT_VERSION",
    "Checkpoint",
    "CitationEvent",
    "EventLog",
    "LOG_FORMAT_VERSION",
    "PaperEvent",
    "StreamEvent",
    "group_boundaries",
    "BatchReport",
    "ReplayReport",
    "StreamIngestor",
    "batch_compute",
    "network_from_log",
]
